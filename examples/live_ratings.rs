//! Live ratings: stream MovieLens rating events in timestamp order into
//! a `LiveEngine` while concurrently serving ad-hoc group queries from
//! epoch-pinned snapshots.
//!
//! One writer thread replays the "future" 30% of the rating log in
//! batches (each publish = dirty-set computation + incremental
//! `Substrate::rebuild_dirty` + atomic epoch swap); one reader thread
//! pins whatever epoch is current and serves group queries against it —
//! every query reads one consistent snapshot end-to-end, no matter how
//! many swaps land mid-flight. At the end, the streamed engine is
//! checked bit-for-bit against a cold engine refit from scratch on the
//! final ratings.
//!
//! Run with: `cargo run --release --example live_ratings`

use greca::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const BATCH: usize = 64;

fn main() {
    // --- 1. A world with a rating *timeline* -----------------------------
    // The synthetic MovieLens matrix has no per-event timestamps, so we
    // deterministically spread its ratings over the social year and
    // replay them in timestamp order: the first 70% seed the engine,
    // the rest arrive live.
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::paper_scale().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).expect("valid horizon");
    let horizon = net.horizon();
    let mut events: Vec<Rating> = Vec::with_capacity(ml.matrix.num_ratings());
    for u in ml.matrix.users() {
        for &(i, value) in ml.matrix.user_ratings(u) {
            // A deterministic pseudo-timestamp per (user, item) event.
            let ts = ((u.0 as i64 * 2_654_435_761 + i.0 as i64 * 40_503) % horizon.max(1)).abs();
            events.push(Rating {
                user: u,
                item: i,
                value,
                ts,
            });
        }
    }
    events.sort_by_key(|r| (r.ts, r.user, r.item));
    let split = events.len() * 7 / 10;
    let (seed, stream) = events.split_at(split);
    println!(
        "rating log: {} events over {} days — {} seed the engine, {} stream live",
        events.len(),
        horizon / 86_400,
        seed.len(),
        stream.len(),
    );

    // --- 2. Epoch 0 ------------------------------------------------------
    let mut b = RatingMatrixBuilder::new(ml.matrix.num_users(), ml.matrix.num_items());
    for &r in seed {
        b.push(r);
    }
    let universe: Vec<UserId> = net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&net), &universe, &timeline);
    let catalog: Vec<ItemId> = ml.matrix.items().collect();
    let live = LiveEngine::new(
        &population,
        LiveModel::UserCf(CfConfig::default()),
        &b.build(),
        &catalog,
    )
    .expect("finite CF scores");
    println!(
        "epoch 0: {} preference segments × {} items precomputed",
        live.pin().substrate().users().len(),
        catalog.len(),
    );

    // --- 3. Stream and serve, concurrently --------------------------------
    let done = AtomicBool::new(false);
    let queries_served = AtomicU64::new(0);
    let groups: Vec<Group> = [[1u32, 5, 9], [2, 4, 8], [0, 3, 7], [10, 12, 14]]
        .iter()
        .map(|m| Group::new(m.iter().map(|&u| UserId(u)).collect()).expect("non-empty"))
        .collect();

    std::thread::scope(|scope| {
        let live = &live;
        let done = &done;
        let queries_served = &queries_served;
        let groups = &groups;
        let catalog = &catalog;

        // Writer: replay the live stream in timestamp order.
        scope.spawn(move || {
            let mut rebuilt = 0usize;
            let mut shared = 0usize;
            for chunk in stream.chunks(BATCH) {
                let report = live.ingest(chunk).expect("finite ratings");
                rebuilt += report.rebuilt_segments;
                shared += report.shared_segments;
            }
            println!(
                "writer: published {} epochs ({} ratings); segments rebuilt = {}, structurally shared = {}",
                live.epoch(),
                stream.len(),
                rebuilt,
                shared,
            );
            done.store(true, Ordering::Release);
        });

        // Reader: pin whatever epoch is current, serve a round of group
        // queries against that snapshot, repeat until the stream ends.
        scope.spawn(move || {
            let mut last_epoch = u64::MAX;
            while !done.load(Ordering::Acquire) {
                let pin = live.pin();
                let engine = pin.engine();
                for group in groups {
                    let top = engine
                        .query(group)
                        .items(catalog)
                        .top(5)
                        .run()
                        .expect("valid query");
                    assert_eq!(top.items.len(), 5);
                    queries_served.fetch_add(1, Ordering::Relaxed);
                }
                if pin.epoch() != last_epoch {
                    last_epoch = pin.epoch();
                    println!(
                        "reader: serving epoch {:>3} ({} ratings visible)",
                        pin.epoch(),
                        pin.matrix().num_ratings(),
                    );
                }
            }
        });
    });
    println!(
        "served {} queries concurrently with ingestion",
        queries_served.load(Ordering::Relaxed),
    );

    // --- 4. The contract: streamed == rebuilt from scratch ----------------
    let pin = live.pin();
    let cf = UserCfModel::fit(pin.matrix(), CfConfig::default());
    let cold = GrecaEngine::new(&cf, &population);
    for group in &groups {
        let streamed = pin
            .engine()
            .query(group)
            .items(&catalog)
            .top(5)
            .run()
            .expect("valid query");
        let scratch = cold
            .query(group)
            .items(&catalog)
            .top(5)
            .run()
            .expect("valid query");
        assert_eq!(streamed, scratch, "epoch must equal a cold rebuild");
    }
    println!(
        "final epoch {} is bit-identical to a cold rebuild on the full log ✓",
        pin.epoch(),
    );
}
