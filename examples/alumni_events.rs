//! Alumni events: the paper's second motivating scenario (§1).
//!
//! "Interns at a research lab may subscribe to a Facebook group during
//! their internship. When the internship period is over, the group
//! becomes an alumni [group] and affinities between its members will
//! likely change. Therefore, if events … are to be recommended to the
//! alumni group in the future, affinities between its members should be
//! accounted for."
//!
//! We query the same group at every period of the year and watch the
//! recommendations shift as pairwise affinities drift, and we compare
//! the discrete and continuous time models. Items play the role of
//! events; preferences still come from CF.
//!
//! Run with: `cargo run --release --example alumni_events`

use greca::prelude::*;

fn main() {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::paper_scale().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).expect("valid horizon");
    let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = net.users().collect();

    // Build the index incrementally, period by period — exactly how a
    // deployment would maintain it as new like-events arrive (§1's
    // index-maintenance claim).
    let source = SocialAffinitySource::new(&net);
    let mut population = PopulationAffinity::new_static_only(&source, &universe);

    // An "alumni group": one seed cluster — strong static affinity, but
    // interests drift apart over the year for some members.
    let members: Vec<UserId> = net
        .users()
        .filter(|&u| net.cluster_of(u) == 0)
        .take(4)
        .collect();
    let group = Group::new(members).expect("cluster has members");
    let consensus = ConsensusFunction::average_preference();

    println!("alumni group {:?} over the year:", group.members());
    let mut previous: Option<Vec<ItemId>> = None;
    for (p_idx, &period) in timeline.periods().iter().enumerate() {
        population.append_period(&source, period);
        // A *cold* engine is the right shape while the index is still
        // being appended to: it is a cheap view over the substrates, and
        // re-wrapping it after each append keeps the borrow obvious. The
        // itemset defaults to the group's candidate items.
        let engine = GrecaEngine::new(&cf, &population);
        let list: Vec<ItemId> = engine
            .query(&group)
            .period(p_idx)
            .consensus(consensus)
            .top(5)
            .run()
            .expect("valid query")
            .items
            .iter()
            .map(|t| t.item)
            .collect();
        let (a, b) = (group.members()[0], group.members()[1]);
        let view = population.group_view(&group, p_idx, AffinityMode::Discrete);
        let pair_aff = view.affinity_between(a, b);
        let changed = previous
            .as_ref()
            .map(|prev| 5 - list.iter().filter(|i| prev.contains(i)).count())
            .unwrap_or(0);
        println!(
            "  period {p_idx} (day {:3}+): top-5 = {list:?}  aff({a},{b}) = {pair_aff:.3}  ({changed} new items)",
            period.start / 86_400,
        );
        previous = Some(list);
    }

    // Discrete vs continuous at year end. The index is final now, so
    // warm the engine: preference lists and affinity arrays precompute
    // once and both modes serve from the same shared substrate.
    let last = timeline.num_periods() - 1;
    let catalog: Vec<ItemId> = ml.matrix.items().collect();
    let engine = GrecaEngine::warm(&cf, &population, &catalog).expect("finite CF scores");
    for mode in [AffinityMode::Discrete, AffinityMode::continuous()] {
        let r = engine
            .query(&group)
            .period(last)
            .affinity(mode)
            .consensus(consensus)
            .top(5)
            .run()
            .expect("valid query");
        println!(
            "\n{mode:?}: top-5 = {:?}  (%SA = {:.1})",
            r.item_ids(),
            r.stats.sa_percent()
        );
    }
}
