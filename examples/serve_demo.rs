//! Serve demo: the full `greca-serve` stack end to end — a TCP server
//! over a `LiveEngine`, concurrent client threads mixing cached
//! queries, cold queries and live rating ingestion, then a `stats`
//! dump.
//!
//! What to watch in the output:
//!
//! * the **cache dispositions** — the first ask for a group is a
//!   `miss` (one kernel run), repeats are `hit`s served inline off the
//!   connection thread, and an `ingest` (epoch swap) flips the next
//!   ask back to `miss`: the cache is epoch-scoped and invalidated
//!   through `LiveEngine::on_publish`;
//! * the **identity check** — a served payload is compared bit-for-bit
//!   against a direct `PinnedEpoch::engine()` run;
//! * the **stats verb** — per-verb latency histograms, cache hit rate,
//!   epoch lag and the substrate's memory footprint, straight from the
//!   server.
//!
//! Run with: `cargo run --release --example serve_demo`

use greca::prelude::*;
use greca::serve::{Client, GrecaServer, Json, ServeConfig};

fn main() {
    // --- 1. A world and a live engine -----------------------------------
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    let universe: Vec<UserId> = net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&net), &universe, &timeline);
    let catalog: Vec<ItemId> = ml.matrix.items().collect();
    let live =
        LiveEngine::new(&population, LiveModel::Raw, &ml.matrix, &catalog).expect("finite ratings");
    println!(
        "world: {} users × {} items, {} periods",
        universe.len(),
        catalog.len(),
        timeline.num_periods()
    );

    // --- 2. Bind the server on an ephemeral port -------------------------
    let server = GrecaServer::bind(&live, ServeConfig::default()).expect("bind");
    let handle = server.handle();
    println!("serving on {}", handle.addr());

    std::thread::scope(|s| {
        s.spawn(|| server.run());

        // --- 3. Concurrent clients --------------------------------------
        let client_threads: Vec<_> = (0..3)
            .map(|c| {
                let addr = handle.addr();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let group: Vec<u32> = vec![c, c + 3, c + 6];
                    let mut dispositions = Vec::new();
                    for round in 0..4 {
                        let reply = client.query(&group, None, Some(5)).expect("query");
                        dispositions.push(format!(
                            "epoch {} {}",
                            reply.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                            reply.get("cache").and_then(Json::as_str).unwrap_or("?"),
                        ));
                        if round == 1 && c == 0 {
                            // One client streams a rating mid-flight:
                            // the publish invalidates everyone's cache.
                            client
                                .ingest(&[(c, (c + 11) % 40, 5.0, 1_000 + i64::from(c))])
                                .expect("ingest");
                        }
                    }
                    (c, dispositions)
                })
            })
            .collect();
        for t in client_threads {
            let (c, dispositions) = t.join().expect("client thread");
            println!("client {c}: [{}]", dispositions.join(", "));
        }

        // --- 4. Served == direct, bit for bit ----------------------------
        let mut client = Client::connect(handle.addr()).expect("connect");
        let group = Group::new(vec![UserId(1), UserId(4), UserId(7)]).expect("group");
        let served = client.query(&[1, 4, 7], None, Some(5)).expect("query");
        let pin = live.pin();
        let direct = pin.engine().query(&group).top(5).run().expect("direct run");
        let identical = served
            .get("items")
            .and_then(Json::as_array)
            .map(|items| {
                items.len() == direct.items.len()
                    && items.iter().zip(&direct.items).all(|(got, want)| {
                        got.get("item").and_then(Json::as_u64) == Some(u64::from(want.item.0))
                            && got.get("lb").and_then(Json::as_f64).map(f64::to_bits)
                                == Some(want.lb.to_bits())
                    })
            })
            .unwrap_or(false);
        println!(
            "served == direct engine run at epoch {}: {identical}",
            pin.epoch()
        );
        assert!(identical, "serving must not change results");

        // --- 5. Observability --------------------------------------------
        let stats = client.stats().expect("stats");
        let cache = stats.get("cache").expect("cache section");
        let memory = stats.get("memory").expect("memory section");
        println!(
            "cache: hit rate {:.0}%, {} invalidations | substrate {} KiB | epoch lag {}",
            cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
            cache
                .get("invalidations")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            memory
                .get("total_bytes")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                / 1024,
            cache.get("epoch_lag").and_then(Json::as_u64).unwrap_or(0),
        );

        handle.shutdown();
    });
    println!("drained and shut down cleanly");
}
