//! Movie night: the paper's motivating scenario (§1).
//!
//! The same user gets different recommendations in different company:
//! with her close friends (high affinity) the group list tilts toward
//! what the friends love; with acquaintances (low affinity) her own
//! taste dominates. We also contrast the consensus functions: AP
//! (average), MO (least misery — nobody suffers) and PD (minimize
//! disagreement).
//!
//! Run with: `cargo run --release --example movie_night`

use greca::prelude::*;

fn top5(prepared: &PreparedQuery, consensus: ConsensusFunction) -> Vec<ItemId> {
    prepared
        .run_with(consensus)
        .items
        .iter()
        .map(|t| t.item)
        .collect()
}

fn overlap(a: &[ItemId], b: &[ItemId]) -> usize {
    a.iter().filter(|i| b.contains(i)).count()
}

fn main() {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::paper_scale().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).expect("valid horizon");
    let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&net), &universe, &timeline);
    // One warm engine serves every query below from shared precomputed
    // sorted lists — the repeated-group scenario the substrate exists for.
    let catalog: Vec<ItemId> = ml.matrix.items().collect();
    let engine = GrecaEngine::warm(&cf, &population, &catalog).expect("finite CF scores");
    let p_idx = timeline.num_periods() - 1;

    // The protagonist and two companies: same-cluster friends (dense
    // friendship overlap → high static affinity) vs users from another
    // seed cluster (low affinity).
    let protagonist = UserId(1);
    let same_cluster: Vec<UserId> = net
        .users()
        .filter(|&u| u != protagonist && net.cluster_of(u) == net.cluster_of(protagonist))
        .take(2)
        .collect();
    let other_cluster: Vec<UserId> = net
        .users()
        .filter(|&u| net.cluster_of(u) != net.cluster_of(protagonist))
        .take(2)
        .collect();
    let friends = Group::new([vec![protagonist], same_cluster].concat()).expect("group");
    let strangers = Group::new([vec![protagonist], other_cluster].concat()).expect("group");

    // The itemset defaults to each group's candidate items (everything
    // no member has rated) — no hand-assembled item universe.
    let mk = |group: &Group| {
        engine
            .query(group)
            .period(p_idx)
            .top(5)
            .prepare()
            .expect("valid query")
    };
    let with_friends = mk(&friends);
    let with_strangers = mk(&strangers);

    let ap = ConsensusFunction::average_preference();
    let friends_list = top5(&with_friends, ap);
    let strangers_list = top5(&with_strangers, ap);
    println!("movie night for {protagonist}:");
    println!(
        "  with friends   {:?} → {friends_list:?}",
        friends.members()
    );
    println!(
        "  with strangers {:?} → {strangers_list:?}",
        strangers.members()
    );
    println!(
        "  lists share {}/5 movies — company changes what gets recommended",
        overlap(&friends_list, &strangers_list)
    );

    // Consensus semantics on the friends group.
    println!("\nconsensus functions (friends group):");
    for consensus in [
        ConsensusFunction::average_preference(),
        ConsensusFunction::least_misery(),
        ConsensusFunction::pairwise_disagreement(0.8),
        ConsensusFunction::pairwise_disagreement(0.2),
    ] {
        let list = top5(&with_friends, consensus);
        println!("  {:<12} → {list:?}", consensus.label());
    }

    // Affinity ablation: how much does modelling affinity change the list?
    let agnostic = engine
        .query(&friends)
        .period(p_idx)
        .affinity(AffinityMode::None)
        .top(5)
        .prepare()
        .expect("valid query");
    let agnostic_list = top5(&agnostic, ap);
    println!(
        "\naffinity-aware vs affinity-agnostic overlap: {}/5",
        overlap(&friends_list, &agnostic_list)
    );
}
