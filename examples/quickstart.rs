//! Quickstart: build a world, form an ad-hoc group, get temporal
//! affinity-aware recommendations, and compare the cost against the
//! naive full scan.
//!
//! Run with: `cargo run --release --example quickstart`

use greca::prelude::*;

fn main() {
    // --- 1. A world ------------------------------------------------------
    // Ratings provide individual tastes; the social network provides
    // friendships (static affinity) and timestamped page-likes (dynamic
    // affinity) over one simulated year.
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::paper_scale().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).expect("valid horizon");
    println!(
        "world: {} users × {} items, {} ratings; {} social users, {} like events",
        ml.matrix.num_users(),
        ml.matrix.num_items(),
        ml.matrix.num_ratings(),
        net.num_users(),
        net.num_likes(),
    );

    // --- 2. Substrates → the warm serving engine -------------------------
    // `warm` precomputes, once, every user's sorted preference list over
    // the catalog plus the per-period sorted affinity arrays; queries
    // then prepare by slicing zero-copy views instead of sorting.
    let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&net), &universe, &timeline);
    let catalog: Vec<ItemId> = ml.matrix.items().collect();
    let engine = GrecaEngine::warm(&cf, &population, &catalog).expect("finite CF scores");
    println!(
        "warm engine: {} preference segments × {} items precomputed ({} KiB shared)",
        engine.substrate().map_or(0, |s| s.users().len()),
        catalog.len(),
        engine.substrate().map_or(0, |s| s.pref_bytes() / 1024),
    );

    // --- 3. An ad-hoc group query ---------------------------------------
    let group = Group::new(vec![UserId(1), UserId(5), UserId(9)]).expect("non-empty");

    // Paper defaults (AP consensus, discrete affinity, decomposed lists)
    // are baked in, and the itemset defaults to the group's candidate
    // items (everything no member has rated) — only k is stated.
    let prepared = engine.query(&group).top(5).prepare().expect("valid query");
    println!(
        "group {:?}: {} candidate items, served from substrate views: {}",
        group.members(),
        prepared.inputs().num_items,
        prepared.is_warm(),
    );

    // --- 4. GRECA vs the naive full scan ---------------------------------
    let top = prepared.run();
    let naive = prepared.run_algorithm(Algorithm::Naive);

    println!("\ntop-5 items for the group (AP consensus, discrete temporal affinity):");
    for t in &top.items {
        println!("  {}  score ∈ [{:.3}, {:.3}]", t.item, t.lb, t.ub);
    }
    println!(
        "\nGRECA read {} of {} entries ({:.1}% — saved {:.1}%), stop reason: {:?}",
        top.stats.sa,
        top.stats.total_entries,
        top.stats.sa_percent(),
        top.stats.saveup_percent(),
        top.stop_reason,
    );
    println!(
        "naive read {} entries; both return the same itemset: {}",
        naive.stats.sa,
        top.item_ids() == naive.item_ids()
            || top
                .items
                .iter()
                .zip(&naive.items)
                .all(|(a, b)| (a.lb - b.lb).abs() < 1e-9),
    );
}
