//! Affinity explorer: inspect the temporal-affinity machinery itself.
//!
//! Prints, for a handful of user pairs: static affinity, the per-period
//! periodic affinities, the population average per period (Eq. 1's
//! `AvgaffP`), the cumulative drift, and the resulting discrete and
//! continuous affinities — the exact quantities of §2.1 and the running
//! example's Tables 2–4.
//!
//! Run with: `cargo run --release --example affinity_explorer`

use greca::prelude::*;

fn main() {
    let net = SocialConfig::paper_scale().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).expect("valid horizon");
    let universe: Vec<UserId> = net.users().collect();
    let source = SocialAffinitySource::new(&net);
    let population = PopulationAffinity::build(&source, &universe, &timeline);
    let last = timeline.num_periods() - 1;

    println!(
        "{} users, {} periods (two-month); population index: {} pairs",
        net.num_users(),
        timeline.num_periods(),
        universe.len() * (universe.len() - 1) / 2
    );
    println!(
        "non-empty (pair, period) cells: {:.1}%   mean per-pair std-dev of common likes: {:.2}",
        100.0 * population.non_empty_fraction(),
        population.mean_pair_std_dev(),
    );

    // Population averages per period (the drift baseline).
    print!("\nAvgaffP per period (raw common like-categories): ");
    for p in population.periods() {
        print!("{:.2} ", p.avg_raw);
    }
    println!();

    // A same-cluster pair (likely converging) and a cross-cluster pair.
    let u0 = UserId(0);
    let same = net
        .users()
        .find(|&v| v != u0 && net.cluster_of(v) == net.cluster_of(u0))
        .expect("cluster has another member");
    let cross = net
        .users()
        .find(|&v| net.cluster_of(v) != net.cluster_of(u0))
        .expect("another cluster exists");

    for (label, v) in [("same cluster", same), ("cross cluster", cross)] {
        let pair = population.pair_of(u0, v).expect("indexed pair");
        println!("\npair ({u0}, {v}) — {label}:");
        println!(
            "  common friends = {}   static affinity (global norm) = {:.3}",
            net.common_friends(u0, v),
            population.static_norm(pair)
        );
        print!("  affP per period: ");
        for p in population.periods() {
            print!("{:.0} ", p.raw[pair]);
        }
        println!();
        print!("  cumulative drift: ");
        for idx in 0..population.num_periods() {
            print!("{:+.2} ", population.cumulative_drift(pair, idx));
        }
        println!();
        println!(
            "  at year end: affV = {:+.3}  discrete = {:.3}  continuous = {:.3}  static-only = {:.3}",
            population.aff_v_discrete(pair, last),
            population.affinity(pair, last, AffinityMode::Discrete),
            population.affinity(pair, last, AffinityMode::continuous()),
            population.affinity(pair, last, AffinityMode::StaticOnly),
        );
    }

    // The population-level sorted pair arrays — what a warm engine's
    // substrate snapshots once: every pair ordered by affinity
    // descending, per kind. The closest pairs should be same-cluster.
    println!("\ntop-3 pairs by static affinity (population-wide sorted array):");
    let (pairs, values) = population.static_sorted_desc();
    for (&pair, &v) in pairs.iter().zip(&values).take(3) {
        println!("  pair #{pair}: {v:.3}");
    }
    let (ppairs, pvalues) = population.period_sorted_desc(last);
    println!(
        "top pair of the final period: #{} at {:.3} (of {} pairs)",
        ppairs[0],
        pvalues[0],
        ppairs.len()
    );

    // Figure-4-style granularity tradeoff.
    println!("\ngranularity tradeoff (Figure 4):");
    for g in Granularity::figure4_sweep() {
        let tl = Timeline::discretize(0, net.horizon(), g).expect("valid");
        let pop = PopulationAffinity::build(&source, &universe, &tl);
        println!(
            "  {:<10} {:2} periods, {:5.1}% non-empty",
            g.label(),
            tl.num_periods(),
            100.0 * pop.non_empty_fraction()
        );
    }
}
