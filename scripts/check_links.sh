#!/usr/bin/env bash
# Offline markdown link check for README.md and docs/*.md.
#
# Every relative link target `[text](path)` must exist on disk
# (anchors are stripped; external http(s)/mailto links are skipped —
# this runs in CI without network access). Grep-based on purpose: no
# dependencies, so the docs can't rot silently.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
checked=0

for f in "$root/README.md" "$root"/docs/*.md; do
    [ -f "$f" ] || continue
    dir="$(dirname "$f")"
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue # same-file anchor
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $f -> $target" >&2
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$status" -eq 0 ]; then
    echo "ok: $checked relative markdown link(s) resolve"
else
    echo "broken markdown links found" >&2
fi
exit "$status"
