//! Cross-crate integration: the full pipeline from raw synthetic data to
//! GRECA recommendations, validated against the naive oracle on real CF
//! inputs (not hand-built tables).

use greca::prelude::*;

struct World {
    ml: greca_dataset::MovieLens,
    net: greca_dataset::SocialNetwork,
    timeline: Timeline,
}

fn world() -> World {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    World { ml, net, timeline }
}

fn prepared(
    w: &World,
    cf: &UserCfModel<'_>,
    population: &PopulationAffinity,
    members: Vec<u32>,
    mode: AffinityMode,
    n_items: usize,
) -> Prepared {
    let group = Group::new(members.into_iter().map(UserId).collect()).expect("non-empty");
    let items: Vec<ItemId> = w.ml.matrix.items().take(n_items).collect();
    prepare(
        cf,
        population,
        &group,
        &items,
        w.timeline.num_periods() - 1,
        mode,
        ListLayout::Decomposed,
        true,
    )
}

#[test]
fn full_pipeline_matches_naive_across_configs() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);

    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        for consensus in [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.2),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            let p = prepared(&w, &cf, &population, vec![0, 2, 5], mode, 120);
            let k = 7;
            let greca = p.greca(consensus, GrecaConfig::top(k));
            let naive = p.naive(consensus, k);
            let exact = p.exact_scores(consensus);
            let score_of = |item: ItemId| {
                exact.iter().find(|&&(i, _)| i == item).expect("scored").1
            };
            let mut got: Vec<f64> = greca.item_ids().iter().map(|&i| score_of(i)).collect();
            got.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (g, n) in got.iter().zip(naive.items.iter()) {
                assert!(
                    (g - n.lb).abs() < 1e-9,
                    "{mode:?}/{}: {g} vs naive {}",
                    consensus.label(),
                    n.lb
                );
            }
            assert!(greca.stats.sa <= naive.stats.sa);
        }
    }
}

#[test]
fn ta_and_threshold_only_agree_with_naive_end_to_end() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let p = prepared(&w, &cf, &population, vec![1, 3, 4], AffinityMode::Discrete, 100);
    let consensus = ConsensusFunction::average_preference();
    let naive = p.naive(consensus, 5);
    let ta = p.ta(consensus, TaConfig::top(5));
    let nra = p.greca(
        consensus,
        GrecaConfig::top(5).stopping(StoppingRule::ThresholdOnly),
    );
    let exact = p.exact_scores(consensus);
    let score_of =
        |item: ItemId| exact.iter().find(|&&(i, _)| i == item).expect("scored").1;
    for r in [&ta, &nra] {
        let mut got: Vec<f64> = r.item_ids().iter().map(|&i| score_of(i)).collect();
        got.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (g, n) in got.iter().zip(naive.items.iter()) {
            assert!((g - n.lb).abs() < 1e-9);
        }
    }
    assert!(ta.stats.ra > 0, "TA must pay random accesses");
    assert_eq!(nra.stats.ra, 0, "GRECA variants make no random accesses");
}

#[test]
fn different_groups_get_different_lists() {
    // The paper's premise end-to-end: recommendations are group-relative.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let consensus = ConsensusFunction::average_preference();
    let a = prepared(&w, &cf, &population, vec![0, 1, 2], AffinityMode::Discrete, 200)
        .greca(consensus, GrecaConfig::top(10));
    let b = prepared(&w, &cf, &population, vec![6, 7, 8], AffinityMode::Discrete, 200)
        .greca(consensus, GrecaConfig::top(10));
    assert_ne!(a.item_ids(), b.item_ids());
}

#[test]
fn k_larger_than_catalog_returns_everything() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let p = prepared(&w, &cf, &population, vec![0, 1], AffinityMode::Discrete, 8);
    let r = p.greca(ConsensusFunction::average_preference(), GrecaConfig::top(50));
    assert_eq!(r.items.len(), 8);
}

#[test]
fn incremental_index_supports_midyear_queries() {
    // Query after every append; results at period p must match a
    // batch-built index queried at p.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let source = SocialAffinitySource::new(&w.net);
    let batch = PopulationAffinity::build(&source, &universe, &w.timeline);
    let mut inc = PopulationAffinity::new_static_only(&source, &universe);
    let consensus = ConsensusFunction::average_preference();
    for (p_idx, &period) in w.timeline.periods().iter().enumerate() {
        inc.append_period(&source, period);
        let group = Group::new(vec![UserId(0), UserId(3), UserId(5)]).unwrap();
        let items: Vec<ItemId> = w.ml.matrix.items().take(60).collect();
        let a = prepare(&cf, &inc, &group, &items, p_idx, AffinityMode::Discrete,
            ListLayout::Decomposed, true)
            .greca(consensus, GrecaConfig::top(5));
        let b = prepare(&cf, &batch, &group, &items, p_idx, AffinityMode::Discrete,
            ListLayout::Decomposed, true)
            .greca(consensus, GrecaConfig::top(5));
        assert_eq!(a.item_ids(), b.item_ids(), "period {p_idx}");
    }
}
