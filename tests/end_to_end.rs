//! Cross-crate integration: the full pipeline from raw synthetic data to
//! GRECA recommendations, validated against the naive oracle on real CF
//! inputs (not hand-built tables) — all through the `GrecaEngine` query
//! API.

use greca::prelude::*;

struct World {
    ml: greca_dataset::MovieLens,
    net: greca_dataset::SocialNetwork,
    timeline: Timeline,
}

fn world() -> World {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    World { ml, net, timeline }
}

fn prepared(
    w: &World,
    cf: &UserCfModel<'_>,
    population: &PopulationAffinity,
    members: Vec<u32>,
    mode: AffinityMode,
    n_items: usize,
) -> PreparedQuery {
    let group = Group::new(members.into_iter().map(UserId).collect()).expect("non-empty");
    let items: Vec<ItemId> = w.ml.matrix.items().take(n_items).collect();
    GrecaEngine::new(cf, population)
        .query(&group)
        .items(&items)
        .period(w.timeline.num_periods() - 1)
        .affinity(mode)
        .prepare()
        .expect("valid query")
}

#[test]
fn full_pipeline_matches_naive_across_configs() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);

    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        for consensus in [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.2),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            let k = 7;
            let p = prepared(&w, &cf, &population, vec![0, 2, 5], mode, 120)
                .consensus(consensus)
                .top(k);
            let greca = p.run();
            let naive = p.run_algorithm(Algorithm::Naive);
            let exact = p.exact_scores();
            let score_of =
                |item: ItemId| exact.iter().find(|&&(i, _)| i == item).expect("scored").1;
            let mut got: Vec<f64> = greca.item_ids().iter().map(|&i| score_of(i)).collect();
            got.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (g, n) in got.iter().zip(naive.items.iter()) {
                assert!(
                    (g - n.lb).abs() < 1e-9,
                    "{mode:?}/{}: {g} vs naive {}",
                    consensus.label(),
                    n.lb
                );
            }
            assert!(greca.stats.sa <= naive.stats.sa);
        }
    }
}

#[test]
fn ta_and_threshold_only_agree_with_naive_end_to_end() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let p = prepared(
        &w,
        &cf,
        &population,
        vec![1, 3, 4],
        AffinityMode::Discrete,
        100,
    )
    .top(5);
    let naive = p.run_algorithm(Algorithm::Naive);
    let ta = p.run_algorithm(Algorithm::Ta(TaConfig::default()));
    let nra = p.run_algorithm(Algorithm::Greca(
        GrecaConfig::default().stopping(StoppingRule::ThresholdOnly),
    ));
    let exact = p.exact_scores();
    let score_of = |item: ItemId| exact.iter().find(|&&(i, _)| i == item).expect("scored").1;
    for r in [&ta, &nra] {
        let mut got: Vec<f64> = r.item_ids().iter().map(|&i| score_of(i)).collect();
        got.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (g, n) in got.iter().zip(naive.items.iter()) {
            assert!((g - n.lb).abs() < 1e-9);
        }
    }
    assert!(ta.stats.ra > 0, "TA must pay random accesses");
    assert_eq!(nra.stats.ra, 0, "GRECA variants make no random accesses");
}

#[test]
fn different_groups_get_different_lists() {
    // The paper's premise end-to-end: recommendations are group-relative.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let a = prepared(
        &w,
        &cf,
        &population,
        vec![0, 1, 2],
        AffinityMode::Discrete,
        200,
    )
    .run();
    let b = prepared(
        &w,
        &cf,
        &population,
        vec![6, 7, 8],
        AffinityMode::Discrete,
        200,
    )
    .run();
    assert_ne!(a.item_ids(), b.item_ids());
}

#[test]
fn k_larger_than_catalog_returns_everything() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let r = prepared(&w, &cf, &population, vec![0, 1], AffinityMode::Discrete, 8)
        .top(50)
        .run();
    assert_eq!(r.items.len(), 8);
}

#[test]
fn batch_queries_match_individual_runs() {
    // run_batch is a pure execution strategy: per-query results must be
    // bit-identical to running the same queries one at a time, and the
    // aggregated stats must be their sum.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let engine = GrecaEngine::new(&cf, &population);
    let groups: Vec<Group> = [[0u32, 1, 2], [3, 4, 5], [6, 7, 8], [0, 4, 8]]
        .iter()
        .map(|m| Group::new(m.iter().map(|&u| UserId(u)).collect()).unwrap())
        .collect();
    let items: Vec<ItemId> = w.ml.matrix.items().take(150).collect();
    let queries: Vec<GroupQuery> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let batch = engine.run_batch(&queries);
    assert_eq!(batch.results.len(), queries.len());
    let mut sa_sum = 0;
    for (q, r) in queries.iter().zip(&batch.results) {
        let solo = q.run().expect("valid query");
        let batched = r.as_ref().expect("valid query");
        assert_eq!(solo.item_ids(), batched.item_ids());
        assert_eq!(solo.stats, batched.stats);
        sa_sum += solo.stats.sa;
    }
    assert_eq!(batch.stats.sa, sa_sum);
    let agg = batch.sa_percent_aggregate();
    assert_eq!(agg.n, queries.len());
    assert!(agg.mean > 0.0 && agg.mean <= 100.0);
}

#[test]
fn batch_handles_empty_and_oversubscribed_inputs() {
    // The worker pool is capped by available_parallelism and fed from
    // one shared queue: an empty batch is a no-op, and far more queries
    // than cores must all complete exactly once.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let population =
        PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline);
    let engine = GrecaEngine::new(&cf, &population);

    let empty = engine.run_batch(&[]);
    assert!(empty.results.is_empty());
    assert_eq!(empty.stats.sa, 0);

    let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
    let items: Vec<ItemId> = w.ml.matrix.items().take(40).collect();
    let queries: Vec<GroupQuery> =
        vec![engine.query(&group).items(&items).top(3); 3 * num_cpus_hint()];
    let batch = engine.run_batch(&queries);
    assert_eq!(batch.results.len(), queries.len());
    let first = batch.results[0].as_ref().expect("valid query");
    for r in &batch.results {
        assert_eq!(r.as_ref().expect("valid query"), first);
    }
}

fn num_cpus_hint() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[test]
fn incremental_index_supports_midyear_queries() {
    // Query after every append; results at period p must match a
    // batch-built index queried at p.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let universe: Vec<UserId> = w.net.users().collect();
    let source = SocialAffinitySource::new(&w.net);
    let batch = PopulationAffinity::build(&source, &universe, &w.timeline);
    let mut inc = PopulationAffinity::new_static_only(&source, &universe);
    for (p_idx, &period) in w.timeline.periods().iter().enumerate() {
        inc.append_period(&source, period);
        let group = Group::new(vec![UserId(0), UserId(3), UserId(5)]).unwrap();
        let items: Vec<ItemId> = w.ml.matrix.items().take(60).collect();
        let a = GrecaEngine::new(&cf, &inc)
            .query(&group)
            .items(&items)
            .period(p_idx)
            .top(5)
            .run()
            .expect("valid incremental query");
        let b = GrecaEngine::new(&cf, &batch)
            .query(&group)
            .items(&items)
            .period(p_idx)
            .top(5)
            .run()
            .expect("valid batch query");
        assert_eq!(a.item_ids(), b.item_ids(), "period {p_idx}");
    }
}
