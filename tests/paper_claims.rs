//! Directional paper claims, asserted end-to-end on small worlds.
//!
//! These pin the *shape* of the reproduction: who wins, roughly by what
//! factor, and where the qualitative crossovers fall — the contract
//! EXPERIMENTS.md documents.

use greca::prelude::*;

#[test]
fn greca_saves_accesses_on_a_quality_dominated_world() {
    // §4.2's headline, scaled down. Early termination depends on
    // preference lists sharing their heads, which MovieLens-like
    // (quality-dominated) ratings produce — see DESIGN.md §3. We build a
    // mid-size world with the perf calibration and require a real saveup.
    let mut config = WorldConfig::scalability_scale();
    config.movielens.num_users = 2_000;
    config.movielens.num_items = 1_200;
    config.movielens.target_ratings = 300_000;
    config.cf.top_n = 150;
    let world = config.build();
    let cf = world.cf_model_for(&world.study_users());
    let users = world.study_users();
    let mut total = 0.0;
    for s in 0..3 {
        let group = Group::new(users[s * 6..s * 6 + 6].to_vec()).unwrap();
        let items: Vec<ItemId> = world.movielens.matrix.items().take(1_200).collect();
        let r = GrecaEngine::new(&cf, &world.population)
            .query(&group)
            .items(&items)
            .normalize_rpref(false)
            .run()
            .expect("valid query");
        total += r.stats.sa_percent();
    }
    let mean = total / 3.0;
    assert!(
        mean < 70.0,
        "GRECA should terminate early on average, read {mean:.1}%"
    );
}

#[test]
fn pd_with_heavier_disagreement_weight_stops_earlier() {
    // Figure 8: "PD V2 [w1=0.2] outperforms PD V1 [w1=0.8] … a higher
    // weight on disagreement allows faster stopping, because the items
    // have smaller scores."
    let world = WorldConfig::study_scale().build();
    let cf = world.cf_model_for(&world.study_users());
    let users = world.study_users();
    let items: Vec<ItemId> = world.movielens.matrix.items().take(400).collect();
    let mut v1_total = 0.0;
    let mut v2_total = 0.0;
    for s in 0..4u32 {
        let group = Group::new(users[(s as usize) * 6..(s as usize) * 6 + 6].to_vec()).unwrap();
        let p = GrecaEngine::new(&cf, &world.population)
            .query(&group)
            .items(&items)
            .normalize_rpref(false)
            .prepare()
            .expect("valid query");
        v1_total += p
            .run_with(ConsensusFunction::pairwise_disagreement(0.8))
            .stats
            .sa_percent();
        v2_total += p
            .run_with(ConsensusFunction::pairwise_disagreement(0.2))
            .stats
            .sa_percent();
    }
    assert!(
        v2_total <= v1_total * 1.1,
        "PD V2 ({v2_total:.1}) should not read much more than PD V1 ({v1_total:.1})"
    );
}

#[test]
fn discrete_and_continuous_costs_are_comparable() {
    // §4.2.4: 16.32% vs 16.6% — "the number of accesses for both methods
    // are very similar". We allow a generous factor-2 band.
    let world = WorldConfig::study_scale().build();
    let cf = world.cf_model_for(&world.study_users());
    let users = world.study_users();
    let group = Group::new(users[..6].to_vec()).unwrap();
    let items: Vec<ItemId> = world.movielens.matrix.items().take(400).collect();
    let engine = GrecaEngine::new(&cf, &world.population);
    let run = |mode: AffinityMode| {
        engine
            .query(&group)
            .items(&items)
            .affinity(mode)
            .normalize_rpref(false)
            .run()
            .expect("valid query")
            .stats
            .sa_percent()
    };
    let d = run(AffinityMode::Discrete);
    let c = run(AffinityMode::continuous());
    assert!(
        c < 2.0 * d + 10.0 && d < 2.0 * c + 10.0,
        "discrete {d:.1}% vs continuous {c:.1}%"
    );
}

#[test]
fn accesses_grow_with_period_count() {
    // Figure 6: later query periods add lists, so absolute accesses grow.
    let world = WorldConfig::study_scale().build();
    let cf = world.cf_model_for(&world.study_users());
    let users = world.study_users();
    let group = Group::new(users[..6].to_vec()).unwrap();
    let items: Vec<ItemId> = world.movielens.matrix.items().take(300).collect();
    let engine = GrecaEngine::new(&cf, &world.population);
    let run = |p_idx: usize| {
        engine
            .query(&group)
            .items(&items)
            .period(p_idx)
            .normalize_rpref(false)
            .run()
            .expect("valid query")
            .stats
            .total_entries
    };
    let early = run(0);
    let late = run(world.last_period());
    assert!(
        late > early,
        "later periods must carry more list entries ({early} vs {late})"
    );
}

#[test]
fn figure4_granularity_tradeoff_shape() {
    // Coarser granularity → fewer periods and a higher non-empty
    // fraction; two-month sits between the extremes (Figure 4).
    let net = SocialConfig::paper_scale().generate();
    let source = SocialAffinitySource::new(&net);
    let universe: Vec<UserId> = net.users().collect();
    let mut rows = Vec::new();
    for g in Granularity::figure4_sweep() {
        let tl = Timeline::discretize(0, net.horizon(), g).unwrap();
        let pop = PopulationAffinity::build(&source, &universe, &tl);
        rows.push((tl.num_periods(), pop.non_empty_fraction()));
    }
    for w in rows.windows(2) {
        assert!(w[0].0 >= w[1].0, "period counts shrink");
    }
    let week = rows[0].1;
    let half_year = rows[4].1;
    assert!(
        half_year > week,
        "half-year ({half_year:.2}) must be fuller than week ({week:.2})"
    );
    let two_month = rows[2].1;
    assert!(two_month > week && two_month < half_year + 1e-9);
}

#[test]
fn buffer_rule_never_reads_more_than_threshold_only() {
    // The buffer condition is the novelty that enables early stopping;
    // the traditional threshold-only rule can only ever stop later.
    let world = WorldConfig::study_scale().build();
    let cf = world.cf_model_for(&world.study_users());
    let users = world.study_users();
    let group = Group::new(users[..4].to_vec()).unwrap();
    let items: Vec<ItemId> = world.movielens.matrix.items().take(300).collect();
    let p = GrecaEngine::new(&cf, &world.population)
        .query(&group)
        .items(&items)
        .normalize_rpref(false)
        .prepare()
        .expect("valid query");
    let buffer = p.run();
    let threshold_only = p.run_algorithm(Algorithm::Greca(
        GrecaConfig::default().stopping(StoppingRule::ThresholdOnly),
    ));
    assert!(buffer.stats.sa <= threshold_only.stats.sa);
}
