//! Contract tests for the `GrecaEngine` / `GroupQuery` API:
//!
//! * builder defaults equal the paper's §4.2 settings;
//! * invalid queries fail with typed errors before any work happens;
//! * non-finite provider scores surface as typed errors, never panics.
//!
//! (The 8-argument `prepare()`/`Prepared` shims these tests once
//! guarded the migration from were deleted after their deprecation
//! window; the builder is the only entry point now.)

use greca::prelude::*;

struct World {
    ml: greca_dataset::MovieLens,
    net: greca_dataset::SocialNetwork,
    timeline: Timeline,
}

fn world() -> World {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    World { ml, net, timeline }
}

fn population(w: &World) -> PopulationAffinity {
    let universe: Vec<UserId> = w.net.users().collect();
    PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline)
}

#[test]
fn builder_defaults_are_the_paper_settings() {
    // Omitting every optional field must give §4.2's defaults: k = 10,
    // AP consensus, discrete affinity, decomposed layout, normalized
    // rpref, the latest period, GRECA. We verify behaviorally: the
    // default query equals the same query with every default spelled
    // out.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let engine = GrecaEngine::new(&cf, &pop);
    let group = Group::new(vec![UserId(0), UserId(2), UserId(5)]).unwrap();
    let items: Vec<ItemId> = w.ml.matrix.items().take(120).collect();

    let defaulted = engine.query(&group).items(&items).run().unwrap();
    let spelled_out = engine
        .query(&group)
        .items(&items)
        .period(w.timeline.num_periods() - 1)
        .affinity(AffinityMode::Discrete)
        .layout(ListLayout::Decomposed)
        .consensus(ConsensusFunction::average_preference())
        .normalize_rpref(true)
        .top(10)
        .algorithm(Algorithm::Greca(GrecaConfig::top(10)))
        .run()
        .unwrap();
    assert_eq!(defaulted, spelled_out);
    assert_eq!(defaulted.items.len(), 10, "paper default k = 10");
}

#[test]
fn validation_errors_are_typed() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let engine = GrecaEngine::new(&cf, &pop);
    let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
    let items: Vec<ItemId> = w.ml.matrix.items().take(20).collect();

    // An omitted itemset defaults to the provider's candidate set (every
    // catalog item no member has rated), so the matrix-backed CF engine
    // answers it — identically to spelling that set out by hand.
    let defaulted = engine.query(&group).run().expect("default itemset");
    let candidates = candidate_items(&w.ml.matrix, &group);
    let explicit = engine.query(&group).items(&candidates).run().unwrap();
    assert_eq!(
        defaulted, explicit,
        "default = candidate_items(matrix, group)"
    );

    // A provider without an item catalog cannot default the itemset:
    // only then is an omitted itemset a typed EmptyItemset error.
    struct TableProvider;
    impl PreferenceProvider for TableProvider {
        fn apref(&self, _: UserId, _: ItemId) -> f64 {
            1.0
        }
    }
    let table = TableProvider;
    let table_engine = GrecaEngine::new(&table, &pop);
    assert_eq!(
        table_engine.query(&group).run().unwrap_err(),
        QueryError::EmptyItemset
    );

    // Period beyond the index.
    let np = pop.num_periods();
    assert_eq!(
        engine
            .query(&group)
            .items(&items)
            .period(np)
            .run()
            .unwrap_err(),
        QueryError::PeriodOutOfRange {
            period: np,
            num_periods: np
        }
    );

    // k = 0.
    assert_eq!(
        engine.query(&group).items(&items).top(0).run().unwrap_err(),
        QueryError::ZeroK
    );

    // A member outside the affinity universe (social users are a strict
    // subset of the rating-matrix rows).
    let stranger = UserId(u32::MAX);
    let mixed = Group::new(vec![UserId(0), stranger]).unwrap();
    assert_eq!(
        engine.query(&mixed).items(&items).run().unwrap_err(),
        QueryError::UnknownMember(stranger)
    );

    // A temporal mode against a static-only (zero-period) index would
    // silently degrade to static scoring; it must refuse instead.
    let static_pop = PopulationAffinity::new_static_only(
        &SocialAffinitySource::new(&w.net),
        &w.net.users().collect::<Vec<UserId>>(),
    );
    let static_engine = GrecaEngine::new(&cf, &static_pop);
    assert_eq!(
        static_engine
            .query(&group)
            .items(&items)
            .affinity(AffinityMode::Discrete)
            .run()
            .unwrap_err(),
        QueryError::PeriodOutOfRange {
            period: 0,
            num_periods: 0
        }
    );
    // The non-temporal modes still answer against the same index.
    assert!(static_engine
        .query(&group)
        .items(&items)
        .affinity(AffinityMode::StaticOnly)
        .run()
        .is_ok());

    // Errors are std errors with readable messages.
    let msg = QueryError::EmptyItemset.to_string();
    assert!(msg.contains("empty"), "message: {msg}");
}

#[test]
fn query_k_overrides_algorithm_config_k() {
    // One query object sweeps algorithms without re-stating k: the k
    // recorded inside an Algorithm's config must lose to the query's.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let engine = GrecaEngine::new(&cf, &pop);
    let group = Group::new(vec![UserId(0), UserId(4)]).unwrap();
    let items: Vec<ItemId> = w.ml.matrix.items().take(60).collect();
    let prepared = engine.query(&group).items(&items).top(3).prepare().unwrap();
    let r = prepared.run_algorithm(Algorithm::Greca(GrecaConfig::top(25)));
    assert_eq!(r.items.len(), 3);
    let r = prepared.run_algorithm(Algorithm::Ta(TaConfig::top(25)));
    assert_eq!(r.items.len(), 3);
}

#[test]
fn engine_serves_any_sync_provider() {
    // The provider is a trait object: raw ratings serve through the
    // same engine type as the CF models.
    let w = world();
    let pop = population(&w);
    let raw = greca::cf::RawRatings(&w.ml.matrix);
    let engine = GrecaEngine::new(&raw, &pop);
    let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
    let items: Vec<ItemId> = w.ml.matrix.items().take(40).collect();
    let r = engine.query(&group).items(&items).top(5).run().unwrap();
    assert_eq!(r.items.len(), 5);
}

#[test]
fn builder_rejects_non_finite_scores_with_typed_error() {
    // The ingestion contract: a NaN provider score surfaces as
    // `QueryError::NonFiniteScore` naming the offending item, instead
    // of panicking deep inside list construction.
    struct Poisoned;
    impl greca::cf::PreferenceProvider for Poisoned {
        fn apref(&self, _: UserId, i: ItemId) -> f64 {
            if i == ItemId(1) {
                f64::NAN
            } else {
                1.0
            }
        }
    }

    let w = world();
    let pop = population(&w);
    let engine = GrecaEngine::new(&Poisoned, &pop);
    let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
    let items = vec![ItemId(0), ItemId(1), ItemId(2)];
    let err = engine
        .query(&group)
        .items(&items)
        .top(2)
        .prepare()
        .unwrap_err();
    match err {
        QueryError::NonFiniteScore { what } => {
            assert!(what.contains("i1"), "offending item surfaced: {what}");
        }
        other => panic!("expected NonFiniteScore, got {other:?}"),
    }
}
