//! Cold-vs-warm serving equivalence on real CF inputs.
//!
//! A warm [`GrecaEngine`] answers from the precomputed `Substrate`
//! (zero-copy preference views, rank-ordered affinity lists, cached
//! group-affinity views); a cold engine materializes every query from
//! scratch. The contract: **bit-identical results** — same itemsets,
//! same bounds, same access statistics — across affinity modes,
//! consensus functions and list layouts, for full-universe, subset,
//! shuffled and defaulted itemsets, solo or batched.

use greca::core::Substrate;
use greca::prelude::*;

struct World {
    ml: greca_dataset::MovieLens,
    net: greca_dataset::SocialNetwork,
    timeline: Timeline,
}

fn world() -> World {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    World { ml, net, timeline }
}

fn population(w: &World) -> PopulationAffinity {
    let universe: Vec<UserId> = w.net.users().collect();
    PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline)
}

/// Assert two preparations of the same query are bit-identical under
/// every algorithm.
fn assert_identical(cold: &PreparedQuery, warm: &PreparedQuery, ctx: &str) {
    assert_eq!(cold.run(), warm.run(), "greca mismatch: {ctx}");
    assert_eq!(
        cold.run_algorithm(Algorithm::Ta(TaConfig::default())),
        warm.run_algorithm(Algorithm::Ta(TaConfig::default())),
        "ta mismatch: {ctx}"
    );
    assert_eq!(
        cold.run_algorithm(Algorithm::Naive),
        warm.run_algorithm(Algorithm::Naive),
        "naive mismatch: {ctx}"
    );
    assert_eq!(
        cold.exact_scores(),
        warm.exact_scores(),
        "exact-score mismatch: {ctx}"
    );
}

#[test]
fn warm_engine_equals_cold_across_modes_consensus_layouts() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(120).collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &items).expect("finite CF scores");
    assert!(warm_engine.is_warm() && !cold_engine.is_warm());

    let group = Group::new(vec![UserId(1), UserId(3), UserId(6)]).unwrap();
    let period = w.timeline.num_periods() - 1;
    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        for consensus in [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            for layout in [ListLayout::Decomposed, ListLayout::Single] {
                let mk = |engine: &GrecaEngine<'_>| {
                    engine
                        .query(&group)
                        .items(&items)
                        .period(period)
                        .affinity(mode)
                        .consensus(consensus)
                        .layout(layout)
                        .top(6)
                        .prepare()
                        .unwrap()
                };
                let cold = mk(&cold_engine);
                let warm = mk(&warm_engine);
                assert!(!cold.is_warm(), "cold engine must materialize");
                assert!(warm.is_warm(), "warm engine must serve views");
                let ctx = format!("{mode:?}/{}/{layout:?}", consensus.label());
                assert_identical(&cold, &warm, &ctx);
            }
        }
    }
    assert!(
        warm_engine.cached_affinity_views() > 0,
        "repeat (group, period, mode) keys must populate the cache"
    );
}

#[test]
fn itemset_shape_never_changes_results() {
    // The substrate serves the full universe zero-copy, subsets via an
    // order-preserving filter, and arbitrary input order must not
    // matter; every shape stays bit-identical to cold materialization.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let universe: Vec<ItemId> = w.ml.matrix.items().take(150).collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &universe).expect("finite CF scores");
    let group = Group::new(vec![UserId(0), UserId(2), UserId(5)]).unwrap();

    // Reversed full universe (same set, different order).
    let mut reversed = universe.clone();
    reversed.reverse();
    // A strict subset, deliberately unsorted.
    let mut subset: Vec<ItemId> = universe.iter().copied().step_by(3).collect();
    subset.reverse();

    for (label, itemset) in [
        ("full", universe.clone()),
        ("reversed", reversed),
        ("subset", subset),
    ] {
        let cold = cold_engine
            .query(&group)
            .items(&itemset)
            .top(5)
            .prepare()
            .unwrap();
        let warm = warm_engine
            .query(&group)
            .items(&itemset)
            .top(5)
            .prepare()
            .unwrap();
        assert!(warm.is_warm(), "{label} itemset must be substrate-served");
        assert_identical(&cold, &warm, label);
    }

    // An itemset with an item outside the substrate's universe falls
    // back to cold materialization — transparently, same results.
    let foreign: Vec<ItemId> = w.ml.matrix.items().take(160).collect();
    if foreign.len() > universe.len() {
        let cold = cold_engine
            .query(&group)
            .items(&foreign)
            .top(5)
            .prepare()
            .unwrap();
        let fallback = warm_engine
            .query(&group)
            .items(&foreign)
            .top(5)
            .prepare()
            .unwrap();
        assert!(!fallback.is_warm(), "foreign items must fall back cold");
        assert_identical(&cold, &fallback, "foreign fallback");
    }
}

#[test]
fn defaulted_itemset_matches_cold_default() {
    // Omitting `.items(...)` resolves to the provider's candidate set on
    // both engines; on the warm engine the (strict-subset) candidate set
    // goes through the filtered view path.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let catalog: Vec<ItemId> = w.ml.matrix.items().collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &catalog).expect("finite CF scores");
    let group = Group::new(vec![UserId(0), UserId(4)]).unwrap();
    let cold = cold_engine.query(&group).top(5).prepare().unwrap();
    let warm = warm_engine.query(&group).top(5).prepare().unwrap();
    assert!(warm.is_warm());
    assert_identical(&cold, &warm, "defaulted itemset");
}

#[test]
fn warm_batch_shares_one_substrate_and_matches_solo_runs() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(150).collect();
    let engine = GrecaEngine::warm(&cf, &pop, &items).expect("finite CF scores");
    let groups: Vec<Group> = [[0u32, 1, 2], [3, 4, 5], [6, 7, 8], [0, 4, 8]]
        .iter()
        .map(|m| Group::new(m.iter().map(|&u| UserId(u)).collect()).unwrap())
        .collect();
    let queries: Vec<GroupQuery> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let batch = engine.run_batch(&queries);
    for (q, r) in queries.iter().zip(&batch.results) {
        let solo = q.run().expect("valid query");
        let batched = r.as_ref().expect("valid query");
        assert_eq!(&solo, batched, "batched result must equal solo run");
    }
    // The cohort of 9 users shares one substrate's buffers; the engine
    // reports it as warm and the substrate covers every queried group.
    let substrate = engine.substrate().expect("warm engine has a substrate");
    for g in &groups {
        assert!(substrate.covers_group(g));
    }
}

#[test]
fn shared_substrate_serves_multiple_engines() {
    // A Substrate built once can warm several engines (the sharding
    // shape: one storage, many serving facades).
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(100).collect();
    let substrate =
        std::sync::Arc::new(Substrate::build(&cf, &pop, &items).expect("finite CF scores"));
    let a = GrecaEngine::with_substrate(&cf, &pop, std::sync::Arc::clone(&substrate));
    let b = GrecaEngine::with_substrate(&cf, &pop, std::sync::Arc::clone(&substrate));
    let group = Group::new(vec![UserId(1), UserId(2)]).unwrap();
    let ra = a.query(&group).items(&items).top(4).run().unwrap();
    let rb = b.query(&group).items(&items).top(4).run().unwrap();
    assert_eq!(ra, rb);
    assert!(substrate.pref_bytes() > 0);
}
