//! Cold-vs-warm serving equivalence on real CF inputs.
//!
//! A warm [`GrecaEngine`] answers from the precomputed `Substrate`
//! (zero-copy preference views, rank-ordered affinity lists, cached
//! group-affinity views); a cold engine materializes every query from
//! scratch. The contract: **bit-identical results** — same itemsets,
//! same bounds, same access statistics — across affinity modes,
//! consensus functions and list layouts, for full-universe, subset,
//! shuffled and defaulted itemsets, solo or batched.

use greca::core::Substrate;
use greca::prelude::*;

struct World {
    ml: greca_dataset::MovieLens,
    net: greca_dataset::SocialNetwork,
    timeline: Timeline,
}

fn world() -> World {
    let ml = MovieLensConfig::small().generate();
    let net = SocialConfig::tiny().generate();
    let timeline =
        Timeline::discretize(0, net.horizon(), Granularity::Season).expect("valid horizon");
    World { ml, net, timeline }
}

fn population(w: &World) -> PopulationAffinity {
    let universe: Vec<UserId> = w.net.users().collect();
    PopulationAffinity::build(&SocialAffinitySource::new(&w.net), &universe, &w.timeline)
}

/// Assert two preparations of the same query are bit-identical under
/// every algorithm.
fn assert_identical(cold: &PreparedQuery, warm: &PreparedQuery, ctx: &str) {
    assert_eq!(cold.run(), warm.run(), "greca mismatch: {ctx}");
    assert_eq!(
        cold.run_algorithm(Algorithm::Ta(TaConfig::default())),
        warm.run_algorithm(Algorithm::Ta(TaConfig::default())),
        "ta mismatch: {ctx}"
    );
    assert_eq!(
        cold.run_algorithm(Algorithm::Naive),
        warm.run_algorithm(Algorithm::Naive),
        "naive mismatch: {ctx}"
    );
    assert_eq!(
        cold.exact_scores(),
        warm.exact_scores(),
        "exact-score mismatch: {ctx}"
    );
}

#[test]
fn warm_engine_equals_cold_across_modes_consensus_layouts() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(120).collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &items).expect("finite CF scores");
    assert!(warm_engine.is_warm() && !cold_engine.is_warm());

    let group = Group::new(vec![UserId(1), UserId(3), UserId(6)]).unwrap();
    let period = w.timeline.num_periods() - 1;
    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        for consensus in [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            for layout in [ListLayout::Decomposed, ListLayout::Single] {
                let mk = |engine: &GrecaEngine<'_>| {
                    engine
                        .query(&group)
                        .items(&items)
                        .period(period)
                        .affinity(mode)
                        .consensus(consensus)
                        .layout(layout)
                        .top(6)
                        .prepare()
                        .unwrap()
                };
                let cold = mk(&cold_engine);
                let warm = mk(&warm_engine);
                assert!(!cold.is_warm(), "cold engine must materialize");
                assert!(warm.is_warm(), "warm engine must serve views");
                let ctx = format!("{mode:?}/{}/{layout:?}", consensus.label());
                assert_identical(&cold, &warm, &ctx);
            }
        }
    }
    assert!(
        warm_engine.cached_affinity_views() > 0,
        "repeat (group, period, mode) keys must populate the cache"
    );
}

#[test]
fn itemset_shape_never_changes_results() {
    // The substrate serves the full universe zero-copy, subsets via an
    // order-preserving filter, and arbitrary input order must not
    // matter; every shape stays bit-identical to cold materialization.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let universe: Vec<ItemId> = w.ml.matrix.items().take(150).collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &universe).expect("finite CF scores");
    let group = Group::new(vec![UserId(0), UserId(2), UserId(5)]).unwrap();

    // Reversed full universe (same set, different order).
    let mut reversed = universe.clone();
    reversed.reverse();
    // A strict subset, deliberately unsorted.
    let mut subset: Vec<ItemId> = universe.iter().copied().step_by(3).collect();
    subset.reverse();

    for (label, itemset) in [
        ("full", universe.clone()),
        ("reversed", reversed),
        ("subset", subset),
    ] {
        let cold = cold_engine
            .query(&group)
            .items(&itemset)
            .top(5)
            .prepare()
            .unwrap();
        let warm = warm_engine
            .query(&group)
            .items(&itemset)
            .top(5)
            .prepare()
            .unwrap();
        assert!(warm.is_warm(), "{label} itemset must be substrate-served");
        assert_identical(&cold, &warm, label);
    }

    // An itemset with an item outside the substrate's universe falls
    // back to cold materialization — transparently, same results.
    let foreign: Vec<ItemId> = w.ml.matrix.items().take(160).collect();
    if foreign.len() > universe.len() {
        let cold = cold_engine
            .query(&group)
            .items(&foreign)
            .top(5)
            .prepare()
            .unwrap();
        let fallback = warm_engine
            .query(&group)
            .items(&foreign)
            .top(5)
            .prepare()
            .unwrap();
        assert!(!fallback.is_warm(), "foreign items must fall back cold");
        assert_identical(&cold, &fallback, "foreign fallback");
    }
}

#[test]
fn defaulted_itemset_matches_cold_default() {
    // Omitting `.items(...)` resolves to the provider's candidate set on
    // both engines; on the warm engine the (strict-subset) candidate set
    // goes through the filtered view path.
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let catalog: Vec<ItemId> = w.ml.matrix.items().collect();
    let cold_engine = GrecaEngine::new(&cf, &pop);
    let warm_engine = GrecaEngine::warm(&cf, &pop, &catalog).expect("finite CF scores");
    let group = Group::new(vec![UserId(0), UserId(4)]).unwrap();
    let cold = cold_engine.query(&group).top(5).prepare().unwrap();
    let warm = warm_engine.query(&group).top(5).prepare().unwrap();
    assert!(warm.is_warm());
    assert_identical(&cold, &warm, "defaulted itemset");
}

#[test]
fn warm_batch_shares_one_substrate_and_matches_solo_runs() {
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(150).collect();
    let engine = GrecaEngine::warm(&cf, &pop, &items).expect("finite CF scores");
    let groups: Vec<Group> = [[0u32, 1, 2], [3, 4, 5], [6, 7, 8], [0, 4, 8]]
        .iter()
        .map(|m| Group::new(m.iter().map(|&u| UserId(u)).collect()).unwrap())
        .collect();
    let queries: Vec<GroupQuery> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let batch = engine.run_batch(&queries);
    for (q, r) in queries.iter().zip(&batch.results) {
        let solo = q.run().expect("valid query");
        let batched = r.as_ref().expect("valid query");
        assert_eq!(&solo, batched, "batched result must equal solo run");
    }
    // The cohort of 9 users shares one substrate's buffers; the engine
    // reports it as warm and the substrate covers every queried group.
    let substrate = engine.substrate().expect("warm engine has a substrate");
    for g in &groups {
        assert!(substrate.covers_group(g));
    }
}

#[test]
fn stale_epoch_affinity_views_are_never_served_after_swap() {
    // The live layer scopes the group-affinity cache per epoch: an
    // ingest swap must retire every cached `GroupAffinity` view along
    // with the substrate it was computed beside. We prove it by
    // allocation identity — a post-swap engine computing a fresh view
    // (different pointer) is exactly "the stale cached view was not
    // served"; a same-epoch repeat hitting the same allocation is
    // exactly "the cache works at all".
    let w = world();
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(80).collect();
    let live = LiveEngine::new(
        &pop,
        LiveModel::UserCf(CfConfig::default()),
        &w.ml.matrix,
        &items,
    )
    .expect("finite CF scores");
    let group = Group::new(vec![UserId(0), UserId(3)]).unwrap();

    let pin0 = live.pin();
    let engine0 = pin0.engine();
    let q1 = engine0
        .query(&group)
        .items(&items)
        .top(3)
        .prepare()
        .unwrap();
    let q2 = engine0
        .query(&group)
        .items(&items)
        .top(3)
        .prepare()
        .unwrap();
    assert!(
        std::ptr::eq(q1.affinity(), q2.affinity()),
        "same epoch + same key must hit the same cached allocation"
    );
    assert_eq!(live.cached_affinity_views(), 1);

    let report = live
        .ingest(&[Rating {
            user: UserId(3),
            item: items[0],
            value: 5.0,
            ts: 1,
        }])
        .unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(
        live.cached_affinity_views(),
        0,
        "the swap must retire the previous epoch's cache"
    );

    let pin1 = live.pin();
    let q3 = pin1
        .engine()
        .query(&group)
        .items(&items)
        .top(3)
        .prepare()
        .unwrap();
    assert!(
        !std::ptr::eq(q1.affinity(), q3.affinity()),
        "a post-swap query must not be served the stale epoch's cached view"
    );
    // Affinity is social-derived, so the recomputed view is *equal* in
    // value — the invalidation is about lifecycle, not content.
    assert_eq!(q1.affinity(), q3.affinity());

    // The stale pin, by contrast, legitimately keeps serving its own
    // epoch's cache: pinned readers stay on their snapshot end-to-end.
    let q4 = pin0
        .engine()
        .query(&group)
        .items(&items)
        .top(3)
        .prepare()
        .unwrap();
    assert!(std::ptr::eq(q1.affinity(), q4.affinity()));
    assert_eq!(pin0.epoch(), 0);
    assert_eq!(pin1.epoch(), 1);
}

#[test]
fn live_pinned_queries_match_dedicated_warm_engines() {
    // The live layer is plumbing around the same substrate machinery:
    // a pinned epoch's queries must be bit-identical to a standalone
    // warm engine built from the same ratings.
    let w = world();
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(80).collect();
    let live = LiveEngine::new(
        &pop,
        LiveModel::UserCf(CfConfig::default()),
        &w.ml.matrix,
        &items,
    )
    .expect("finite CF scores");
    // Stream a few ratings, then compare the final epoch.
    live.ingest(&[
        Rating {
            user: UserId(1),
            item: items[2],
            value: 4.5,
            ts: 1,
        },
        Rating {
            user: UserId(5),
            item: items[7],
            value: 1.0,
            ts: 2,
        },
    ])
    .unwrap();
    let pin = live.pin();
    let cf = UserCfModel::fit(pin.matrix(), CfConfig::default());
    let reference = GrecaEngine::warm(&cf, &pop, &items).expect("finite CF scores");
    for members in [[0u32, 3], [1, 5], [2, 7]] {
        let group = Group::new(members.iter().map(|&u| UserId(u)).collect()).unwrap();
        let warm = pin
            .engine()
            .query(&group)
            .items(&items)
            .top(5)
            .prepare()
            .unwrap();
        let standalone = reference
            .query(&group)
            .items(&items)
            .top(5)
            .prepare()
            .unwrap();
        assert!(warm.is_warm() && standalone.is_warm());
        assert_identical(&warm, &standalone, &format!("group {members:?}"));
    }
}

#[test]
fn shared_substrate_serves_multiple_engines() {
    // A Substrate built once can warm several engines (the sharding
    // shape: one storage, many serving facades).
    let w = world();
    let cf = UserCfModel::fit(&w.ml.matrix, CfConfig::default());
    let pop = population(&w);
    let items: Vec<ItemId> = w.ml.matrix.items().take(100).collect();
    let substrate =
        std::sync::Arc::new(Substrate::build(&cf, &pop, &items).expect("finite CF scores"));
    let a = GrecaEngine::with_substrate(&cf, &pop, std::sync::Arc::clone(&substrate));
    let b = GrecaEngine::with_substrate(&cf, &pop, std::sync::Arc::clone(&substrate));
    let group = Group::new(vec![UserId(1), UserId(2)]).unwrap();
    let ra = a.query(&group).items(&items).top(4).run().unwrap();
    let rb = b.query(&group).items(&items).top(4).run().unwrap();
    assert_eq!(ra, rb);
    assert!(substrate.pref_bytes() > 0);
}
