//! # greca
//!
//! A production-quality Rust reproduction of **"Group Recommendation
//! with Temporal Affinities"** (Amer-Yahia, Omidvar-Tehrani, Basu Roy,
//! Shabib — EDBT 2015).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dataset`] — rating/social data model, synthetic MovieLens-1M and
//!   Facebook-like substrates, time periods, group formation;
//! * [`cf`] — collaborative filtering (`apref`) and preference lists;
//! * [`affinity`] — static/periodic/drift affinity, the discrete and
//!   continuous temporal models, the incremental population index;
//! * [`consensus`] — relative preference and the AP/MO/PD/variance
//!   consensus functions;
//! * [`core`] — the GRECA top-k algorithm with its buffer stopping
//!   condition, plus TA and naive baselines with access accounting;
//! * [`eval`] — the simulated user study (satisfaction oracle,
//!   independent/comparative protocols).
//!
//! ## Quickstart
//!
//! ```
//! use greca::prelude::*;
//!
//! // 1. A world: ratings for tastes, a social network for affinities.
//! let ml = MovieLensConfig::small().generate();
//! let net = SocialConfig::tiny().generate();
//! let timeline = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
//!
//! // 2. Substrates: CF for absolute preferences, the affinity index.
//! let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
//! let universe: Vec<UserId> = net.users().collect();
//! let population = PopulationAffinity::build(
//!     &SocialAffinitySource::new(&net), &universe, &timeline);
//!
//! // 3. An ad-hoc group query with temporal affinities.
//! let group = Group::new(vec![UserId(0), UserId(1), UserId(4)]).unwrap();
//! let items: Vec<ItemId> = ml.matrix.items().take(200).collect();
//! let prepared = prepare(
//!     &cf, &population, &group, &items,
//!     timeline.num_periods() - 1,
//!     AffinityMode::Discrete,
//!     ListLayout::Decomposed,
//!     true,
//! );
//! let top = prepared.greca(ConsensusFunction::average_preference(), GrecaConfig::top(5));
//! assert_eq!(top.items.len(), 5);
//! println!("saved {:.1}% of list accesses", top.stats.saveup_percent());
//! ```

pub use greca_affinity as affinity;
pub use greca_cf as cf;
pub use greca_consensus as consensus;
pub use greca_core as core;
pub use greca_dataset as dataset;
pub use greca_eval as eval;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use greca_affinity::{
        AffinityMode, AffinitySource, GroupAffinity, PopulationAffinity, SocialAffinitySource,
        TableAffinitySource,
    };
    pub use greca_cf::{
        candidate_items, group_preference_lists, CfConfig, ItemCfModel, PreferenceList,
        PreferenceProvider, Similarity, UserCfModel,
    };
    pub use greca_consensus::{ConsensusFunction, GroupScorer};
    pub use greca_core::{
        prepare, AccessStats, CheckInterval, GrecaConfig, ListLayout, Prepared, StopReason,
        StoppingRule, TaConfig, TopKResult,
    };
    pub use greca_dataset::prelude::*;
    pub use greca_eval::{
        OracleConfig, RecVariant, SatisfactionOracle, Study, StudyConfig, StudyWorld, WorldConfig,
    };
}
