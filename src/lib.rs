//! # greca
//!
//! A production-quality Rust reproduction of **"Group Recommendation
//! with Temporal Affinities"** (Amer-Yahia, Omidvar-Tehrani, Basu Roy,
//! Shabib — EDBT 2015).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dataset`] — rating/social data model, synthetic MovieLens-1M and
//!   Facebook-like substrates, time periods, group formation;
//! * [`cf`] — collaborative filtering (`apref`) and preference lists;
//! * [`affinity`] — static/periodic/drift affinity, the discrete and
//!   continuous temporal models, the incremental population index;
//! * [`consensus`] — relative preference and the AP/MO/PD/variance
//!   consensus functions;
//! * [`core`] — the GRECA top-k algorithm with its buffer stopping
//!   condition, TA and naive baselines with access accounting, and the
//!   [`GrecaEngine`](core::GrecaEngine) serving API;
//! * [`eval`] — the simulated user study (satisfaction oracle,
//!   independent/comparative protocols).
//!
//! ## Quickstart
//!
//! ```
//! use greca::prelude::*;
//!
//! // 1. A world: ratings for tastes, a social network for affinities.
//! let ml = MovieLensConfig::small().generate();
//! let net = SocialConfig::tiny().generate();
//! let timeline = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
//!
//! // 2. Long-lived substrates: CF for absolute preferences, the
//! //    population-affinity index.
//! let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
//! let universe: Vec<UserId> = net.users().collect();
//! let population = PopulationAffinity::build(
//!     &SocialAffinitySource::new(&net), &universe, &timeline);
//!
//! // 3. A warm engine precomputes the shared Substrate (sorted
//! //    preference columns + affinity arrays) once; queries then serve
//! //    zero-copy views with the paper's defaults baked in (k = 10, AP
//! //    consensus, discrete affinity, decomposed lists, normalized
//! //    relative preference, candidate itemset).
//! let catalog: Vec<ItemId> = ml.matrix.items().collect();
//! let engine = GrecaEngine::warm(&cf, &population, &catalog).unwrap();
//! let group = Group::new(vec![UserId(0), UserId(1), UserId(4)]).unwrap();
//! let top = engine.query(&group).top(5).run().unwrap();
//! assert_eq!(top.items.len(), 5);
//! println!("saved {:.1}% of list accesses", top.stats.saveup_percent());
//!
//! // The same query object runs the comparison set of §4.2 over
//! // identical inputs: GRECA vs TA vs the naive full scan.
//! let prepared = engine.query(&group).top(5).prepare().unwrap();
//! let greca = prepared.run_algorithm(Algorithm::Greca(GrecaConfig::default()));
//! let naive = prepared.run_algorithm(Algorithm::Naive);
//! assert!(greca.stats.sa <= naive.stats.sa);
//! ```
//!
//! Many-group workloads go through [`run_batch`](core::run_batch),
//! which fans prepared queries out across threads and aggregates their
//! access statistics — see `GrecaEngine::run_batch`.

pub use greca_affinity as affinity;
pub use greca_cf as cf;
pub use greca_consensus as consensus;
pub use greca_core as core;
pub use greca_dataset as dataset;
pub use greca_eval as eval;
pub use greca_serve as serve;
pub use greca_worldgen as worldgen;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use greca_affinity::{
        AffinityMode, AffinitySource, GroupAffinity, PopulationAffinity, SocialAffinitySource,
        TableAffinitySource,
    };
    pub use greca_cf::{
        candidate_items, CfConfig, ItemCfModel, PreferenceList, PreferenceProvider, Similarity,
        UserCfModel,
    };
    pub use greca_consensus::ConsensusFunction;
    pub use greca_core::{
        run_batch, run_batch_with, AccessStats, Algorithm, BatchResult, BuildOptions,
        CheckInterval, GrecaConfig, GrecaEngine, GrecaScratch, GroupQuery, IngestReport,
        ListLayout, LiveEngine, LiveModel, MemoryFootprint, PinnedEpoch, PlanOptions, PlanStats,
        PreparedQuery, QueryError, QueryKey, ScoreCompression, SharedMemberState, StopReason,
        StoppingRule, Substrate, TaConfig, TopKResult,
    };
    pub use greca_dataset::prelude::*;
    pub use greca_eval::{
        OracleConfig, RecVariant, SatisfactionOracle, Study, StudyConfig, StudyWorld, WorldConfig,
    };
    pub use greca_worldgen::{GenWorld, Tier, WorldSpec};
}
