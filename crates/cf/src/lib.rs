//! # greca-cf
//!
//! Collaborative-filtering substrate for the GRECA reproduction.
//!
//! The paper computes individual (absolute) preferences `apref(u, i)` with
//! user-based collaborative filtering, "where user similarity is computed
//! with cosine similarity over vec(u), i.e., the ratings of u for each
//! movie" (§4). This crate provides:
//!
//! * sparse similarity measures (cosine — the paper's choice — plus
//!   Pearson and Jaccard),
//! * a user-based neighbourhood model with efficient inverted-index
//!   neighbour discovery,
//! * an item-based model (an extension, useful for ablations),
//! * per-user **preference lists**: items sorted by decreasing predicted
//!   preference, the `PL_u` inputs of GRECA (§3.1),
//! * the **live-update delta layer** ([`delta`]): a [`RatingStore`] of
//!   staged rating upserts/retractions and the [`DirtySet`] computation
//!   that tells a serving substrate which `PL_u` lists and pair-affinity
//!   entries a batch invalidates (the §2.4 serving scenario with
//!   preferences evolving between queries).
//!
//! ```
//! use greca_dataset::prelude::*;
//! use greca_cf::{CfConfig, UserCfModel};
//!
//! let ml = MovieLensConfig::small().generate();
//! let model = UserCfModel::fit(&ml.matrix, CfConfig::default());
//! let score = model.predict(UserId(0), ItemId(1));
//! assert!((0.0..=5.0).contains(&score));
//! ```

pub mod delta;
pub mod item_cf;
pub mod preference;
pub mod similarity;
pub mod user_cf;

pub use delta::{DeltaBatch, DirtySet, InvalidationScope, RatingStore};
pub use item_cf::ItemCfModel;
pub use preference::{
    candidate_items, group_preference_lists, NonFiniteScore, PreferenceList, PreferenceProvider,
    RawRatings,
};
pub use similarity::{user_similarity, Similarity};
pub use user_cf::{CfConfig, UserCfModel};
