//! Live-update deltas: staged rating changes and the dirty sets they
//! imply.
//!
//! §2.4's ad-hoc-group scenario assumes preferences keep evolving while
//! the serving substrates stay long-lived. This module is the
//! bookkeeping half of that story:
//!
//! * [`RatingStore`] accumulates rating upserts and retractions between
//!   publications, deduplicating by `(user, item)` with keep-latest
//!   semantics (the same contract as a replayed ratings log);
//! * [`DeltaBatch`] is one drained, deterministic batch of changes;
//! * [`DeltaBatch::dirty_set`] computes which users' preference lists
//!   `PL_u` and which pair-affinity entries the batch invalidates — the
//!   input to `greca-core`'s incremental `Substrate::rebuild_dirty`.
//!
//! ## Why the dirty rules are what they are
//!
//! Under [`InvalidationScope::RowOnly`] (raw-rating providers, where
//! `apref(u, i)` reads only `u`'s own row) a batch invalidates exactly
//! the batch users' lists.
//!
//! Under [`InvalidationScope::Neighborhood`] (user-based CF) a change to
//! `u`'s row additionally perturbs:
//!
//! * **every user sharing an item with `u`** — cosine/Pearson/Jaccard
//!   similarity to `u` depends on `u`'s whole vector (its norm changes
//!   with any edit), so every co-rater's neighbourhood, and therefore
//!   their predictions, may change. Co-raters are collected over both
//!   the pre- and post-batch matrices: a retraction can *end* a co-rating
//!   relationship that still influenced the pre-batch neighbourhoods;
//! * **every user with an empty rating row** — their fitted mean falls
//!   back to the global mean, which moves with any batch.
//!
//! Everything else is provably untouched: a clean user's own row, mean,
//! and neighbour similarities are unchanged, and their neighbours' rows
//! are unchanged (a changed row forces its owner into the dirty set).
//! The live-path property test (`live_properties.rs` in `greca-core`)
//! exercises exactly this argument against cold refits.

use crate::preference::NonFiniteScore;
use greca_dataset::{ItemId, Rating, RatingMatrix, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// How far a rating change propagates through a preference provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationScope {
    /// `apref(u, i)` reads only `u`'s own ratings (e.g.
    /// [`RawRatings`](crate::RawRatings)): a batch dirties exactly the
    /// batch users.
    RowOnly,
    /// `apref(u, i)` aggregates over similarity neighbourhoods (e.g.
    /// [`UserCfModel`](crate::UserCfModel)): a batch dirties the batch
    /// users, all their co-raters, and all empty-row users (see the
    /// module docs for why this set is sufficient).
    Neighborhood,
}

/// One staged change, keyed by `(user, item)`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    Upsert(f32, greca_dataset::Timestamp),
    Retract,
}

/// Accumulates rating deltas between publications (keep-latest per
/// `(user, item)` key).
///
/// This is the ingestion buffer of the live-serving path: writers stage
/// cheaply here, and the expensive work — dirty-set computation,
/// incremental substrate rebuild, epoch swap — happens once per drained
/// batch.
#[derive(Debug, Clone, Default)]
pub struct RatingStore {
    pending: BTreeMap<(u32, u32), Pending>,
    /// Next id [`RatingStore::allocate_batch_id`] hands out (ids start
    /// at 1; 0 means "no batch").
    next_batch: u64,
    /// Highest batch id accepted by [`RatingStore::stage_batch`].
    last_staged: u64,
}

impl RatingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage one rating upsert. A later stage of the same `(user, item)`
    /// key — upsert or retraction — replaces it.
    ///
    /// Non-finite values are rejected here, at ingestion, exactly like
    /// the preference-list and sorted-list constructors; ratings should
    /// also lie within the provider's score scale (the CF models clamp,
    /// raw-rating providers serve them verbatim).
    pub fn stage(&mut self, rating: Rating) -> Result<(), NonFiniteScore> {
        if !rating.value.is_finite() {
            return Err(NonFiniteScore {
                user: rating.user,
                item: rating.item,
                value: rating.value as f64,
            });
        }
        debug_assert!(rating.value >= 0.0, "ratings must be non-negative");
        self.pending.insert(
            (rating.user.0, rating.item.0),
            Pending::Upsert(rating.value, rating.ts),
        );
        Ok(())
    }

    /// Stage a batch of upserts atomically: the whole slice is validated
    /// first, and on a non-finite value *nothing* is staged — a rejected
    /// batch leaves no partial prefix behind to leak into a later,
    /// unrelated publish.
    pub fn stage_all(&mut self, ratings: &[Rating]) -> Result<(), NonFiniteScore> {
        for r in ratings {
            if !r.value.is_finite() {
                return Err(NonFiniteScore {
                    user: r.user,
                    item: r.item,
                    value: r.value as f64,
                });
            }
        }
        for &r in ratings {
            self.stage(r).expect("validated finite above");
        }
        Ok(())
    }

    /// Stage the removal of `(user, item)`'s rating (a no-op at apply
    /// time if the pair is unrated).
    pub fn stage_retraction(&mut self, user: UserId, item: ItemId) {
        self.pending.insert((user.0, item.0), Pending::Retract);
    }

    /// Reserve the next monotonic batch id (ids start at 1). The
    /// caller makes the id durable (the live engine's WAL `Batch`
    /// record) before staging under it with
    /// [`RatingStore::stage_batch`]; an allocated-but-never-staged id
    /// (the append failed) simply leaves a harmless gap.
    pub fn allocate_batch_id(&mut self) -> u64 {
        self.next_batch = self.next_batch.max(self.last_staged) + 1;
        self.next_batch
    }

    /// Stage one identified batch — upserts then retractions, with the
    /// same atomic validation as [`RatingStore::stage_all`] — unless
    /// `batch_id` was already staged.
    ///
    /// Returns `Ok(true)` when the batch was staged and `Ok(false)`
    /// when `batch_id ≤` the last staged id, in which case the store
    /// is untouched: replaying a write-ahead log (or a client retrying
    /// an acknowledged ingest) is idempotent. Ids must otherwise
    /// arrive in increasing order — this is the single-writer staging
    /// path, serialized by the engine's store lock.
    pub fn stage_batch(
        &mut self,
        batch_id: u64,
        upserts: &[Rating],
        retractions: &[(UserId, ItemId)],
    ) -> Result<bool, NonFiniteScore> {
        if batch_id <= self.last_staged {
            return Ok(false);
        }
        self.stage_all(upserts)?;
        for &(u, i) in retractions {
            self.stage_retraction(u, i);
        }
        self.last_staged = batch_id;
        self.next_batch = self.next_batch.max(batch_id);
        Ok(true)
    }

    /// Highest batch id ever staged (0 if none): the `through_batch`
    /// watermark a publish commits.
    pub fn last_batch(&self) -> u64 {
        self.last_staged
    }

    /// Number of staged keys.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drain everything staged into one deterministic batch (keys in
    /// `(user, item)` order), leaving the store empty.
    pub fn drain(&mut self) -> DeltaBatch {
        let pending = std::mem::take(&mut self.pending);
        let mut upserts = Vec::new();
        let mut retractions = Vec::new();
        for ((u, i), change) in pending {
            match change {
                Pending::Upsert(value, ts) => upserts.push(Rating {
                    user: UserId(u),
                    item: ItemId(i),
                    value,
                    ts,
                }),
                Pending::Retract => retractions.push((UserId(u), ItemId(i))),
            }
        }
        DeltaBatch {
            upserts,
            retractions,
        }
    }
}

/// One drained batch of rating changes, deduplicated by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// Ratings to insert or overwrite.
    pub upserts: Vec<Rating>,
    /// `(user, item)` ratings to remove.
    pub retractions: Vec<(UserId, ItemId)>,
}

impl DeltaBatch {
    /// Number of staged changes.
    pub fn len(&self) -> usize {
        self.upserts.len() + self.retractions.len()
    }

    /// Whether the batch holds no changes.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.retractions.is_empty()
    }

    /// The `(user, item)` keys the batch touches.
    pub fn touched(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        self.upserts
            .iter()
            .map(|r| (r.user, r.item))
            .chain(self.retractions.iter().copied())
    }

    /// The users' preference lists and pair-affinity entries this batch
    /// invalidates, given the rating matrices before (`pre`) and after
    /// (`post`) the batch was applied.
    ///
    /// The user rules are scope-dependent (see the module docs); the
    /// pair set is scope-independent: a pair `(u, v)` is dirty when the
    /// batch changes whether — or what — `u` and `v` co-rated, i.e. `v`
    /// rated a touched item in either matrix. That is precisely the set
    /// of entries a co-rating-derived [`AffinitySource`] would have to
    /// recompute; the social-derived sources the paper uses never go
    /// stale from ratings, and serving layers may ignore the pair set
    /// for them.
    ///
    /// [`AffinitySource`]: https://docs.rs/greca-affinity
    pub fn dirty_set(
        &self,
        pre: &RatingMatrix,
        post: &RatingMatrix,
        scope: InvalidationScope,
    ) -> DirtySet {
        self.dirty_set_bounded(pre, post, scope, usize::MAX, |_| true)
            .0
    }

    /// Like [`DeltaBatch::dirty_set`], but abandons the (potentially
    /// expensive) neighborhood closure as soon as `cap` distinct dirty
    /// users satisfying `counted` have been found — the serving layer's
    /// early exit for degenerate batches ("this already dirties nearly
    /// every precomputed segment; stop counting, rebuild wholesale").
    ///
    /// Returns the dirty set found so far and whether the cap was
    /// reached. When it was, `users`/`pairs` are **lower bounds** of
    /// the full dirty set; when it was not, the result is exactly
    /// [`DeltaBatch::dirty_set`]'s.
    pub fn dirty_set_bounded(
        &self,
        pre: &RatingMatrix,
        post: &RatingMatrix,
        scope: InvalidationScope,
        cap: usize,
        counted: impl Fn(UserId) -> bool,
    ) -> (DirtySet, bool) {
        if self.is_empty() {
            return (DirtySet::default(), false);
        }
        let mut users: BTreeSet<UserId> = BTreeSet::new();
        let mut pairs: BTreeSet<(UserId, UserId)> = BTreeSet::new();
        let mut counted_n = 0usize;
        let mut insert_user = |users: &mut BTreeSet<UserId>, u: UserId| -> bool {
            if users.insert(u) && counted(u) {
                counted_n += 1;
            }
            counted_n >= cap
        };
        let mut capped = false;
        for (u, i) in self.touched() {
            capped |= insert_user(&mut users, u);
            for m in [pre, post] {
                if i.idx() >= m.num_items() {
                    continue;
                }
                for &(v, _) in m.item_ratings(i) {
                    if v != u {
                        pairs.insert((u.min(v), u.max(v)));
                    }
                }
            }
        }
        if scope == InvalidationScope::Neighborhood && !capped {
            let touched_users: Vec<UserId> = users.iter().copied().collect();
            // Co-raters of `u` are users sharing an item with `u` in the
            // pre matrix (pre row × pre columns) or the post matrix
            // (post row × post columns) — each matrix is internally
            // consistent, so cross-matrix combinations add nothing.
            'closure: for &u in &touched_users {
                for m in [pre, post] {
                    if u.idx() >= m.num_users() {
                        continue;
                    }
                    for &(item, _) in m.user_ratings(u) {
                        for &(v, _) in m.item_ratings(item) {
                            if insert_user(&mut users, v) {
                                capped = true;
                                break 'closure;
                            }
                        }
                    }
                }
            }
            // The global mean moved; empty-row users' fallback means —
            // and thus their whole preference lists — moved with it.
            // (Non-batch users are empty in `post` iff empty in `pre`.)
            if !capped {
                for u in post.users() {
                    if post.user_ratings(u).is_empty() && insert_user(&mut users, u) {
                        capped = true;
                        break;
                    }
                }
            }
        }
        (
            DirtySet {
                users: users.into_iter().collect(),
                pairs: pairs.into_iter().collect(),
            },
            capped,
        )
    }
}

/// What a delta batch invalidates: preference lists by user, affinity
/// entries by pair. Both sorted ascending and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Users whose `PL_u` must be recomputed.
    pub users: Vec<UserId>,
    /// `(min, max)` user pairs whose co-rating-derived affinity entries
    /// are invalidated.
    pub pairs: Vec<(UserId, UserId)>,
}

impl DirtySet {
    /// Whether `u`'s preference list is invalidated (binary search —
    /// `users` is sorted).
    pub fn contains_user(&self, u: UserId) -> bool {
        self.users.binary_search(&u).is_ok()
    }

    /// Number of dirty users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of dirty pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the (unordered) pair `{a, b}` has invalidated affinity
    /// entries. Order-insensitive: pairs are stored `(min, max)`.
    pub fn contains_pair(&self, a: UserId, b: UserId) -> bool {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.pairs.binary_search(&key).is_ok()
    }

    /// Whether any user in `members` is dirty. `members` must be sorted
    /// ascending (true for `Group` member lists); both sides being
    /// sorted makes this a single merge walk.
    pub fn intersects_users(&self, members: &[UserId]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.users.len() && j < members.len() {
            match self.users[i].0.cmp(&members[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Whether any unordered pair drawn from `members` is dirty.
    /// `members` must be sorted ascending. O(|members|² · log pairs),
    /// fine for group-sized member lists.
    pub fn intersects_member_pairs(&self, members: &[UserId]) -> bool {
        if self.pairs.is_empty() {
            return false;
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if self.pairs.binary_search(&(a, b)).is_ok() {
                    return true;
                }
            }
        }
        false
    }

    /// Fold `other` into `self` (set union on both components). Used to
    /// coalesce the dirty sets of several publishes into one.
    pub fn merge(&mut self, other: &DirtySet) {
        merge_sorted(&mut self.users, &other.users);
        merge_sorted(&mut self.pairs, &other.pairs);
    }

    /// Compact wire form: `u:1,2;p:3-4,5-6` (either side may be empty).
    /// Used by the serving layer to ship small invalidation summaries
    /// to downstream caches.
    pub fn to_wire(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("u:");
        for (i, u) in self.users.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", u.0);
        }
        out.push_str(";p:");
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}-{}", a.0, b.0);
        }
        out
    }

    /// Parse the `to_wire` form. Returns `None` on any malformed,
    /// unsorted, or duplicated input (the wire form is canonical).
    pub fn from_wire(s: &str) -> Option<DirtySet> {
        let rest = s.strip_prefix("u:")?;
        let (users_part, pairs_part) = rest.split_once(";p:")?;
        let mut users = Vec::new();
        if !users_part.is_empty() {
            for tok in users_part.split(',') {
                users.push(UserId(tok.parse().ok()?));
            }
        }
        let mut pairs = Vec::new();
        if !pairs_part.is_empty() {
            for tok in pairs_part.split(',') {
                let (a, b) = tok.split_once('-')?;
                let (a, b): (u32, u32) = (a.parse().ok()?, b.parse().ok()?);
                if a > b {
                    return None;
                }
                pairs.push((UserId(a), UserId(b)));
            }
        }
        if users.windows(2).any(|w| w[0] >= w[1]) || pairs.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(DirtySet { users, pairs })
    }
}

/// Merge sorted-deduped `other` into sorted-deduped `dst`, keeping it
/// sorted and deduplicated.
fn merge_sorted<T: Ord + Copy>(dst: &mut Vec<T>, other: &[T]) {
    if other.is_empty() {
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + other.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < other.len() {
        match dst[i].cmp(&other[j]) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(other[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(dst[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&other[j..]);
    *dst = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_dataset::RatingMatrixBuilder;

    fn world() -> RatingMatrix {
        // u0 co-rates i0 with u1; u2 rates i2 alone; u3 is empty.
        let mut b = RatingMatrixBuilder::new(4, 3);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(1), 3.0, 0)
            .rate(UserId(1), ItemId(0), 4.0, 0)
            .rate(UserId(2), ItemId(2), 2.0, 0);
        b.build()
    }

    #[test]
    fn store_dedups_keep_latest() {
        let mut store = RatingStore::new();
        store
            .stage(Rating {
                user: UserId(0),
                item: ItemId(1),
                value: 2.0,
                ts: 0,
            })
            .unwrap();
        store
            .stage(Rating {
                user: UserId(0),
                item: ItemId(1),
                value: 4.5,
                ts: 1,
            })
            .unwrap();
        store.stage_retraction(UserId(1), ItemId(0));
        store
            .stage(Rating {
                user: UserId(1),
                item: ItemId(0),
                value: 1.0,
                ts: 2,
            })
            .unwrap();
        assert_eq!(store.len(), 2);
        let batch = store.drain();
        assert!(store.is_empty());
        // The upsert superseded the retraction; the later value won.
        assert_eq!(batch.retractions, vec![]);
        assert_eq!(batch.upserts.len(), 2);
        assert_eq!(batch.upserts[0].value, 4.5);
        assert_eq!(batch.upserts[1].value, 1.0);
    }

    #[test]
    fn retraction_supersedes_upsert() {
        let mut store = RatingStore::new();
        store
            .stage(Rating {
                user: UserId(0),
                item: ItemId(1),
                value: 2.0,
                ts: 0,
            })
            .unwrap();
        store.stage_retraction(UserId(0), ItemId(1));
        let batch = store.drain();
        assert!(batch.upserts.is_empty());
        assert_eq!(batch.retractions, vec![(UserId(0), ItemId(1))]);
    }

    #[test]
    fn non_finite_values_rejected_at_staging() {
        let mut store = RatingStore::new();
        let err = store
            .stage(Rating {
                user: UserId(3),
                item: ItemId(1),
                value: f32::NAN,
                ts: 0,
            })
            .unwrap_err();
        assert_eq!(err.user, UserId(3));
        assert!(store.is_empty());
    }

    #[test]
    fn rejected_batch_stages_nothing() {
        // Atomicity: a valid prefix before the offending rating must
        // not survive the error (it would leak into a later publish).
        let mut store = RatingStore::new();
        let batch = [
            Rating {
                user: UserId(0),
                item: ItemId(0),
                value: 4.0,
                ts: 0,
            },
            Rating {
                user: UserId(1),
                item: ItemId(1),
                value: f32::INFINITY,
                ts: 1,
            },
        ];
        assert!(store.stage_all(&batch).is_err());
        assert!(store.is_empty(), "no partial prefix staged");
    }

    #[test]
    fn batch_ids_make_replay_idempotent() {
        let mut store = RatingStore::new();
        assert_eq!(store.last_batch(), 0);
        let id1 = store.allocate_batch_id();
        let id2 = store.allocate_batch_id();
        assert!(0 < id1 && id1 < id2, "ids are monotonic and nonzero");
        let up = [Rating {
            user: UserId(0),
            item: ItemId(1),
            value: 4.0,
            ts: 0,
        }];
        assert!(store.stage_batch(id1, &up, &[]).unwrap());
        assert_eq!(store.last_batch(), id1);
        assert_eq!(store.len(), 1);
        // A replayed (or client-retried) id is a no-op.
        assert!(!store.stage_batch(id1, &up, &[]).unwrap());
        assert_eq!(store.len(), 1);
        assert!(store
            .stage_batch(id2, &[], &[(UserId(2), ItemId(2))])
            .unwrap());
        assert_eq!(store.last_batch(), id2);
        // The watermark survives a drain (it is cumulative, not
        // per-publish) and later allocations stay above it.
        store.drain();
        assert_eq!(store.last_batch(), id2);
        assert!(store.allocate_batch_id() > id2);
        // Validation failures stage nothing and do not advance the
        // watermark.
        let bad = [Rating {
            user: UserId(9),
            item: ItemId(9),
            value: f32::NAN,
            ts: 0,
        }];
        assert!(store.stage_batch(id2 + 10, &bad, &[]).is_err());
        assert_eq!(store.last_batch(), id2);
        assert!(store.is_empty());
    }

    #[test]
    fn row_only_scope_dirties_exactly_batch_users() {
        let pre = world();
        let mut store = RatingStore::new();
        store
            .stage(Rating {
                user: UserId(2),
                item: ItemId(0),
                value: 1.0,
                ts: 1,
            })
            .unwrap();
        let batch = store.drain();
        let post = pre.apply_deltas(&batch.upserts, &batch.retractions);
        let dirty = batch.dirty_set(&pre, &post, InvalidationScope::RowOnly);
        assert_eq!(dirty.users, vec![UserId(2)]);
        // u2 now co-rates i0 with u0 and u1: both pairs invalidated.
        assert_eq!(
            dirty.pairs,
            vec![(UserId(0), UserId(2)), (UserId(1), UserId(2))]
        );
        assert!(dirty.contains_user(UserId(2)));
        assert!(!dirty.contains_user(UserId(0)));
    }

    #[test]
    fn neighborhood_scope_adds_coraters_and_empty_rows() {
        let pre = world();
        let mut store = RatingStore::new();
        store
            .stage(Rating {
                user: UserId(0),
                item: ItemId(2),
                value: 4.0,
                ts: 1,
            })
            .unwrap();
        let batch = store.drain();
        let post = pre.apply_deltas(&batch.upserts, &batch.retractions);
        let dirty = batch.dirty_set(&pre, &post, InvalidationScope::Neighborhood);
        // u0 changed; u1 co-rates i0 with u0; u2 now co-rates i2 with
        // u0; u3 is an empty row (global-mean coupling). Everyone.
        assert_eq!(
            dirty.users,
            vec![UserId(0), UserId(1), UserId(2), UserId(3)]
        );
        assert_eq!(dirty.pairs, vec![(UserId(0), UserId(2))]);
    }

    #[test]
    fn retraction_dirties_the_pre_batch_coraters() {
        let pre = world();
        let mut store = RatingStore::new();
        store.stage_retraction(UserId(1), ItemId(0));
        let batch = store.drain();
        let post = pre.apply_deltas(&batch.upserts, &batch.retractions);
        let dirty = batch.dirty_set(&pre, &post, InvalidationScope::Neighborhood);
        // u1's only co-rating (with u0, on i0) existed only pre-batch;
        // the pre matrix must still surface it.
        assert!(dirty.contains_user(UserId(0)), "pre-batch co-rater");
        assert!(dirty.contains_user(UserId(1)));
        assert_eq!(dirty.pairs, vec![(UserId(0), UserId(1))]);
    }

    /// The bounded variant is exact when the cap is not reached, and a
    /// truthful lower bound (with the flag set) when it is.
    #[test]
    fn bounded_dirty_set_caps_the_closure() {
        let pre = world();
        let mut store = RatingStore::new();
        store
            .stage(Rating {
                user: UserId(0),
                item: ItemId(2),
                value: 4.0,
                ts: 1,
            })
            .unwrap();
        let batch = store.drain();
        let post = pre.apply_deltas(&batch.upserts, &batch.retractions);
        let full = batch.dirty_set(&pre, &post, InvalidationScope::Neighborhood);
        assert_eq!(full.num_users(), 4, "everyone is dirty in this world");
        // High cap: identical to the unbounded set, not capped.
        let (same, capped) =
            batch.dirty_set_bounded(&pre, &post, InvalidationScope::Neighborhood, 100, |_| true);
        assert!(!capped);
        assert_eq!(same, full);
        // Low cap: stops early with a subset and the flag raised.
        let (partial, capped) =
            batch.dirty_set_bounded(&pre, &post, InvalidationScope::Neighborhood, 2, |_| true);
        assert!(capped);
        assert!(partial.num_users() >= 2);
        assert!(partial.users.iter().all(|u| full.users.contains(u)));
        // Caps count only `counted` users: restricting to u3 (reached
        // last, via the empty-row rule) forces the full closure first.
        let (restricted, capped) =
            batch.dirty_set_bounded(&pre, &post, InvalidationScope::Neighborhood, 1, |u| {
                u == UserId(3)
            });
        assert!(capped);
        assert!(restricted.users.contains(&UserId(3)));
    }

    #[test]
    fn empty_batch_dirties_nothing() {
        let pre = world();
        let batch = DeltaBatch::default();
        let dirty = batch.dirty_set(&pre, &pre, InvalidationScope::Neighborhood);
        assert_eq!(dirty, DirtySet::default());
        assert_eq!(dirty.num_users(), 0);
        assert_eq!(dirty.num_pairs(), 0);
    }

    fn dirty(users: &[u32], pairs: &[(u32, u32)]) -> DirtySet {
        DirtySet {
            users: users.iter().map(|&u| UserId(u)).collect(),
            pairs: pairs.iter().map(|&(a, b)| (UserId(a), UserId(b))).collect(),
        }
    }

    #[test]
    fn intersection_helpers() {
        let d = dirty(&[2, 5, 9], &[(2, 5), (3, 7)]);
        assert!(d.contains_pair(UserId(5), UserId(2)), "order-insensitive");
        assert!(!d.contains_pair(UserId(2), UserId(9)));
        assert!(d.intersects_users(&[UserId(1), UserId(5), UserId(20)]));
        assert!(!d.intersects_users(&[UserId(1), UserId(4), UserId(20)]));
        assert!(!d.intersects_users(&[]));
        // Pair intersection: {3,7} ⊂ members, {2,5} not.
        assert!(d.intersects_member_pairs(&[UserId(3), UserId(6), UserId(7)]));
        assert!(!d.intersects_member_pairs(&[UserId(2), UserId(3), UserId(9)]));
        assert!(!d.intersects_member_pairs(&[UserId(3)]));
    }

    #[test]
    fn merge_unions_both_components() {
        let mut a = dirty(&[1, 3], &[(1, 3)]);
        let b = dirty(&[2, 3, 4], &[(1, 3), (2, 4)]);
        a.merge(&b);
        assert_eq!(a, dirty(&[1, 2, 3, 4], &[(1, 3), (2, 4)]));
        a.merge(&DirtySet::default());
        assert_eq!(a.num_users(), 4);
    }

    #[test]
    fn wire_round_trip() {
        for d in [
            DirtySet::default(),
            dirty(&[7], &[]),
            dirty(&[], &[(0, 9)]),
            dirty(&[1, 2, 3], &[(1, 2), (1, 3)]),
        ] {
            assert_eq!(DirtySet::from_wire(&d.to_wire()), Some(d));
        }
        for bad in [
            "",
            "u:;p",
            "u:2,1;p:",
            "u:;p:3-1",
            "u:x;p:",
            "u:1;p:1-2,1-2",
        ] {
            assert_eq!(DirtySet::from_wire(bad), None, "{bad:?}");
        }
    }
}
