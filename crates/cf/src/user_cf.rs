//! User-based collaborative filtering: the paper's `apref(u, i)` source.
//!
//! Fits a k-nearest-neighbour model: for every user, the `top_n` most
//! similar other users are found through an inverted index over co-rated
//! items (only users sharing at least one item can have non-zero cosine
//! similarity, so the index avoids the dense all-pairs sweep). Prediction
//! uses mean-centred weighted aggregation with graceful fallbacks.

use crate::similarity::{user_similarity, Similarity};
use greca_dataset::{ItemId, RatingMatrix, UserId};
use serde::{Deserialize, Serialize};

/// Configuration of the user-based CF model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfConfig {
    /// Similarity measure (paper: cosine).
    pub similarity: Similarity,
    /// Neighbourhood size per user.
    pub top_n: usize,
    /// Drop neighbours with similarity below this threshold.
    pub min_similarity: f64,
    /// Predictions are clamped into `[min_score, max_score]`; the paper's
    /// preference lists contain scores as low as 0.5 on a 5-star scale.
    pub min_score: f64,
    /// Upper clamp for predictions.
    pub max_score: f64,
}

impl Default for CfConfig {
    fn default() -> Self {
        CfConfig {
            similarity: Similarity::Cosine,
            top_n: 40,
            min_similarity: 1e-6,
            min_score: 0.0,
            max_score: 5.0,
        }
    }
}

/// A fitted user-based CF model borrowing the rating matrix.
#[derive(Debug, Clone)]
pub struct UserCfModel<'a> {
    matrix: &'a RatingMatrix,
    cfg: CfConfig,
    /// Per-user neighbour lists `(neighbour, similarity)`, similarity-descending.
    neighbors: Vec<Vec<(UserId, f64)>>,
    user_means: Vec<f64>,
    global_mean: f64,
}

impl<'a> UserCfModel<'a> {
    /// Fit the model: discover each user's `top_n` neighbours.
    pub fn fit(matrix: &'a RatingMatrix, cfg: CfConfig) -> Self {
        let all: Vec<UserId> = (0..matrix.num_users() as u32).map(UserId).collect();
        Self::fit_for(matrix, cfg, &all)
    }

    /// Fit neighbourhoods only for `users` — everything the
    /// group-recommendation path needs, since preference lists are built
    /// per group member. At MovieLens-1M scale this turns an all-pairs
    /// sweep into a per-member one (the paper's ad-hoc-group setting).
    /// Predictions for unfitted users fall back to their rating mean.
    pub fn fit_for(matrix: &'a RatingMatrix, cfg: CfConfig, users: &[UserId]) -> Self {
        assert!(cfg.top_n > 0, "neighbourhood must be non-empty");
        assert!(cfg.min_score <= cfg.max_score, "invalid clamp range");
        let n = matrix.num_users();
        let global_mean = matrix
            .global_mean()
            .unwrap_or((cfg.min_score + cfg.max_score) / 2.0);
        let user_means: Vec<f64> = (0..n as u32)
            .map(|u| matrix.user_mean(UserId(u)).unwrap_or(global_mean))
            .collect();

        let mut neighbors = vec![Vec::new(); n];
        // Scratch: candidate marks to avoid re-scoring within one user.
        let mut seen_epoch = vec![u32::MAX; n];
        for &user in users {
            let u = user.idx();
            let mut cands: Vec<UserId> = Vec::new();
            for &(item, _) in matrix.user_ratings(user) {
                for &(v, _) in matrix.item_ratings(item) {
                    let vi = v.idx();
                    if vi != u && seen_epoch[vi] != u as u32 {
                        seen_epoch[vi] = u as u32;
                        cands.push(v);
                    }
                }
            }
            let mut scored: Vec<(UserId, f64)> = cands
                .into_iter()
                .map(|v| (v, user_similarity(matrix, user, v, cfg.similarity)))
                .filter(|&(_, s)| s > cfg.min_similarity)
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("similarities are finite"));
            scored.truncate(cfg.top_n);
            neighbors[u] = scored;
        }
        UserCfModel {
            matrix,
            cfg,
            neighbors,
            user_means,
            global_mean,
        }
    }

    /// The fitted configuration.
    pub fn config(&self) -> &CfConfig {
        &self.cfg
    }

    /// The underlying rating matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix
    }

    /// The neighbours of `u` with their similarities, best first.
    pub fn neighbors(&self, u: UserId) -> &[(UserId, f64)] {
        &self.neighbors[u.idx()]
    }

    /// Predicted preference `apref(u, i)`.
    ///
    /// If `u` has rated `i`, the observed rating is returned (the best
    /// possible estimate). Otherwise the mean-centred neighbour
    /// aggregation is used, falling back to the user mean and finally the
    /// global mean. The result is clamped to the configured score range,
    /// so it is always finite and non-negative (a requirement of GRECA's
    /// lower-bound computation, which substitutes 0 for unseen entries).
    pub fn predict(&self, u: UserId, i: ItemId) -> f64 {
        if let Some(v) = self.matrix.get(u, i) {
            return (v as f64).clamp(self.cfg.min_score, self.cfg.max_score);
        }
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(v, sim) in &self.neighbors[u.idx()] {
            if let Some(r) = self.matrix.get(v, i) {
                num += sim * (r as f64 - self.user_means[v.idx()]);
                den += sim.abs();
            }
        }
        let base = self.user_means[u.idx()];
        let raw = if den > 0.0 { base + num / den } else { base };
        let raw = if raw.is_finite() {
            raw
        } else {
            self.global_mean
        };
        raw.clamp(self.cfg.min_score, self.cfg.max_score)
    }

    /// Mean rating the model uses for `u`.
    pub fn user_mean(&self, u: UserId) -> f64 {
        self.user_means[u.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_dataset::{MovieLensConfig, RatingMatrixBuilder};

    fn tiny_matrix() -> RatingMatrix {
        // u0 and u1 agree perfectly; u2 is the odd one out.
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(1), 4.0, 0)
            .rate(UserId(0), ItemId(2), 1.0, 0)
            .rate(UserId(1), ItemId(0), 5.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(1), ItemId(3), 5.0, 0)
            .rate(UserId(2), ItemId(0), 1.0, 0)
            .rate(UserId(2), ItemId(2), 5.0, 0);
        b.build()
    }

    #[test]
    fn known_rating_is_returned_verbatim() {
        let m = tiny_matrix();
        let model = UserCfModel::fit(&m, CfConfig::default());
        assert_eq!(model.predict(UserId(0), ItemId(0)), 5.0);
    }

    #[test]
    fn prediction_follows_similar_neighbour() {
        let m = tiny_matrix();
        let model = UserCfModel::fit(&m, CfConfig::default());
        // u0 hasn't rated i3; the similar u1 rated it 5 (above u1's mean),
        // so u0's prediction must exceed u0's own mean.
        let p = model.predict(UserId(0), ItemId(3));
        let mean0 = model.user_mean(UserId(0));
        assert!(p > mean0, "prediction {p} should be above mean {mean0}");
    }

    #[test]
    fn predictions_clamped_and_finite() {
        let ml = MovieLensConfig::small().generate();
        let model = UserCfModel::fit(&ml.matrix, CfConfig::default());
        for u in ml.matrix.users().take(25) {
            for i in ml.matrix.items().take(60) {
                let p = model.predict(u, i);
                assert!(p.is_finite());
                assert!((0.0..=5.0).contains(&p));
            }
        }
    }

    #[test]
    fn cold_user_falls_back_to_global_mean() {
        let mut b = RatingMatrixBuilder::new(2, 2);
        b.rate(UserId(0), ItemId(0), 4.0, 0);
        let m = b.build();
        let model = UserCfModel::fit(&m, CfConfig::default());
        // User 1 has no ratings at all → global mean (4.0).
        assert_eq!(model.predict(UserId(1), ItemId(1)), 4.0);
    }

    #[test]
    fn neighbors_sorted_and_bounded() {
        let ml = MovieLensConfig::small().generate();
        let cfg = CfConfig {
            top_n: 10,
            ..CfConfig::default()
        };
        let model = UserCfModel::fit(&ml.matrix, cfg);
        for u in ml.matrix.users() {
            let ns = model.neighbors(u);
            assert!(ns.len() <= 10);
            for w in ns.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            for &(v, s) in ns {
                assert_ne!(v, u, "self is never a neighbour");
                assert!(s > 0.0);
            }
        }
    }

    #[test]
    fn empty_matrix_predicts_midpoint() {
        let m = RatingMatrixBuilder::new(3, 3).build();
        let model = UserCfModel::fit(&m, CfConfig::default());
        assert_eq!(model.predict(UserId(0), ItemId(0)), 2.5);
    }

    #[test]
    #[should_panic(expected = "neighbourhood")]
    fn zero_topn_rejected() {
        let m = RatingMatrixBuilder::new(1, 1).build();
        let _ = UserCfModel::fit(
            &m,
            CfConfig {
                top_n: 0,
                ..CfConfig::default()
            },
        );
    }
}
