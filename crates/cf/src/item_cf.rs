//! Item-based collaborative filtering (extension).
//!
//! The paper only requires user-based CF, but notes that "any single user
//! recommendation strategy" can feed GRECA's preference lists (§3.2).
//! Item-based CF is the most common alternative; we provide it so the
//! harness can swap `apref` sources and verify GRECA is agnostic to them.

use crate::similarity::Similarity;
use greca_dataset::{ItemId, RatingMatrix, UserId};

/// A fitted item-based CF model.
///
/// Similarities between items are computed lazily (per prediction) over
/// the item-major rating view; with adjusted-cosine weighting when the
/// measure is [`Similarity::Cosine`].
#[derive(Debug, Clone)]
pub struct ItemCfModel<'a> {
    matrix: &'a RatingMatrix,
    measure: Similarity,
    top_n: usize,
    user_means: Vec<f64>,
    global_mean: f64,
}

impl<'a> ItemCfModel<'a> {
    /// The underlying rating matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix
    }

    /// Create a model over the matrix.
    pub fn fit(matrix: &'a RatingMatrix, measure: Similarity, top_n: usize) -> Self {
        assert!(top_n > 0, "neighbourhood must be non-empty");
        let global_mean = matrix.global_mean().unwrap_or(2.5);
        let user_means = (0..matrix.num_users() as u32)
            .map(|u| matrix.user_mean(UserId(u)).unwrap_or(global_mean))
            .collect();
        ItemCfModel {
            matrix,
            measure,
            top_n,
            user_means,
            global_mean,
        }
    }

    fn item_similarity(&self, a: ItemId, b: ItemId) -> f64 {
        let ra = self.matrix.item_ratings(a);
        let rb = self.matrix.item_ratings(b);
        let (mut i, mut j) = (0usize, 0usize);
        let (mut dot, mut na, mut nb, mut inter) = (0.0f64, 0.0f64, 0.0f64, 0usize);
        while i < ra.len() && j < rb.len() {
            match ra[i].0.cmp(&rb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Adjusted cosine: centre by the co-rating user's mean.
                    let mu = self.user_means[ra[i].0.idx()];
                    let x = ra[i].1 as f64 - mu;
                    let y = rb[j].1 as f64 - mu;
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        match self.measure {
            Similarity::Jaccard => {
                let union = ra.len() + rb.len() - inter;
                if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                }
            }
            _ => {
                let denom = (na * nb).sqrt();
                if denom <= 1e-12 {
                    0.0
                } else {
                    (dot / denom).clamp(-1.0, 1.0)
                }
            }
        }
    }

    /// Predicted preference of `u` for `i` from the most similar items
    /// `u` has rated.
    pub fn predict(&self, u: UserId, i: ItemId) -> f64 {
        if let Some(v) = self.matrix.get(u, i) {
            return v as f64;
        }
        let mut sims: Vec<(f64, f64)> = self
            .matrix
            .user_ratings(u)
            .iter()
            .map(|&(j, r)| (self.item_similarity(i, j), r as f64))
            .filter(|&(s, _)| s > 0.0)
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite similarities"));
        sims.truncate(self.top_n);
        let den: f64 = sims.iter().map(|&(s, _)| s).sum();
        if den <= 0.0 {
            return self
                .matrix
                .user_mean(u)
                .unwrap_or(self.global_mean)
                .clamp(0.0, 5.0);
        }
        let num: f64 = sims.iter().map(|&(s, r)| s * r).sum();
        (num / den).clamp(0.0, 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_dataset::{MovieLensConfig, RatingMatrixBuilder};

    #[test]
    fn known_rating_returned() {
        let mut b = RatingMatrixBuilder::new(1, 2);
        b.rate(UserId(0), ItemId(0), 3.0, 0);
        let m = b.build();
        let model = ItemCfModel::fit(&m, Similarity::Cosine, 5);
        assert_eq!(model.predict(UserId(0), ItemId(0)), 3.0);
    }

    #[test]
    fn cold_item_falls_back_to_user_mean() {
        let mut b = RatingMatrixBuilder::new(2, 3);
        b.rate(UserId(0), ItemId(0), 4.0, 0)
            .rate(UserId(0), ItemId(1), 2.0, 0);
        let m = b.build();
        let model = ItemCfModel::fit(&m, Similarity::Cosine, 5);
        // Item 2 co-rated with nothing → user mean 3.0.
        assert_eq!(model.predict(UserId(0), ItemId(2)), 3.0);
    }

    #[test]
    fn predictions_in_range_on_synthetic_world() {
        let ml = MovieLensConfig::small().generate();
        let model = ItemCfModel::fit(&ml.matrix, Similarity::Cosine, 20);
        for u in ml.matrix.users().take(10) {
            for i in ml.matrix.items().take(30) {
                let p = model.predict(u, i);
                assert!(p.is_finite() && (0.0..=5.0).contains(&p));
            }
        }
    }

    #[test]
    fn jaccard_measure_works() {
        let ml = MovieLensConfig::small().generate();
        let model = ItemCfModel::fit(&ml.matrix, Similarity::Jaccard, 20);
        let p = model.predict(UserId(1), ItemId(2));
        assert!(p.is_finite() && (0.0..=5.0).contains(&p));
    }
}
