//! Absolute preference lists `PL_u` — GRECA's per-user sorted inputs.
//!
//! §3.1: "The user-item preference lists of those group members … Each
//! list contains items preferred by each user sorted in decreasing order
//! of preference", and §3.2: "Each PL can be obtained with any single
//! user recommendation strategy."
//!
//! [`PreferenceProvider`] abstracts over the `apref` source (user-based
//! CF, item-based CF, raw ratings, or hand-written tables like the
//! paper's running example) so the group-recommendation layers stay
//! independent of how individual preferences are produced.

use crate::item_cf::ItemCfModel;
use crate::user_cf::UserCfModel;
use greca_dataset::{Group, ItemId, RatingMatrix, UserId};
use serde::{Deserialize, Serialize};

/// A non-finite preference score caught at ingestion.
///
/// GRECA's bound arithmetic is only sound over finite scores; a NaN or
/// infinity coming out of a provider used to surface as a sort-comparator
/// panic deep inside list construction. It is now rejected where the
/// value enters the system and reported with its origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteScore {
    /// The user whose preference produced the value.
    pub user: UserId,
    /// The item it was produced for.
    pub item: ItemId,
    /// The offending value (NaN or ±∞).
    pub value: f64,
}

impl std::fmt::Display for NonFiniteScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite preference score {} for apref({}, {})",
            self.value, self.user, self.item
        )
    }
}

impl std::error::Error for NonFiniteScore {}

/// A source of absolute preferences `apref(u, i)`.
///
/// Implementations must return finite, non-negative scores: GRECA's
/// lower-bound computation substitutes 0 for unseen entries (§3.2), which
/// is only a valid lower bound when scores cannot be negative.
pub trait PreferenceProvider {
    /// Absolute preference of `u` for `i` (finite, ≥ 0).
    fn apref(&self, u: UserId, i: ItemId) -> f64;

    /// Build the sorted preference list of `u` over `items`, rejecting
    /// non-finite scores instead of panicking later in a sort comparator.
    fn preference_list(
        &self,
        u: UserId,
        items: &[ItemId],
    ) -> Result<PreferenceList, NonFiniteScore> {
        let entries: Vec<(ItemId, f64)> = items.iter().map(|&i| (i, self.apref(u, i))).collect();
        PreferenceList::from_entries(u, entries)
    }

    /// Fill `out[d] = apref(u, items[d])` for the whole itemset in one
    /// call — the batched form bulk consumers (substrate construction)
    /// use so a `dyn` provider pays one virtual dispatch per *user*
    /// rather than one per *item*. `out.len()` must equal
    /// `items.len()`; scores are written unvalidated (callers that need
    /// the finiteness guarantee check the filled slice, where the
    /// offending item is still addressable by index).
    ///
    /// Sparse providers should override this: [`RawRatings`] walks the
    /// user's rating row once instead of probing it per item.
    fn fill_aprefs(&self, u: UserId, items: &[ItemId], out: &mut [f64]) {
        debug_assert_eq!(items.len(), out.len());
        for (d, &i) in items.iter().enumerate() {
            out[d] = self.apref(u, i);
        }
    }

    /// Sparse form of [`fill_aprefs`](PreferenceProvider::fill_aprefs):
    /// append `(d, apref(u, items[d]))` for every itemset position `d`
    /// whose score **may** be nonzero, in strictly ascending `d`, and
    /// return `true`. Positions not emitted are guaranteed to score
    /// exactly `+0.0`. Returning `false` (the default) tells the caller
    /// the provider has no sparse structure to exploit; bulk consumers
    /// then fall back to the dense fill.
    ///
    /// **Precondition:** `items` must be strictly ascending by id —
    /// bulk consumers (substrate construction) always canonicalize
    /// itemsets that way. Implementations may rely on it (and should
    /// `debug_assert!` it) rather than re-checking per call.
    fn sparse_aprefs(&self, u: UserId, items: &[ItemId], out: &mut Vec<(u32, f64)>) -> bool {
        let _ = (u, items, out);
        false
    }

    /// The candidate itemset for `group` when the caller does not supply
    /// one: every catalog item **no group member has already rated**
    /// (§2.4 poses the problem over such a set). `None` when the provider
    /// cannot enumerate an item catalog (e.g. a hand-built score table).
    fn candidate_items(&self, group: &Group) -> Option<Vec<ItemId>> {
        let _ = group;
        None
    }
}

impl PreferenceProvider for UserCfModel<'_> {
    fn apref(&self, u: UserId, i: ItemId) -> f64 {
        self.predict(u, i)
    }

    fn candidate_items(&self, group: &Group) -> Option<Vec<ItemId>> {
        Some(candidate_items(self.matrix(), group))
    }
}

impl PreferenceProvider for ItemCfModel<'_> {
    fn apref(&self, u: UserId, i: ItemId) -> f64 {
        self.predict(u, i)
    }

    fn candidate_items(&self, group: &Group) -> Option<Vec<ItemId>> {
        Some(candidate_items(self.matrix(), group))
    }
}

/// Raw observed ratings as preferences (0 when unrated); useful in tests
/// and for encoding the paper's running example.
#[derive(Debug, Clone)]
pub struct RawRatings<'a>(pub &'a RatingMatrix);

impl PreferenceProvider for RawRatings<'_> {
    fn apref(&self, u: UserId, i: ItemId) -> f64 {
        self.0.get(u, i).map(|v| v as f64).unwrap_or(0.0)
    }

    fn candidate_items(&self, group: &Group) -> Option<Vec<ItemId>> {
        Some(candidate_items(self.0, group))
    }

    /// Walk `u`'s rating row once (`O(r log m + m)`) instead of binary
    /// searching it per item (`O(m log r)`) — the row is usually a few
    /// dozen entries while serving itemsets run to thousands.
    fn fill_aprefs(&self, u: UserId, items: &[ItemId], out: &mut [f64]) {
        debug_assert_eq!(items.len(), out.len());
        // The row walk scatters by itemset position, which is only
        // correct when positions are unambiguous (strictly ascending
        // ids). Arbitrary itemsets take the generic per-item path.
        if items.windows(2).any(|w| w[0] >= w[1]) {
            for (d, &i) in items.iter().enumerate() {
                out[d] = self.apref(u, i);
            }
            return;
        }
        out.fill(0.0);
        for &(item, value) in self.0.user_ratings(u) {
            if let Ok(d) = items.binary_search(&item) {
                out[d] = f64::from(value);
            }
        }
    }

    /// A rating row is the sparse structure itself: one pass over it,
    /// `O(r log m)`, touching nothing per unrated item.
    fn sparse_aprefs(&self, u: UserId, items: &[ItemId], out: &mut Vec<(u32, f64)>) -> bool {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "sparse_aprefs requires a strictly ascending itemset"
        );
        for &(item, value) in self.0.user_ratings(u) {
            if let Ok(d) = items.binary_search(&item) {
                out.push((d as u32, f64::from(value)));
            }
        }
        true
    }
}

/// One user's absolute-preference list, sorted by decreasing score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferenceList {
    /// The list's owner.
    pub user: UserId,
    /// `(item, apref)` pairs, score-descending.
    pub entries: Vec<(ItemId, f64)>,
}

impl PreferenceList {
    /// Build directly from entries, sorting them score-descending.
    ///
    /// Non-finite scores are rejected here, at ingestion, instead of
    /// panicking inside the sort comparator.
    pub fn from_entries(
        user: UserId,
        mut entries: Vec<(ItemId, f64)>,
    ) -> Result<Self, NonFiniteScore> {
        for &(item, value) in &entries {
            if !value.is_finite() {
                return Err(NonFiniteScore { user, item, value });
            }
        }
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("validated finite above")
                .then_with(|| a.0.cmp(&b.0))
        });
        Ok(PreferenceList { user, entries })
    }

    /// Decompose into columnar `(item ids, scores)` arrays, preserving
    /// the sorted order without re-sorting — the zero-sort ingestion path
    /// of `greca-core`'s substrate layer.
    pub fn into_sorted_columns(self) -> (Vec<u32>, Vec<f64>) {
        let mut ids = Vec::with_capacity(self.entries.len());
        let mut scores = Vec::with_capacity(self.entries.len());
        for (i, s) in self.entries {
            ids.push(i.0);
            scores.push(s);
        }
        (ids, scores)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Score of `item` via linear probe (lists are short-lived; random
    /// access is only used by the TA baseline, which charges an RA for it).
    pub fn score_of(&self, item: ItemId) -> Option<f64> {
        self.entries
            .iter()
            .find(|&&(i, _)| i == item)
            .map(|&(_, s)| s)
    }
}

/// The candidate item set for a group: all items **no group member has
/// already rated** (the problem definition excludes items already known
/// to members: "i is not individually recommended to u", §2.4).
pub fn candidate_items(matrix: &RatingMatrix, group: &Group) -> Vec<ItemId> {
    matrix
        .items()
        .filter(|&i| group.members().iter().all(|&u| !matrix.has_rated(u, i)))
        .collect()
}

/// Build the `PL_u` lists for every group member over a shared candidate
/// item set, rejecting non-finite scores at ingestion.
pub fn group_preference_lists<P: PreferenceProvider + ?Sized>(
    provider: &P,
    group: &Group,
    items: &[ItemId],
) -> Result<Vec<PreferenceList>, NonFiniteScore> {
    group
        .members()
        .iter()
        .map(|&u| provider.preference_list(u, items))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user_cf::CfConfig;
    use greca_dataset::{MovieLensConfig, RatingMatrixBuilder};

    #[test]
    fn preference_list_is_sorted_desc() {
        let ml = MovieLensConfig::small().generate();
        let model = UserCfModel::fit(&ml.matrix, CfConfig::default());
        let items: Vec<ItemId> = ml.matrix.items().take(100).collect();
        let pl = model
            .preference_list(UserId(3), &items)
            .expect("CF scores are finite");
        assert_eq!(pl.len(), 100);
        for w in pl.entries.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ties_break_by_item_id() {
        let pl = PreferenceList::from_entries(
            UserId(0),
            vec![(ItemId(5), 1.0), (ItemId(2), 1.0), (ItemId(9), 2.0)],
        )
        .unwrap();
        let ids: Vec<u32> = pl.entries.iter().map(|&(i, _)| i.0).collect();
        assert_eq!(ids, vec![9, 2, 5]);
    }

    #[test]
    fn non_finite_scores_rejected_at_ingestion() {
        let err =
            PreferenceList::from_entries(UserId(3), vec![(ItemId(0), 1.0), (ItemId(7), f64::NAN)])
                .unwrap_err();
        assert_eq!(err.user, UserId(3));
        assert_eq!(err.item, ItemId(7));
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("non-finite"));
        let inf = PreferenceList::from_entries(UserId(0), vec![(ItemId(1), f64::INFINITY)]);
        assert!(inf.is_err());
    }

    #[test]
    fn sorted_columns_preserve_order() {
        let pl = PreferenceList::from_entries(
            UserId(0),
            vec![(ItemId(5), 1.0), (ItemId(2), 3.0), (ItemId(9), 2.0)],
        )
        .unwrap();
        let (ids, scores) = pl.into_sorted_columns();
        assert_eq!(ids, vec![2, 9, 5]);
        assert_eq!(scores, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn providers_supply_candidate_itemsets() {
        let mut b = RatingMatrixBuilder::new(2, 3);
        b.rate(UserId(0), ItemId(0), 5.0, 0);
        let m = b.build();
        let g = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let raw = RawRatings(&m);
        assert_eq!(
            raw.candidate_items(&g),
            Some(vec![ItemId(1), ItemId(2)]),
            "raw ratings exclude member-rated items"
        );
        // A provider with no catalog (the trait default) opts out.
        struct Table;
        impl PreferenceProvider for Table {
            fn apref(&self, _: UserId, _: ItemId) -> f64 {
                1.0
            }
        }
        assert_eq!(Table.candidate_items(&g), None);
    }

    #[test]
    fn score_of_finds_items() {
        let pl = PreferenceList::from_entries(UserId(0), vec![(ItemId(1), 3.0), (ItemId(2), 4.0)])
            .unwrap();
        assert_eq!(pl.score_of(ItemId(1)), Some(3.0));
        assert_eq!(pl.score_of(ItemId(7)), None);
    }

    #[test]
    fn candidate_items_excludes_rated_by_any_member() {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(2), ItemId(2), 3.0, 0);
        let m = b.build();
        let g = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let cands = candidate_items(&m, &g);
        // Items 0 and 1 are rated by members; 2 (rated only by the
        // non-member u2) and 3 remain.
        assert_eq!(cands, vec![ItemId(2), ItemId(3)]);
    }

    #[test]
    fn raw_ratings_provider_defaults_to_zero() {
        let mut b = RatingMatrixBuilder::new(1, 2);
        b.rate(UserId(0), ItemId(0), 4.5, 0);
        let m = b.build();
        let p = RawRatings(&m);
        assert_eq!(p.apref(UserId(0), ItemId(0)), 4.5);
        assert_eq!(p.apref(UserId(0), ItemId(1)), 0.0);
    }

    #[test]
    fn group_lists_cover_all_members() {
        let ml = MovieLensConfig::small().generate();
        let model = UserCfModel::fit(&ml.matrix, CfConfig::default());
        let g = Group::new(vec![UserId(0), UserId(5), UserId(9)]).unwrap();
        let items: Vec<ItemId> = ml.matrix.items().take(50).collect();
        let lists = group_preference_lists(&model, &g, &items).expect("finite CF scores");
        assert_eq!(lists.len(), 3);
        assert_eq!(lists[0].user, UserId(0));
        assert_eq!(lists[2].user, UserId(9));
        for l in &lists {
            assert_eq!(l.len(), 50);
        }
    }
}
