//! Pairwise user similarity over sparse rating vectors.
//!
//! The paper (§4) uses cosine similarity
//! `cos(u, u') = (u · u') / (‖u‖₂ · ‖u'‖₂)` over each user's rating
//! vector. Pearson correlation and Jaccard overlap are provided as
//! alternatives (common in the CF literature and useful for ablations).
//!
//! All measures run in `O(nnz_u + nnz_u')` via a merge-join over the
//! item-sorted rating rows.

use greca_dataset::{RatingMatrix, UserId};
use serde::{Deserialize, Serialize};

/// Supported similarity measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Similarity {
    /// Cosine over raw rating vectors — the paper's measure.
    #[default]
    Cosine,
    /// Pearson correlation over co-rated items.
    Pearson,
    /// Jaccard overlap of rated-item sets (ignores values).
    Jaccard,
}

/// Compute the similarity between two users' rating vectors.
///
/// Returns 0.0 when either vector is empty or a denominator vanishes,
/// so the result is always finite and in `[-1, 1]`.
pub fn user_similarity(matrix: &RatingMatrix, a: UserId, b: UserId, measure: Similarity) -> f64 {
    let ra = matrix.user_ratings(a);
    let rb = matrix.user_ratings(b);
    if ra.is_empty() || rb.is_empty() {
        return 0.0;
    }
    match measure {
        Similarity::Cosine => cosine(ra, rb),
        Similarity::Pearson => pearson(ra, rb),
        Similarity::Jaccard => jaccard(ra, rb),
    }
}

type Row = [(greca_dataset::ItemId, f32)];

fn cosine(a: &Row, b: &Row) -> f64 {
    let mut dot = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 as f64 * b[j].1 as f64;
                i += 1;
                j += 1;
            }
        }
    }
    if dot == 0.0 {
        return 0.0;
    }
    let na: f64 = a
        .iter()
        .map(|&(_, v)| (v as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .iter()
        .map(|&(_, v)| (v as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let denom = na * nb;
    if denom <= 0.0 {
        0.0
    } else {
        (dot / denom).clamp(-1.0, 1.0)
    }
}

fn pearson(a: &Row, b: &Row) -> f64 {
    // Gather co-rated values first; Pearson is defined over the overlap.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                xs.push(a[i].1 as f64);
                ys.push(b[j].1 as f64);
                i += 1;
                j += 1;
            }
        }
    }
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    let denom = (vx * vy).sqrt();
    if denom <= 1e-12 {
        0.0
    } else {
        (cov / denom).clamp(-1.0, 1.0)
    }
}

fn jaccard(a: &Row, b: &Row) -> f64 {
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_dataset::{ItemId, RatingMatrixBuilder};

    fn matrix(rows: &[&[(u32, f32)]]) -> RatingMatrix {
        let max_item = rows
            .iter()
            .flat_map(|r| r.iter().map(|&(i, _)| i))
            .max()
            .unwrap_or(0) as usize
            + 1;
        let mut b = RatingMatrixBuilder::new(rows.len(), max_item);
        for (u, row) in rows.iter().enumerate() {
            for &(i, v) in row.iter() {
                b.rate(UserId(u as u32), ItemId(i), v, 0);
            }
        }
        b.build()
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let m = matrix(&[&[(0, 3.0), (1, 4.0)], &[(0, 3.0), (1, 4.0)]]);
        let s = user_similarity(&m, UserId(0), UserId(1), Similarity::Cosine);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let m = matrix(&[&[(0, 5.0)], &[(1, 5.0)]]);
        assert_eq!(
            user_similarity(&m, UserId(0), UserId(1), Similarity::Cosine),
            0.0
        );
    }

    #[test]
    fn cosine_scales_invariant() {
        // Cosine ignores magnitude: (1,2) vs (2,4) → 1.
        let m = matrix(&[&[(0, 1.0), (1, 2.0)], &[(0, 2.0), (1, 4.0)]]);
        let s = user_similarity(&m, UserId(0), UserId(1), Similarity::Cosine);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_known_value() {
        // u = (4,0,3) over items {0,2}; v = (0,5,3) over items {1,2}.
        // dot = 9, |u| = 5, |v| = sqrt(34).
        let m = matrix(&[&[(0, 4.0), (2, 3.0)], &[(1, 5.0), (2, 3.0)]]);
        let s = user_similarity(&m, UserId(0), UserId(1), Similarity::Cosine);
        assert!((s - 9.0 / (5.0 * 34.0f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let m = matrix(&[
            &[(0, 1.0), (1, 2.0), (2, 3.0)],
            &[(0, 2.0), (1, 4.0), (2, 6.0)],
            &[(0, 3.0), (1, 2.0), (2, 1.0)],
        ]);
        let pos = user_similarity(&m, UserId(0), UserId(1), Similarity::Pearson);
        let neg = user_similarity(&m, UserId(0), UserId(2), Similarity::Pearson);
        assert!((pos - 1.0).abs() < 1e-9);
        assert!((neg + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_needs_two_corated() {
        let m = matrix(&[&[(0, 5.0)], &[(0, 5.0)]]);
        assert_eq!(
            user_similarity(&m, UserId(0), UserId(1), Similarity::Pearson),
            0.0
        );
    }

    #[test]
    fn pearson_constant_vector_is_zero() {
        let m = matrix(&[&[(0, 3.0), (1, 3.0)], &[(0, 1.0), (1, 5.0)]]);
        assert_eq!(
            user_similarity(&m, UserId(0), UserId(1), Similarity::Pearson),
            0.0
        );
    }

    #[test]
    fn jaccard_counts_overlap() {
        let m = matrix(&[
            &[(0, 1.0), (1, 1.0), (2, 1.0)],
            &[(1, 5.0), (2, 5.0), (3, 5.0)],
        ]);
        let s = user_similarity(&m, UserId(0), UserId(1), Similarity::Jaccard);
        assert!((s - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_has_zero_similarity() {
        let mut b = RatingMatrixBuilder::new(2, 2);
        b.rate(UserId(0), ItemId(0), 5.0, 0);
        let m = b.build();
        for meas in [Similarity::Cosine, Similarity::Pearson, Similarity::Jaccard] {
            assert_eq!(user_similarity(&m, UserId(0), UserId(1), meas), 0.0);
        }
    }

    #[test]
    fn symmetry_for_all_measures() {
        let m = matrix(&[
            &[(0, 4.0), (1, 1.0), (3, 5.0)],
            &[(0, 2.0), (2, 3.0), (3, 4.0)],
        ]);
        for meas in [Similarity::Cosine, Similarity::Pearson, Similarity::Jaccard] {
            let ab = user_similarity(&m, UserId(0), UserId(1), meas);
            let ba = user_similarity(&m, UserId(1), UserId(0), meas);
            assert!((ab - ba).abs() < 1e-15, "{meas:?}");
        }
    }
}
