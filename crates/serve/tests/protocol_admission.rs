//! Server behavior tests: protocol robustness over real sockets,
//! typed overload shedding, and graceful drain.

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_core::{LiveEngine, LiveModel};
use greca_dataset::{Granularity, ItemId, RatingMatrix, RatingMatrixBuilder, Timeline, UserId};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::sync::atomic::Ordering;
use std::sync::Barrier;
use std::time::Duration;

const USERS: u32 = 16;
const ITEMS: u32 = 40;

fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = RatingMatrixBuilder::new(USERS as usize, ITEMS as usize);
    for u in 0..USERS {
        for i in 0..ITEMS {
            if (u + i) % 3 == 0 {
                b.rate(UserId(u), ItemId(i), ((u * i) % 5 + 1) as f32, 0);
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..USERS {
        for v in (u + 1)..USERS {
            src.set_static(UserId(u), UserId(v), f64::from((u + v) % 10) / 10.0);
            src.set_periodic(
                UserId(u),
                UserId(v),
                tl.periods()[0].start,
                f64::from((u * v) % 10) / 10.0,
            );
        }
    }
    let users: Vec<UserId> = (0..USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    (b.build(), pop, (0..ITEMS).map(ItemId).collect())
}

/// Shuts the server down even when an assertion panics mid-scope, so a
/// test failure surfaces instead of deadlocking on the scope join.
struct ShutdownOnDrop(greca_serve::ServerHandle);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();
        for (line, code) in [
            ("this is not json", "bad_request"),
            ("{\"verb\":\"frobnicate\"}", "bad_request"),
            ("{\"no_verb\":1}", "bad_request"),
            ("{\"verb\":\"query\"}", "bad_request"),
            // Engine-level rejections are typed too.
            ("{\"verb\":\"query\",\"group\":[9999]}", "rejected"),
            ("{\"verb\":\"query\",\"group\":[1],\"k\":0}", "rejected"),
            (
                "{\"verb\":\"query\",\"group\":[1],\"period\":99}",
                "rejected",
            ),
            (
                "{\"verb\":\"ingest\",\"ratings\":[[1,2,null,0]]}",
                "bad_request",
            ),
        ] {
            let raw = client.request_raw(line).unwrap();
            let response = greca_serve::json::parse(&raw).unwrap();
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line} → {raw}"
            );
            assert_eq!(
                response.get("code").and_then(Json::as_str),
                Some(code),
                "{line} → {raw}"
            );
        }
        // The connection is still healthy after all that abuse.
        let ok = client.query(&[1, 2], None, Some(3)).unwrap();
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            server.metrics().protocol_errors.load(Ordering::Relaxed),
            5,
            "only the ill-formed lines count as protocol errors"
        );
        handle.shutdown();
    });
}

#[test]
fn oversized_and_non_utf8_lines_get_typed_errors_without_buffering() {
    use std::io::{BufRead, BufReader, Read, Write};
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let config = ServeConfig {
        max_line_bytes: 4096,
        ..ServeConfig::default()
    };
    let server = GrecaServer::bind(&live, config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());

        // A non-UTF-8 line is a typed protocol error; the connection
        // survives it.
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&[0xff, 0xfe, b'\n']).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("not valid UTF-8"), "{line}");
        // Still usable afterwards.
        stream.write_all(b"{\"verb\":\"health\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        // One endless unterminated line is cut off at the cap with a
        // typed reply and a disconnect — never buffered unboundedly.
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        let junk = vec![b'a'; 64 * 1024];
        // The server may disconnect mid-write; ignore write errors.
        let _ = stream.write_all(&junk);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds the 4096-byte limit"), "{line}");
        let mut rest = String::new();
        // After the reply the connection is closed (EOF).
        assert_eq!(reader.read_to_string(&mut rest).unwrap_or(0), 0);
        handle.shutdown();
    });
}

#[test]
fn overload_sheds_with_typed_replies_not_unbounded_queueing() {
    const CLIENTS: usize = 12;
    const REQUESTS: usize = 20;
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    // One worker, one queue slot: any concurrent burst must shed.
    let config = ServeConfig {
        query_workers: 1,
        query_queue: 1,
        ..ServeConfig::default()
    };
    let server = GrecaServer::bind(&live, config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let gate = Barrier::new(CLIENTS);
        let outcomes: Vec<(usize, usize, Duration)> = std::thread::scope(|inner| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let gate = &gate;
                    let addr = handle.addr();
                    inner.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        // Explicit full-catalog itemset: some groups
                        // co-rate everything, which would void the
                        // default candidate set.
                        let catalog: Vec<u32> = (0..ITEMS).collect();
                        gate.wait();
                        let (mut ok, mut shed) = (0, 0);
                        let mut max_latency = Duration::ZERO;
                        for r in 0..REQUESTS {
                            // Distinct groups so every accepted query
                            // costs a real kernel run (no cache help).
                            let group = [
                                (c % USERS as usize) as u32,
                                ((c + r + 1) % USERS as usize) as u32,
                                ((2 * c + r + 3) % USERS as usize) as u32,
                            ];
                            let t0 = std::time::Instant::now();
                            let response = client.query(&group, Some(&catalog), Some(5)).unwrap();
                            max_latency = max_latency.max(t0.elapsed());
                            match (
                                response.get("ok").and_then(Json::as_bool),
                                response.get("code").and_then(Json::as_str),
                            ) {
                                (Some(true), _) => ok += 1,
                                (Some(false), Some("overloaded")) => shed += 1,
                                other => panic!("unexpected response {other:?}"),
                            }
                        }
                        (ok, shed, max_latency)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ok: usize = outcomes.iter().map(|o| o.0).sum();
        let total_shed: usize = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(
            total_ok + total_shed,
            CLIENTS * REQUESTS,
            "every request answered"
        );
        assert!(
            total_shed > 0,
            "12 concurrent clients against capacity 2 must shed"
        );
        assert!(total_ok > 0, "the server still serves under overload");
        assert_eq!(
            server.metrics().query.shed.load(Ordering::Relaxed),
            total_shed as u64
        );
        // Bounded latency: nobody waited behind an unbounded queue. A
        // request admits at most (queue + in-flight) kernel runs ahead
        // of it; 5 s is orders of magnitude above that on this world.
        let worst = outcomes.iter().map(|o| o.2).max().unwrap();
        assert!(
            worst < Duration::from_secs(5),
            "worst per-request latency {worst:?} suggests unbounded queueing"
        );
        handle.shutdown();
    });
}

#[test]
fn graceful_shutdown_drains_and_run_returns() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    let addr = handle.addr();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        let runner = s.spawn(|| server.run());
        {
            let mut client = Client::connect(addr).unwrap();
            // A normal request completes…
            let response = client.query(&[0, 3], None, Some(3)).unwrap();
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
            // …then shutdown begins while this connection is open.
            handle.shutdown();
            // The draining flag is visible through health until the
            // connection is torn down (either a reply or a clean drop
            // is acceptable mid-drain).
            if let Ok(health) = client.health() {
                assert_eq!(health.get("draining").and_then(Json::as_bool), Some(true));
            }
        }
        // run() returns promptly once connections are gone.
        runner.join().unwrap();
    });
    // Once the server value is gone its listener closes; new
    // connections are refused outright.
    drop(server);
    assert!(
        Client::connect(addr).is_err(),
        "a stopped server must refuse connections"
    );
}
