//! Cache-correctness contract tests over the full server stack:
//!
//! 1. responses served over TCP — cache hits included — are
//!    bit-identical to direct `GrecaEngine` execution on the same
//!    epoch;
//! 2. a `publish` epoch swap invalidates the cache: no stale epoch is
//!    ever served, and the new epoch's results flow immediately;
//! 3. concurrent identical queries coalesce onto one kernel execution
//!    (no stampede).

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_core::{LiveEngine, LiveModel, TopKResult};
use greca_dataset::{Granularity, Group, ItemId, RatingMatrix, Timeline, UserId};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::sync::Barrier;

const USERS: u32 = 24;
const ITEMS: u32 = 50;

/// A deterministic mid-sized world: every user rates a pseudo-random
/// third of the catalog; affinities cover a clique with two periods.
fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = greca_dataset::RatingMatrixBuilder::new(USERS as usize, ITEMS as usize);
    let mut state = 0x9e3779b9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for u in 0..USERS {
        for i in 0..ITEMS {
            if next() % 3 == 0 {
                let value = (next() % 5 + 1) as f32;
                b.rate(UserId(u), ItemId(i), value, i64::from(next() % 100));
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
    for u in 0..USERS {
        for v in (u + 1)..USERS {
            src.set_static(UserId(u), UserId(v), f64::from(next() % 100) / 100.0);
            src.set_periodic(
                UserId(u),
                UserId(v),
                p1.start,
                f64::from(next() % 100) / 100.0,
            );
            src.set_periodic(
                UserId(u),
                UserId(v),
                p2.start,
                f64::from(next() % 100) / 100.0,
            );
        }
    }
    let users: Vec<UserId> = (0..USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    let items: Vec<ItemId> = (0..ITEMS).map(ItemId).collect();
    (b.build(), pop, items)
}

/// A query response's comparable pieces: epoch, cache disposition,
/// `(item, lb, ub)` rows, and the `sa`/`ra`/`sweeps` counters.
type Payload = (u64, String, Vec<(u64, f64, f64)>, u64, u64, u64);

/// Parse a query response's payload into comparable pieces.
fn parsed_payload(response: &Json) -> Payload {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "query must succeed: {response:?}"
    );
    let items = response
        .get("items")
        .and_then(Json::as_array)
        .expect("items array")
        .iter()
        .map(|t| {
            (
                t.get("item").and_then(Json::as_u64).expect("item id"),
                t.get("lb").and_then(Json::as_f64).expect("lb"),
                t.get("ub").and_then(Json::as_f64).expect("ub"),
            )
        })
        .collect();
    (
        response.get("epoch").and_then(Json::as_u64).expect("epoch"),
        response
            .get("cache")
            .and_then(Json::as_str)
            .expect("cache disposition")
            .to_string(),
        items,
        response.get("sa").and_then(Json::as_u64).expect("sa"),
        response.get("ra").and_then(Json::as_u64).expect("ra"),
        response
            .get("sweeps")
            .and_then(Json::as_u64)
            .expect("sweeps"),
    )
}

/// Assert a served payload equals a direct engine result, bit for bit.
fn assert_payload_matches(served: &Json, direct: &TopKResult) {
    let (_, _, items, sa, ra, sweeps) = parsed_payload(served);
    assert_eq!(items.len(), direct.items.len(), "result size");
    for (got, want) in items.iter().zip(&direct.items) {
        assert_eq!(got.0, u64::from(want.item.0), "item id");
        assert_eq!(got.1.to_bits(), want.lb.to_bits(), "lb bits");
        assert_eq!(got.2.to_bits(), want.ub.to_bits(), "ub bits");
    }
    assert_eq!((sa, ra), (direct.stats.sa, direct.stats.ra));
    assert_eq!(sweeps, direct.sweeps);
}

/// Shuts the server down even when an assertion panics mid-scope, so a
/// test failure surfaces instead of deadlocking on the scope join.
struct ShutdownOnDrop(greca_serve::ServerHandle);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[test]
fn served_responses_bit_identical_to_direct_engine_across_parameters() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let item_ids: Vec<u32> = (0..ITEMS).collect();
        let subset: Vec<u32> = (0..ITEMS).step_by(3).collect();
        let cases: Vec<Json> = vec![
            // Paper defaults over the full catalog.
            Json::obj(vec![
                ("verb", Json::str("query")),
                (
                    "group",
                    Json::Arr(vec![Json::num(1u32), Json::num(4u32), Json::num(9u32)]),
                ),
                (
                    "items",
                    Json::Arr(item_ids.iter().map(|&i| Json::num(i)).collect()),
                ),
            ]),
            // Default (candidate) itemset, custom k.
            Json::obj(vec![
                ("verb", Json::str("query")),
                ("group", Json::Arr(vec![Json::num(2u32), Json::num(7u32)])),
                ("k", Json::num(4u32)),
            ]),
            // Subset itemset, early period, static-only affinity, MO.
            Json::obj(vec![
                ("verb", Json::str("query")),
                (
                    "group",
                    Json::Arr(vec![Json::num(0u32), Json::num(5u32), Json::num(11u32)]),
                ),
                (
                    "items",
                    Json::Arr(subset.iter().map(|&i| Json::num(i)).collect()),
                ),
                ("k", Json::num(7u32)),
                ("period", Json::num(0u32)),
                ("mode", Json::str("static")),
                ("consensus", Json::str("mo")),
            ]),
            // Pairwise disagreement.
            Json::obj(vec![
                ("verb", Json::str("query")),
                ("group", Json::Arr(vec![Json::num(3u32), Json::num(8u32)])),
                ("consensus", Json::str("pd:0.8")),
                ("k", Json::num(5u32)),
            ]),
        ];

        for body in &cases {
            // Twice: the first answer computes, the second must be a
            // cache hit — and both must equal the direct run.
            let first = client.request(body).unwrap();
            let second = client.request(body).unwrap();
            let (_, disposition1, ..) = parsed_payload(&first);
            let (_, disposition2, ..) = parsed_payload(&second);
            assert_eq!(disposition1, "miss", "{body:?}");
            assert_eq!(disposition2, "hit", "{body:?}");

            // Rebuild the exact same query directly on a pinned engine.
            let pin = live.pin();
            let engine = pin.engine();
            let members: Vec<UserId> = body
                .get("group")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|v| UserId(v.as_u64().unwrap() as u32))
                .collect();
            let group = Group::new(members).unwrap();
            let direct_items: Option<Vec<ItemId>> = body.get("items").map(|v| {
                v.as_array()
                    .unwrap()
                    .iter()
                    .map(|v| ItemId(v.as_u64().unwrap() as u32))
                    .collect()
            });
            let mut query = engine.query(&group);
            if let Some(items) = &direct_items {
                query = query.items(items);
            }
            if let Some(k) = body.get("k").and_then(Json::as_u64) {
                query = query.top(k as usize);
            }
            if let Some(p) = body.get("period").and_then(Json::as_u64) {
                query = query.period(p as usize);
            }
            if body.get("mode").and_then(Json::as_str) == Some("static") {
                query = query.affinity(greca_affinity::AffinityMode::StaticOnly);
            }
            match body.get("consensus").and_then(Json::as_str) {
                Some("mo") => {
                    query = query.consensus(greca_consensus::ConsensusFunction::least_misery())
                }
                Some("pd:0.8") => {
                    query = query.consensus(
                        greca_consensus::ConsensusFunction::pairwise_disagreement(0.8),
                    )
                }
                _ => {}
            }
            let direct = query.run().unwrap();
            assert_payload_matches(&first, &direct);
            assert_payload_matches(&second, &direct);
        }
        handle.shutdown();
    });
}

#[test]
fn publish_invalidates_cache_and_never_serves_a_stale_epoch() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();
        let group = [1u32, 4, 9];
        let item_ids: Vec<u32> = (0..ITEMS).collect();

        // Warm the cache at epoch 0.
        let before = client.query(&group, Some(&item_ids), Some(5)).unwrap();
        let (epoch0, _, items_before, ..) = parsed_payload(&before);
        assert_eq!(epoch0, 0);
        let (_, disposition, ..) =
            parsed_payload(&client.query(&group, Some(&item_ids), Some(5)).unwrap());
        assert_eq!(disposition, "hit");

        // Publish a rating that reshuffles member 1's preferences:
        // give their worst-ranked item a top score.
        let reply = client
            .ingest(&[(1, items_before.last().unwrap().0 as u32, 5.0, 1_000)])
            .unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("epoch").and_then(Json::as_u64), Some(1));

        // The very next identical query must recompute at epoch 1 —
        // a hit here would be a stale-epoch bug.
        let after = client.query(&group, Some(&item_ids), Some(5)).unwrap();
        let (epoch1, disposition, ..) = parsed_payload(&after);
        assert_eq!(epoch1, 1, "served epoch must advance with the publish");
        assert_eq!(disposition, "miss", "stale cache entry must not survive");

        // And the payload equals a direct engine run on the new epoch.
        let pin = live.pin();
        assert_eq!(pin.epoch(), 1);
        let engine = pin.engine();
        let g = Group::new(group.iter().map(|&u| UserId(u)).collect()).unwrap();
        let direct = engine.query(&g).items(&items).top(5).run().unwrap();
        assert_payload_matches(&after, &direct);

        // The invalidation came through the publish hook — selectively
        // (the default), with the stale entry in the dropped column:
        // the warmed group contains user 1, whom the publish dirtied.
        let stats = &server.cache().stats;
        assert!(
            stats
                .selective_invalidations
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        assert!(stats.dropped.load(std::sync::atomic::Ordering::Relaxed) >= 1);
        handle.shutdown();
    });
}

#[test]
fn overlapping_group_misses_share_member_state_and_stay_identical() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();
        let item_ids: Vec<u32> = (0..ITEMS).collect();

        // A chain of overlapping groups: every interior member appears
        // in three distinct (differently-keyed) queries, so each miss
        // after the first finds most of its members already resolved in
        // the epoch's shared arena.
        for g in 0..8u32 {
            let response = client
                .query(&[g, g + 1, g + 2], Some(&item_ids), Some(5))
                .unwrap();
            let (_, disposition, ..) = parsed_payload(&response);
            assert_eq!(disposition, "miss");

            // Bit-identical to a direct, unshared engine run.
            let pin = live.pin();
            let engine = pin.engine();
            let group = Group::new(vec![UserId(g), UserId(g + 1), UserId(g + 2)]).unwrap();
            let direct = engine.query(&group).items(&items).top(5).run().unwrap();
            assert_payload_matches(&response, &direct);
        }

        // The stats verb surfaces the arena: members were resolved
        // once and reused across the overlapping misses.
        let stats = client.stats().unwrap();
        let planner = stats.get("planner").expect("planner stats block");
        let num = |k: &str| planner.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert!(num("resolved_members") >= 10.0, "{planner:?}");
        assert!(num("reused_members") > 0.0, "{planner:?}");
        assert!(num("entries") > 0.0, "{planner:?}");
        handle.shutdown();
    });
}

#[test]
fn concurrent_identical_queries_do_not_stampede_the_kernel() {
    const CLIENTS: usize = 8;
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let gate = Barrier::new(CLIENTS);
        let payloads: Vec<Payload> = std::thread::scope(|inner| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let gate = &gate;
                    let addr = handle.addr();
                    inner.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        gate.wait();
                        let response = client.query(&[2, 6, 13], None, Some(6)).unwrap();
                        parsed_payload(&response)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Single-flight: exactly one kernel execution for the herd —
        // everyone else hit the entry or coalesced onto the in-flight
        // run.
        let stats = &server.cache().stats;
        let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(load(&stats.misses), 1, "one kernel run, not {CLIENTS}");
        assert_eq!(
            load(&stats.hits) + load(&stats.coalesced),
            (CLIENTS - 1) as u64
        );
        assert_eq!(load(&stats.bypasses), 0);
        // Every client saw the identical payload.
        for p in &payloads[1..] {
            assert_eq!(
                (&p.2, p.3, p.4, p.5),
                (&payloads[0].2, payloads[0].3, payloads[0].4, payloads[0].5)
            );
        }
        handle.shutdown();
    });
}
