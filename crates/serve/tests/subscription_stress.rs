//! Concurrency stress for continuous queries: subscriptions, hot
//! queries and ingest publishes racing across 10k+ operations.
//!
//! What must hold under the race:
//!
//! * the single-flight cache never wedges — every request gets exactly
//!   one response and the test runs to completion;
//! * no pushed delta reflects a stale epoch — each subscriber's push
//!   epochs are strictly increasing;
//! * graceful drain flushes pending subscription notifications — the
//!   final targeted publish right before `shutdown()` still reaches
//!   every subscriber, whose last frame must be bit-identical to a
//!   direct engine run at the final epoch.

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_core::{LiveEngine, LiveModel};
use greca_dataset::{Granularity, Group, ItemId, RatingMatrix, Timeline, UserId};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::time::Duration;

const USERS: u32 = 24;
const ITEMS: u32 = 50;
const SUBSCRIBERS: usize = 4;
const QUERY_CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 1700;
const INGEST_CLIENTS: usize = 2;
const BATCHES_PER_CLIENT: usize = 300;

/// A deterministic mid-sized world (the `cache_correctness` one).
fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = greca_dataset::RatingMatrixBuilder::new(USERS as usize, ITEMS as usize);
    let mut next = lcg(0x9e3779b9);
    for u in 0..USERS {
        for i in 0..ITEMS {
            if next().is_multiple_of(3) {
                let value = (next() % 5 + 1) as f32;
                b.rate(UserId(u), ItemId(i), value, i64::from(next() % 100));
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..USERS {
        for v in (u + 1)..USERS {
            src.set_static(UserId(u), UserId(v), f64::from(next() % 100) / 100.0);
            for p in tl.periods() {
                src.set_periodic(
                    UserId(u),
                    UserId(v),
                    p.start,
                    f64::from(next() % 100) / 100.0,
                );
            }
        }
    }
    let users: Vec<UserId> = (0..USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    let items: Vec<ItemId> = (0..ITEMS).map(ItemId).collect();
    (b.build(), pop, items)
}

/// A seeded LCG — per-thread determinism without a shared RNG.
fn lcg(seed: u64) -> impl FnMut() -> u32 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    }
}

/// `(item, lb-bits, ub-bits)` rows of a response or push frame.
type Rows = Vec<(u64, u64, u64)>;

/// Push frames as `(epoch, rows)`, in wire arrival order.
type Frames = Vec<(u64, Rows)>;

/// Extract the [`Rows`] of a response or push frame.
fn rows_of(frame: &Json) -> Rows {
    frame
        .get("items")
        .and_then(Json::as_array)
        .expect("items array")
        .iter()
        .map(|t| {
            (
                t.get("item").and_then(Json::as_u64).expect("item"),
                t.get("lb").and_then(Json::as_f64).expect("lb").to_bits(),
                t.get("ub").and_then(Json::as_f64).expect("ub").to_bits(),
            )
        })
        .collect()
}

fn epoch_of(frame: &Json) -> u64 {
    frame.get("epoch").and_then(Json::as_u64).expect("epoch")
}

/// Shuts the server down even when an assertion panics mid-scope.
struct ShutdownOnDrop(greca_serve::ServerHandle);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Subscriber `s` watches the disjoint group `{3s, 3s+1, 3s+2}` over
/// the full catalog (k = |items|, so any member-row change moves the
/// result and must produce a push).
fn sub_group(s: usize) -> Vec<u32> {
    (0..3).map(|i| (s * 3 + i) as u32).collect()
}

#[test]
fn subscriptions_hot_queries_and_publishes_race() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, ServeConfig::default()).unwrap();
    let handle = server.handle();
    let item_ids: Vec<u32> = (0..ITEMS).collect();

    // (baseline epoch+rows, pushed frames) per subscriber, collected
    // until the server closes the socket at the end of its drain.
    let mut collected: Vec<(u64, Rows, Frames)> = Vec::new();

    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());

        let sub_handles: Vec<_> = (0..SUBSCRIBERS)
            .map(|i| {
                let handle = handle.clone();
                let item_ids = &item_ids;
                s.spawn(move || {
                    let mut client = Client::connect(handle.addr()).unwrap();
                    let baseline = client
                        .subscribe(&sub_group(i), Some(item_ids), Some(ITEMS as usize))
                        .unwrap();
                    assert_eq!(
                        baseline.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "subscribe must succeed: {baseline:?}"
                    );
                    assert!(baseline.get("sub").and_then(Json::as_u64).is_some());
                    let base = (epoch_of(&baseline), rows_of(&baseline));
                    let mut frames = Vec::new();
                    loop {
                        match client.poll_push(Duration::from_millis(100)) {
                            Ok(Some(frame)) => {
                                assert_eq!(
                                    frame.get("push").and_then(Json::as_str),
                                    Some("delta"),
                                    "push frames carry the delta marker"
                                );
                                frames.push((epoch_of(&frame), rows_of(&frame)));
                            }
                            Ok(None) => continue,
                            Err(_) => break, // server drained and closed
                        }
                    }
                    (base.0, base.1, frames)
                })
            })
            .collect();

        // One subscriber that unsubscribes mid-storm: the inline verb
        // must work (and stop its stream) while the pump is busy.
        let cancel_handle = handle.clone();
        let cancel_items = &item_ids;
        let canceller = s.spawn(move || {
            let mut client = Client::connect(cancel_handle.addr()).unwrap();
            let baseline = client
                .subscribe(&[1, 7, 13], Some(cancel_items), Some(10))
                .unwrap();
            let sub = baseline.get("sub").and_then(Json::as_u64).unwrap();
            // Let a few publishes land first.
            let mut seen = 0u32;
            while seen < 2 {
                match client.poll_push(Duration::from_millis(100)) {
                    Ok(Some(_)) => seen += 1,
                    Ok(None) => continue,
                    Err(_) => return,
                }
            }
            let off = client.unsubscribe(sub).unwrap();
            assert_eq!(off.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(off.get("removed").and_then(Json::as_bool), Some(true));
            // A frame already in flight may still arrive; after the
            // stream quiesces nothing more does.
            let mut quiet = 0;
            while quiet < 3 {
                match client.poll_push(Duration::from_millis(50)) {
                    Ok(Some(_)) => quiet = 0,
                    Ok(None) => quiet += 1,
                    Err(_) => return,
                }
            }
        });

        let query_handles: Vec<_> = (0..QUERY_CLIENTS)
            .map(|c| {
                let handle = handle.clone();
                let item_ids = &item_ids;
                s.spawn(move || {
                    let mut client = Client::connect(handle.addr()).unwrap();
                    let mut next = lcg(0xA11CE ^ ((c as u64) << 17));
                    let mut answered = 0usize;
                    for _ in 0..QUERIES_PER_CLIENT {
                        // Half the traffic hammers the subscribed
                        // groups (max single-flight contention with the
                        // pump); the rest roams.
                        let group: Vec<u32> = if next().is_multiple_of(2) {
                            sub_group((next() % SUBSCRIBERS as u32) as usize)
                        } else {
                            let base = next() % (USERS - 3);
                            (0..2 + next() % 2).map(|i| base + i).collect()
                        };
                        let reply = client.query(&group, Some(item_ids), Some(5)).unwrap();
                        let ok = reply.get("ok").and_then(Json::as_bool) == Some(true);
                        let typed_error = reply.get("error").and_then(Json::as_str).is_some();
                        assert!(ok || typed_error, "untyped reply: {reply:?}");
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();

        let ingest_handles: Vec<_> = (0..INGEST_CLIENTS)
            .map(|c| {
                let handle = handle.clone();
                s.spawn(move || {
                    let mut client = Client::connect(handle.addr()).unwrap();
                    let mut next = lcg(0x1326e57 ^ ((c as u64) << 23));
                    for _ in 0..BATCHES_PER_CLIENT {
                        let ratings: Vec<(u32, u32, f32, i64)> = (0..1 + next() % 3)
                            .map(|_| {
                                (
                                    next() % USERS,
                                    next() % ITEMS,
                                    (next() % 5 + 1) as f32,
                                    i64::from(next() % 100),
                                )
                            })
                            .collect();
                        let reply = client.ingest(&ratings).unwrap();
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "ingest must succeed: {reply:?}"
                        );
                    }
                })
            })
            .collect();

        let answered: usize = query_handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(
            answered,
            QUERY_CLIENTS * QUERIES_PER_CLIENT,
            "single-flight must never wedge a query"
        );
        for h in ingest_handles {
            h.join().unwrap();
        }
        canceller.join().unwrap();

        // The drain-flush probe: dirty one member of every subscribed
        // group with a value no random batch produces (they are all
        // integral), publish, and shut down immediately — the pending
        // notification must still reach every subscriber.
        let mut control = Client::connect(handle.addr()).unwrap();
        let finale: Vec<(u32, u32, f32, i64)> = (0..SUBSCRIBERS)
            .map(|i| (sub_group(i)[0], 0, 4.33, 0))
            .collect();
        let reply = control.ingest(&finale).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let final_epoch = reply.get("epoch").and_then(Json::as_u64).unwrap();

        // Server-side counters before shutdown: pushes flowed, none
        // failed, and the wire stayed clean.
        let stats = control.stats().unwrap();
        let subs = stats.get("subscriptions").expect("subscriptions block");
        assert!(subs.get("sub_runs").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(subs.get("push_errors").and_then(Json::as_u64), Some(0));
        assert_eq!(
            stats
                .get("metrics")
                .and_then(|m| m.get("protocol_errors"))
                .and_then(Json::as_u64),
            Some(0)
        );

        assert!(final_epoch >= 1);
        handle.shutdown();
        for (i, h) in sub_handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            assert!(!got.2.is_empty(), "subscriber {i} saw no pushes");
            collected.push(got);
        }
    });

    // Post-drain verification against the engine itself.
    let pin = live.pin();
    let final_epoch = pin.epoch();
    let engine = pin.engine();
    for (i, (_base_epoch, _base_rows, frames)) in collected.iter().enumerate() {
        // No pushed delta reflects a stale epoch: push epochs strictly
        // increase in wire order. (A push may carry an epoch below the
        // *baseline's* — the pump's first re-runs race subscription
        // registration and land on the wire before the baseline
        // response — but the push stream itself never goes backwards.)
        for pair in frames.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "subscriber {i}: push epoch {} after {} is stale",
                pair[1].0,
                pair[0].0
            );
        }
        // Drain flushed the final notification: the last frame sits at
        // the final epoch and matches a direct engine run bit for bit.
        let (last_epoch, last_rows) = frames.last().expect("non-empty, asserted above");
        assert_eq!(
            *last_epoch, final_epoch,
            "subscriber {i}: the pre-shutdown publish was not flushed"
        );
        let group = Group::new(sub_group(i).into_iter().map(UserId).collect()).unwrap();
        let direct = engine
            .query(&group)
            .items(&items)
            .top(ITEMS as usize)
            .run()
            .unwrap();
        let direct_rows: Rows = direct
            .items
            .iter()
            .map(|t| (u64::from(t.item.0), t.lb.to_bits(), t.ub.to_bits()))
            .collect();
        assert_eq!(
            last_rows, &direct_rows,
            "subscriber {i}: final pushed result differs from direct execution"
        );
    }
}
