//! Property tests for dirty-set-aware cache survival: **for any
//! interleaving of ingest/retract/publish batches over a seeded world,
//! every cache entry that survives an epoch swap is bit-identical
//! (full `TopKResult` equality) to re-running its query cold at the
//! new epoch — and no entry whose footprint the publish's dirty set
//! affects survives at all.**
//!
//! The survival invariants are factored into [`check_survival`], a
//! checker both directions of the test drive:
//!
//! * the property asserts `Ok` over arbitrary interleavings when the
//!   cache records *true* footprints (the serving path's behavior);
//! * the mutation tests install deliberately **narrowed** and
//!   **widened** footprints through [`ResultCache::install`] /
//!   [`QueryFootprint::with_members`] and assert the checker fails —
//!   proving the property would catch a wrong footprint rather than
//!   vacuously pass.

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::CfConfig;
use greca_core::{LiveEngine, LiveModel, PublishDelta};
use greca_dataset::{
    Granularity, Group, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};
use greca_serve::ResultCache;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// One staged event: upsert when `retract` is false.
#[derive(Debug, Clone, Copy)]
struct Event {
    user: usize,
    item: usize,
    value: f64,
    retract: bool,
}

/// One cached group query: members from `mask`'s set bits.
#[derive(Debug, Clone, Copy)]
struct QuerySpec {
    mask: u32,
    mode_sel: u8,
    k: usize,
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    m: usize,
    seed: u64,
    usercf: bool,
    queries: Vec<QuerySpec>,
    batches: Vec<Vec<Event>>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (4usize..=8, 6usize..=12, any::<u64>()).prop_flat_map(|(n, m, seed)| {
        let spec = (1u32..(1u32 << n), 0u8..3, 1usize..=4)
            .prop_map(|(mask, mode_sel, k)| QuerySpec { mask, mode_sel, k });
        let event =
            (0..n, 0..m, 0.5f64..5.0, any::<bool>()).prop_map(|(user, item, value, retract)| {
                Event {
                    user,
                    item,
                    value,
                    retract,
                }
            });
        let batches =
            proptest::collection::vec(proptest::collection::vec(event, 1..5usize), 1..4usize);
        (
            Just(n),
            Just(m),
            Just(seed),
            any::<bool>(),
            proptest::collection::vec(spec, 3..8usize),
            batches,
        )
            .prop_map(|(n, m, seed, usercf, queries, batches)| Instance {
                n,
                m,
                seed,
                usercf,
                queries,
                batches,
            })
    })
}

/// A deterministic world: every user rates a pseudo-random third of
/// the catalog; affinities cover the clique with two periods.
fn world(n: usize, m: usize, seed: u64) -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut b = RatingMatrixBuilder::new(n, m);
    for u in 0..n {
        for i in 0..m {
            if next() % 3 == 0 {
                b.rate(
                    UserId(u as u32),
                    ItemId(i as u32),
                    (next() % 5 + 1) as f32,
                    i64::from(next() % 100),
                );
            }
        }
    }
    let users: Vec<UserId> = (0..n as u32).map(UserId).collect();
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..n {
        for v in (u + 1)..n {
            src.set_static(users[u], users[v], f64::from(next() % 100) / 100.0);
            for p in tl.periods() {
                src.set_periodic(users[u], users[v], p.start, f64::from(next() % 100) / 100.0);
            }
        }
    }
    let pop = PopulationAffinity::build(&src, &users, &tl);
    let items: Vec<ItemId> = (0..m as u32).map(ItemId).collect();
    (b.build(), pop, items)
}

fn group_of(mask: u32, n: usize) -> Group {
    let members: Vec<UserId> = (0..n as u32)
        .filter(|u| mask & (1 << u) != 0)
        .map(UserId)
        .collect();
    Group::new(members).expect("mask >= 1 gives a non-empty group")
}

fn mode_of(sel: u8) -> AffinityMode {
    match sel {
        0 => AffinityMode::None,
        1 => AffinityMode::StaticOnly,
        _ => AffinityMode::Discrete,
    }
}

/// The survival invariants, checked for every warmed query after one
/// publish. `Err` pinpoints the first violated query. The three rules:
///
/// 1. an entry the delta affects must be gone;
/// 2. an entry the delta does not affect must still be resident
///    (disjointness survives the swap);
/// 3. whatever is resident must equal a cold re-execution at the new
///    epoch, bit for bit.
fn check_survival(
    cache: &ResultCache,
    live: &LiveEngine<'_>,
    items: &[ItemId],
    n: usize,
    queries: &[QuerySpec],
    delta: &PublishDelta,
) -> Result<(), String> {
    let pin = live.pin();
    let epoch = pin.epoch();
    assert_eq!(epoch, delta.epoch, "checker must run right after publish");
    let engine = pin.engine();
    for (qi, spec) in queries.iter().enumerate() {
        let group = group_of(spec.mask, n);
        let query = engine
            .query(&group)
            .items(items)
            .top(spec.k)
            .period(1)
            .affinity(mode_of(spec.mode_sel));
        let key = query.cache_key();
        let affected = delta.affects(&key.footprint());
        let resident = cache.try_get(epoch, &key);
        match (affected, &resident) {
            (true, Some(_)) => {
                return Err(format!(
                    "query #{qi} {spec:?}: entry overlapping the dirty set survived epoch {epoch}"
                ));
            }
            (false, None) => {
                return Err(format!(
                    "query #{qi} {spec:?}: entry disjoint from the dirty set was dropped at epoch {epoch}"
                ));
            }
            _ => {}
        }
        if let Some(stale) = resident {
            let fresh = query
                .run()
                .map_err(|e| format!("re-execution failed: {e}"))?;
            if *stale != fresh {
                return Err(format!(
                    "query #{qi} {spec:?}: surviving entry differs from cold re-execution at epoch {epoch}"
                ));
            }
        }
    }
    Ok(())
}

/// Warm (or re-warm) every query through the serving path's
/// `get_or_compute`, which derives the *true* footprint from the key.
fn warm_all(
    cache: &ResultCache,
    live: &LiveEngine<'_>,
    items: &[ItemId],
    n: usize,
    queries: &[QuerySpec],
) {
    let pin = live.pin();
    let engine = pin.engine();
    for spec in queries {
        let group = group_of(spec.mask, n);
        let query = engine
            .query(&group)
            .items(items)
            .top(spec.k)
            .period(1)
            .affinity(mode_of(spec.mode_sel));
        let (result, _) = cache.get_or_compute(pin.epoch(), query.cache_key(), || query.run());
        result.expect("seeded world queries are valid");
    }
}

/// Wire a cache to the engine's publish-delta hook (the same wiring
/// `GrecaServer::bind` does) and capture every delta for the checker.
type Captured = Arc<Mutex<Vec<PublishDelta>>>;
fn attach(live: &LiveEngine<'_>) -> (Arc<ResultCache>, Captured) {
    let cache = Arc::new(ResultCache::new(1 << 14));
    cache.invalidate_to(live.epoch());
    let deltas: Captured = Arc::new(Mutex::new(Vec::new()));
    let hook_cache = Arc::clone(&cache);
    let hook_deltas = Arc::clone(&deltas);
    live.on_publish_delta(move |delta| {
        hook_cache.apply_publish(delta);
        hook_deltas.lock().unwrap().push(delta.clone());
    });
    (cache, deltas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn survivors_are_bit_identical_and_overlaps_never_survive(inst in instance_strategy()) {
        let (matrix, pop, items) = world(inst.n, inst.m, inst.seed);
        let model = if inst.usercf {
            LiveModel::UserCf(CfConfig::default())
        } else {
            LiveModel::Raw
        };
        let live = LiveEngine::new(&pop, model, &matrix, &items).unwrap();
        let (cache, deltas) = attach(&live);

        warm_all(&cache, &live, &items, inst.n, &inst.queries);
        for batch in &inst.batches {
            let seen = deltas.lock().unwrap().len();
            for e in batch {
                if e.retract {
                    live.stage_retractions(&[(UserId(e.user as u32), ItemId(e.item as u32))])
                        .unwrap();
                } else {
                    live.stage(&[Rating {
                        user: UserId(e.user as u32),
                        item: ItemId(e.item as u32),
                        value: e.value as f32,
                        ts: 0,
                    }]).unwrap();
                }
            }
            live.publish().unwrap();
            let captured = deltas.lock().unwrap();
            if captured.len() == seen {
                continue; // an effectively-empty batch publishes nothing
            }
            prop_assert_eq!(captured.len(), seen + 1, "one publish, one delta");
            let delta = captured.last().unwrap().clone();
            drop(captured);
            if let Err(violation) =
                check_survival(&cache, &live, &items, inst.n, &inst.queries, &delta)
            {
                return Err(TestCaseError::Fail(violation));
            }
            // Re-warm so the next swap tests survival over a full
            // cache again (survivors stay; dropped entries recompute).
            warm_all(&cache, &live, &items, inst.n, &inst.queries);
        }
    }
}

/// The deterministic fixture the mutation tests share: a seeded world,
/// one group query over users 0–2, and an ingest that dirties user 0
/// and genuinely changes the query's scores (`k = m`, so every score
/// is part of the result).
const MUT_N: usize = 8;
const MUT_M: usize = 10;
const MUT_SPEC: QuerySpec = QuerySpec {
    mask: 0b111,
    mode_sel: 0,
    k: MUT_M,
};

#[test]
fn correct_footprints_pass_the_checker() {
    let (matrix, pop, items) = world(MUT_N, MUT_M, 42);
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let (cache, deltas) = attach(&live);
    // A second query disjoint from the dirty user, to witness survival.
    let disjoint = QuerySpec {
        mask: 0b1100000,
        mode_sel: 0,
        k: MUT_M,
    };
    let specs = [MUT_SPEC, disjoint];
    warm_all(&cache, &live, &items, MUT_N, &specs);
    live.ingest(&[Rating {
        user: UserId(0),
        item: ItemId(0),
        value: 4.75,
        ts: 0,
    }])
    .unwrap();
    let delta = deltas.lock().unwrap().last().unwrap().clone();
    assert!(!delta.full_rebuild, "one rating must not rebuild wholesale");
    check_survival(&cache, &live, &items, MUT_N, &specs, &delta).expect("true footprints hold");
    // And survival actually happened — the disjoint entry is resident.
    assert!(
        cache
            .stats
            .survivors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the disjoint query must survive the swap"
    );
}

#[test]
fn narrowed_footprint_is_caught_by_the_checker() {
    let (matrix, pop, items) = world(MUT_N, MUT_M, 42);
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let (cache, deltas) = attach(&live);
    // Install the entry under a footprint narrowed to a user far from
    // the group — the dirtied member 0 no longer triggers a drop.
    let stale = {
        let pin = live.pin();
        let engine = pin.engine();
        let group = group_of(MUT_SPEC.mask, MUT_N);
        let query = engine
            .query(&group)
            .items(&items)
            .top(MUT_SPEC.k)
            .period(1)
            .affinity(mode_of(MUT_SPEC.mode_sel));
        let key = query.cache_key();
        let value = Arc::new(query.run().unwrap());
        let narrowed = key.footprint().with_members(vec![UserId(7)]);
        cache.install(pin.epoch(), key, narrowed, Arc::clone(&value));
        value
    };
    live.ingest(&[Rating {
        user: UserId(0),
        item: ItemId(0),
        value: 4.75,
        ts: 0,
    }])
    .unwrap();
    let delta = deltas.lock().unwrap().last().unwrap().clone();
    assert!(!delta.full_rebuild);
    let violation = check_survival(&cache, &live, &items, MUT_N, &[MUT_SPEC], &delta)
        .expect_err("a narrowed footprint must fail the survival check");
    assert!(
        violation.contains("overlapping the dirty set survived"),
        "unexpected violation: {violation}"
    );
    // The wrongly-surviving entry really is stale, not coincidentally
    // fresh: the ingested rating changed the group's scores.
    let pin = live.pin();
    let engine = pin.engine();
    let group = group_of(MUT_SPEC.mask, MUT_N);
    let fresh = engine
        .query(&group)
        .items(&items)
        .top(MUT_SPEC.k)
        .period(1)
        .affinity(mode_of(MUT_SPEC.mode_sel))
        .run()
        .unwrap();
    assert_ne!(*stale, fresh, "the publish must actually move the scores");
}

#[test]
fn widened_footprint_is_caught_by_the_checker() {
    let (matrix, pop, items) = world(MUT_N, MUT_M, 42);
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let (cache, deltas) = attach(&live);
    // Install the entry under a footprint widened with user 6, then
    // dirty only user 6 — disjoint from the real group {0,1,2}, so a
    // true footprint would have survived.
    {
        let pin = live.pin();
        let engine = pin.engine();
        let group = group_of(MUT_SPEC.mask, MUT_N);
        let query = engine
            .query(&group)
            .items(&items)
            .top(MUT_SPEC.k)
            .period(1)
            .affinity(mode_of(MUT_SPEC.mode_sel));
        let key = query.cache_key();
        let value = Arc::new(query.run().unwrap());
        let widened =
            key.footprint()
                .with_members(vec![UserId(0), UserId(1), UserId(2), UserId(6)]);
        cache.install(pin.epoch(), key, widened, value);
    }
    live.ingest(&[Rating {
        user: UserId(6),
        item: ItemId(0),
        value: 4.75,
        ts: 0,
    }])
    .unwrap();
    let delta = deltas.lock().unwrap().last().unwrap().clone();
    assert!(!delta.full_rebuild);
    let violation = check_survival(&cache, &live, &items, MUT_N, &[MUT_SPEC], &delta)
        .expect_err("a widened footprint must fail the survival check");
    assert!(
        violation.contains("disjoint from the dirty set was dropped"),
        "unexpected violation: {violation}"
    );
}
