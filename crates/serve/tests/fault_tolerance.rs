//! Fault-tolerance tests over real sockets: degraded mode when the
//! WAL stalls (reads keep serving, annotated; mutations fail typed),
//! end-to-end idempotent ingest retries, per-request deadline budgets,
//! subscription retirement on dead subscriber writes, and worker-panic
//! containment — all driven by deterministic [`FaultPlan`] schedules.

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_core::{FaultCtx, FaultPlan, IoFault, LiveEngine, LiveModel, Wal, WalOptions};
use greca_dataset::{
    Granularity, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USERS: u32 = 16;
const ITEMS: u32 = 40;

fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = RatingMatrixBuilder::new(USERS as usize, ITEMS as usize);
    for u in 0..USERS {
        for i in 0..ITEMS {
            if (u + i) % 3 == 0 {
                b.rate(UserId(u), ItemId(i), ((u * i) % 5 + 1) as f32, 0);
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..USERS {
        for v in (u + 1)..USERS {
            src.set_static(UserId(u), UserId(v), f64::from((u + v) % 10) / 10.0);
            src.set_periodic(
                UserId(u),
                UserId(v),
                tl.periods()[0].start,
                f64::from((u * v) % 10) / 10.0,
            );
        }
    }
    let users: Vec<UserId> = (0..USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    (b.build(), pop, (0..ITEMS).map(ItemId).collect())
}

/// Shuts the server down even when an assertion panics mid-scope, so a
/// test failure surfaces instead of deadlocking on the scope join.
struct ShutdownOnDrop(greca_serve::ServerHandle);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("greca-servefault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `ServeConfig` that ignores any ambient `GRECA_FAULT_PLAN` (these
/// tests need exact schedules, or none).
fn quiet_config() -> ServeConfig {
    ServeConfig {
        fault_plan: None,
        ..ServeConfig::default()
    }
}

fn ok_of(v: &Json) -> Option<bool> {
    v.get("ok").and_then(Json::as_bool)
}

fn code_of(v: &Json) -> Option<&str> {
    v.get("code").and_then(Json::as_str)
}

/// While the WAL is stalled the server answers reads from the last
/// healthy epoch — bit-identical, annotated with `degraded` +
/// `staleness_ms` — instead of shedding, mutations fail with the typed
/// `degraded` code, and the first successful publish clears the stall.
#[test]
fn wal_stall_degrades_reads_and_recovers() {
    let (matrix, pop, items) = world();
    let dir = scratch_dir("degraded");
    // Ingest #1 consumes WAL write ops 0 (batch) + 1 (commit) and
    // succeeds; ops 2 and 3 — the appends attempted by ingests #2 and
    // #3 — hit a full disk; ingest #4 (ops 4 + 5) succeeds again.
    let plan = Arc::new(
        FaultPlan::new(11)
            .schedule(FaultCtx::WalWrite, 2, IoFault::DiskFull)
            .schedule(FaultCtx::WalWrite, 3, IoFault::DiskFull),
    );
    let wal_options = WalOptions {
        fault: Some(Arc::clone(&plan)),
        ..WalOptions::default()
    };
    let wal = Wal::create(&dir, wal_options).unwrap();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items)
        .unwrap()
        .with_wal(wal);
    let server = GrecaServer::bind(&live, quiet_config()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let r = client.ingest(&[(0, 0, 5.0, 0)]).unwrap();
        assert_eq!(ok_of(&r), Some(true), "{r:?}");
        assert_eq!(r.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(r.get("duplicate").and_then(Json::as_bool), Some(false));

        // Healthy reads carry no degraded annotation.
        let healthy = client.query(&[1, 2], None, Some(3)).unwrap();
        assert_eq!(ok_of(&healthy), Some(true));
        assert!(healthy.get("degraded").is_none(), "{healthy:?}");
        assert!(healthy.get("staleness_ms").is_none());

        // The disk fills: the append fails, the mutation is refused
        // with the typed code, and the engine enters degraded mode.
        let refused = client.ingest(&[(0, 1, 4.0, 0)]).unwrap();
        assert_eq!(ok_of(&refused), Some(false));
        assert_eq!(code_of(&refused), Some("degraded"), "{refused:?}");
        let h = client.health().unwrap();
        assert_eq!(h.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(h.get("wal_attached").and_then(Json::as_bool), Some(true));

        // Reads are still answered — same epoch, same items, annotated
        // instead of shed.
        let stale = client.query(&[1, 2], None, Some(3)).unwrap();
        assert_eq!(ok_of(&stale), Some(true), "degraded reads must serve");
        assert_eq!(stale.get("degraded").and_then(Json::as_bool), Some(true));
        assert!(
            stale.get("staleness_ms").and_then(Json::as_u64).is_some(),
            "{stale:?}"
        );
        assert_eq!(stale.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(
            format!("{:?}", stale.get("items")),
            format!("{:?}", healthy.get("items")),
            "degraded reads serve the last healthy epoch bit-identically"
        );

        // Still stalled on the next attempt…
        let refused = client.ingest(&[(0, 2, 3.0, 0)]).unwrap();
        assert_eq!(code_of(&refused), Some("degraded"));

        // …until an append lands again: publish succeeds, stall clears.
        let r = client.ingest(&[(0, 3, 2.0, 0)]).unwrap();
        assert_eq!(ok_of(&r), Some(true), "{r:?}");
        assert_eq!(r.get("epoch").and_then(Json::as_u64), Some(2));
        let h = client.health().unwrap();
        assert_eq!(h.get("degraded").and_then(Json::as_bool), Some(false));
        let fresh = client.query(&[1, 2], None, Some(3)).unwrap();
        assert_eq!(ok_of(&fresh), Some(true));
        assert!(fresh.get("degraded").is_none());

        assert_eq!(plan.injected().len(), 2, "exactly the two planned faults");
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// An ingest retried with the same `batch` key is acknowledged as a
/// duplicate — same batch id, no second apply, no epoch bump.
#[test]
fn keyed_ingest_is_idempotent_over_the_wire() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, quiet_config()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let first = client.ingest_keyed(42, &[(0, 0, 5.0, 0)]).unwrap();
        assert_eq!(ok_of(&first), Some(true), "{first:?}");
        assert_eq!(first.get("duplicate").and_then(Json::as_bool), Some(false));
        assert_eq!(first.get("epoch").and_then(Json::as_u64), Some(1));
        let batch_id = first.get("batch_id").and_then(Json::as_u64).unwrap();

        // The retry (same key, even different payload) is a no-op.
        let retry = client.ingest_keyed(42, &[(0, 0, 1.0, 0)]).unwrap();
        assert_eq!(ok_of(&retry), Some(true), "{retry:?}");
        assert_eq!(retry.get("duplicate").and_then(Json::as_bool), Some(true));
        assert_eq!(retry.get("batch_id").and_then(Json::as_u64), Some(batch_id));
        assert_eq!(
            retry.get("epoch").and_then(Json::as_u64),
            Some(1),
            "a duplicate must not publish a new epoch"
        );

        // A fresh key applies normally.
        let second = client.ingest_keyed(43, &[(0, 1, 4.0, 0)]).unwrap();
        assert_eq!(second.get("duplicate").and_then(Json::as_bool), Some(false));
        assert_eq!(second.get("epoch").and_then(Json::as_u64), Some(2));
        handle.shutdown();
    });
}

/// A keyed ingest whose *commit* failed leaves its batch staged (not
/// committed) and its key remembered. The retry hits the duplicate
/// branch — and must not be false-acked off the idempotency map: it
/// re-attempts the publish, answering `degraded` again while the WAL
/// still fails, and acking only once the batch is really committed.
#[test]
fn keyed_retry_after_failed_commit_publishes_instead_of_false_acking() {
    let (matrix, pop, items) = world();
    let dir = scratch_dir("dup-commit");
    // WAL write op 0 is the batch append (succeeds); op 1 is the
    // commit marker (disk full → degraded, batch restaged); op 2 is
    // the commit re-attempted by the first retry (still full); op 3,
    // the second retry's commit, lands.
    let plan = Arc::new(
        FaultPlan::new(17)
            .schedule(FaultCtx::WalWrite, 1, IoFault::DiskFull)
            .schedule(FaultCtx::WalWrite, 2, IoFault::DiskFull),
    );
    let wal_options = WalOptions {
        fault: Some(Arc::clone(&plan)),
        ..WalOptions::default()
    };
    let wal = Wal::create(&dir, wal_options).unwrap();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items)
        .unwrap()
        .with_wal(wal);
    let server = GrecaServer::bind(&live, quiet_config()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let first = client.ingest_keyed(99, &[(0, 0, 5.0, 0)]).unwrap();
        assert_eq!(ok_of(&first), Some(false), "{first:?}");
        assert_eq!(code_of(&first), Some("degraded"));

        // Retry while the WAL is still failing: the batch is staged
        // but uncommitted, so `ok: true, duplicate: true` here would
        // acknowledge a write a crash could lose.
        let retry = client.ingest_keyed(99, &[(0, 0, 5.0, 0)]).unwrap();
        assert_eq!(
            ok_of(&retry),
            Some(false),
            "an uncommitted duplicate must not be acked: {retry:?}"
        );
        assert_eq!(code_of(&retry), Some("degraded"));

        // The disk drains: this retry's publish commits the staged
        // batch and the duplicate ack finally means "committed".
        let committed = client.ingest_keyed(99, &[(0, 0, 5.0, 0)]).unwrap();
        assert_eq!(ok_of(&committed), Some(true), "{committed:?}");
        assert_eq!(
            committed.get("duplicate").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(committed.get("epoch").and_then(Json::as_u64), Some(1));

        let h = client.health().unwrap();
        assert_eq!(h.get("degraded").and_then(Json::as_bool), Some(false));
        assert_eq!(h.get("epoch").and_then(Json::as_u64), Some(1));
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request whose `deadline_ms` budget is already spent when a worker
/// picks it up is answered `deadline_exceeded` without executing; a
/// generous budget is served normally.
#[test]
fn exhausted_deadlines_are_answered_without_executing() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let server = GrecaServer::bind(&live, quiet_config()).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let raw = client
            .request_raw(r#"{"verb":"query","group":[1,2],"k":3,"deadline_ms":0}"#)
            .unwrap();
        let v = greca_serve::json::parse(&raw).unwrap();
        assert_eq!(ok_of(&v), Some(false), "{raw}");
        assert_eq!(code_of(&v), Some("deadline_exceeded"), "{raw}");
        assert_eq!(
            server.metrics().deadline_exceeded.load(Ordering::Relaxed),
            1
        );

        let raw = client
            .request_raw(r#"{"verb":"query","group":[1,2],"k":3,"deadline_ms":30000}"#)
            .unwrap();
        let v = greca_serve::json::parse(&raw).unwrap();
        assert_eq!(ok_of(&v), Some(true), "{raw}");
        assert_eq!(
            server.metrics().deadline_exceeded.load(Ordering::Relaxed),
            1,
            "the served request must not tick the counter"
        );
        handle.shutdown();
    });
}

/// When a push write fails the subscription is retired (counted in
/// `subscribers_dropped`) instead of the pump spinning on a dead
/// socket forever.
#[test]
fn failed_push_writes_retire_the_subscription() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    // Socket-write op 0 is the subscribe response; op 1 is the first
    // push frame, which the plan turns into a dead-connection write.
    let plan = Arc::new(FaultPlan::new(3).schedule(FaultCtx::SockWrite, 1, IoFault::DropConn));
    let config = ServeConfig {
        fault_plan: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let server = GrecaServer::bind(&live, config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let sub = client.subscribe(&[0, 1], None, Some(3)).unwrap();
        assert_eq!(ok_of(&sub), Some(true), "{sub:?}");

        // Publish straight through the engine (not a client request, so
        // the push is deterministically socket-write op 1) with a
        // rating that rockets item 0 to the top for both members.
        live.ingest(&[
            Rating {
                user: UserId(0),
                item: ItemId(0),
                value: 5.0,
                ts: 0,
            },
            Rating {
                user: UserId(1),
                item: ItemId(0),
                value: 5.0,
                ts: 0,
            },
        ])
        .unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().subscribers_dropped.load(Ordering::Relaxed) == 0 {
            assert!(
                Instant::now() < deadline,
                "push failure never retired the subscription"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            server.metrics().subscribers_dropped.load(Ordering::Relaxed),
            1
        );
        assert!(server.metrics().push_errors.load(Ordering::Relaxed) >= 1);
        assert_eq!(server.metrics().pushes.load(Ordering::Relaxed), 0);
        handle.shutdown();
    });
}

/// An injected worker panic answers that one request with a typed
/// `internal` error; the server and the connection keep serving.
#[test]
fn a_worker_panic_is_contained_to_its_request() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let plan = Arc::new(FaultPlan::new(5).schedule(FaultCtx::Work, 0, IoFault::Panic));
    let config = ServeConfig {
        fault_plan: Some(plan),
        query_workers: 2,
        ..ServeConfig::default()
    };
    let server = GrecaServer::bind(&live, config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        let poisoned = client.query(&[1, 2], None, Some(3)).unwrap();
        assert_eq!(ok_of(&poisoned), Some(false), "{poisoned:?}");
        assert_eq!(code_of(&poisoned), Some("internal"), "{poisoned:?}");

        // Same connection, next request: served by a surviving worker.
        let fine = client.query(&[2, 3], None, Some(3)).unwrap();
        assert_eq!(ok_of(&fine), Some(true), "{fine:?}");
        handle.shutdown();
    });
}
