//! End-to-end tracing contract over the full server stack:
//!
//! 1. a traced query's response echoes its trace id, and the `trace`
//!    verb retrieves the span's per-phase cost attribution
//!    (admit/cache/prepare/kernel/serialize) plus the SA/RA counts —
//!    which match the counts the response itself reported;
//! 2. ingest acks echo trace ids and the publish pipeline's lineage
//!    (per-stage timings, dirty counts, rebuild mode, cache survival)
//!    is queryable via `stats`;
//! 3. push frames echo the subscription's client-supplied trace id;
//! 4. the `metrics` verb serves a Prometheus text body unifying the
//!    verb registry with span-derived series;
//! 5. with the slow threshold at zero every span lands in the
//!    slow-query log, dumped by `trace` with `"slow": true`.
//!
//! Everything runs against ONE server in ONE test: the flight
//! recorder and its slow threshold are process-global, so a single
//! serve scope keeps the assertions race-free.

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_core::{LiveEngine, LiveModel};
use greca_dataset::{Granularity, ItemId, RatingMatrix, Timeline, UserId};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::time::Duration;

const USERS: u32 = 12;
const ITEMS: u32 = 30;

fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = greca_dataset::RatingMatrixBuilder::new(USERS as usize, ITEMS as usize);
    let mut state = 0xdeadbeefu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for u in 0..USERS {
        for i in 0..ITEMS {
            if next() % 2 == 0 {
                b.rate(UserId(u), ItemId(i), (next() % 5 + 1) as f32, 10);
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..USERS {
        for v in (u + 1)..USERS {
            src.set_static(UserId(u), UserId(v), f64::from(next() % 100) / 100.0);
        }
    }
    let users: Vec<UserId> = (0..USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    (b.build(), pop, (0..ITEMS).map(ItemId).collect())
}

struct ShutdownOnDrop(greca_serve::ServerHandle);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// The span objects from a `trace` response.
fn spans_of(response: &Json) -> Vec<Json> {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "trace verb must succeed: {response:?}"
    );
    response
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .to_vec()
}

#[test]
fn traces_flow_end_to_end_through_the_serving_stack() {
    let (matrix, pop, items) = world();
    let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
    let config = ServeConfig {
        slow_query_ms: 0, // every span is "slow": exercises the log
        ..ServeConfig::default()
    };
    let server = GrecaServer::bind(&live, config).unwrap();
    let handle = server.handle();
    std::thread::scope(|s| {
        let _shutdown = ShutdownOnDrop(server.handle());
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).unwrap();

        // 1. Traced query: the response echoes the client's trace id…
        const QUERY_TRACE: u64 = 987_654_321;
        let response = client
            .query_traced(&[1, 4, 9], None, Some(5), QUERY_TRACE)
            .unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("trace").and_then(Json::as_u64),
            Some(QUERY_TRACE),
            "query response must echo the trace id: {response:?}"
        );
        let (resp_sa, resp_ra) = (
            response.get("sa").and_then(Json::as_u64).unwrap(),
            response.get("ra").and_then(Json::as_u64).unwrap(),
        );

        // …and the `trace` verb retrieves its full cost attribution.
        let dump = client.trace_dump(Some(QUERY_TRACE), false).unwrap();
        let spans = spans_of(&dump);
        assert_eq!(spans.len(), 1, "one span under this trace: {dump:?}");
        let span = &spans[0];
        assert_eq!(span.get("kind").and_then(Json::as_str), Some("query"));
        assert_eq!(span.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(span.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(
            (
                span.get("sa").and_then(Json::as_u64),
                span.get("ra").and_then(Json::as_u64)
            ),
            (Some(resp_sa), Some(resp_ra)),
            "span access counts must match the response's: {span:?}"
        );
        let phases = span.get("phases").expect("phases object");
        for phase in [
            "admit_us",
            "cache_us",
            "prepare_us",
            "kernel_us",
            "serialize_us",
        ] {
            assert!(
                phases.get(phase).and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
                "phase {phase} must carry time: {phases:?}"
            );
        }
        let total_us = span.get("total_us").and_then(Json::as_f64).unwrap();
        assert!(total_us > 0.0);

        // A repeat of the same query under a fresh trace is a cache
        // hit — served inline, still fully attributed.
        const HIT_TRACE: u64 = 987_654_322;
        let response = client
            .query_traced(&[1, 4, 9], None, Some(5), HIT_TRACE)
            .unwrap();
        assert_eq!(response.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            response.get("trace").and_then(Json::as_u64),
            Some(HIT_TRACE)
        );
        let spans = spans_of(&client.trace_dump(Some(HIT_TRACE), false).unwrap());
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("cache").and_then(Json::as_str), Some("hit"));

        // An untraced query gets a server-assigned id it can still use.
        let response = client.query(&[2, 5], None, Some(3)).unwrap();
        let assigned = response
            .get("trace")
            .and_then(Json::as_u64)
            .expect("server-assigned trace id");
        let spans = spans_of(&client.trace_dump(Some(assigned), false).unwrap());
        assert_eq!(spans.len(), 1, "assigned id resolves in the recorder");

        // 3. Push frames echo the subscription's trace id.
        const SUB_TRACE: u64 = 555_000_111;
        let sub_resp = client
            .request(&Json::obj(vec![
                ("verb", Json::str("subscribe")),
                ("group", Json::Arr(vec![Json::num(0u32), Json::num(3u32)])),
                ("k", Json::num(4u32)),
                ("trace", Json::num(SUB_TRACE as f64)),
            ]))
            .unwrap();
        assert_eq!(sub_resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            sub_resp.get("trace").and_then(Json::as_u64),
            Some(SUB_TRACE)
        );

        // 2. Traced ingest: the ack echoes the id; lineage lands in
        // `stats` with per-stage timings.
        const INGEST_TRACE: u64 = 123_123_123;
        let ack = client
            .request(&Json::obj(vec![
                ("verb", Json::str("ingest")),
                (
                    "ratings",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::num(0u32),
                        Json::num(7u32),
                        Json::num(5u32),
                        Json::num(11u32),
                    ])]),
                ),
                ("trace", Json::num(INGEST_TRACE as f64)),
            ]))
            .unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
        assert_eq!(
            ack.get("trace").and_then(Json::as_u64),
            Some(INGEST_TRACE),
            "ingest ack must echo the trace id: {ack:?}"
        );
        let published = ack.get("epoch").and_then(Json::as_u64).unwrap();
        let spans = spans_of(&client.trace_dump(Some(INGEST_TRACE), false).unwrap());
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert_eq!(span.get("kind").and_then(Json::as_str), Some("ingest"));
        assert_eq!(span.get("epoch").and_then(Json::as_u64), Some(published));
        let phases = span.get("phases").expect("phases object");
        for phase in ["stage_us", "rebuild_us", "swap_us"] {
            assert!(
                phases.get(phase).and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
                "ingest pipeline phase {phase} must carry time: {phases:?}"
            );
        }

        // The subscription covered user 0 — the pump should push, and
        // the frame must echo the subscribe's trace id.
        let push = client
            .poll_push(Duration::from_secs(5))
            .unwrap()
            .expect("a push frame after the publish");
        assert_eq!(push.get("push").and_then(Json::as_str), Some("delta"));
        assert_eq!(push.get("trace").and_then(Json::as_u64), Some(SUB_TRACE));

        // Lineage via stats.
        let stats = client.stats().unwrap();
        let lineage = stats.get("lineage").expect("lineage block");
        assert_eq!(lineage.get("epoch").and_then(Json::as_u64), Some(published));
        assert!(lineage.get("publishes").and_then(Json::as_u64).unwrap() >= 1);
        assert!(
            lineage
                .get("last_publish_unix_ms")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        let recent = lineage
            .get("recent")
            .and_then(Json::as_array)
            .expect("recent lineage records");
        let record = recent
            .iter()
            .find(|r| r.get("epoch").and_then(Json::as_u64) == Some(published))
            .expect("the publish's lineage record");
        assert_eq!(record.get("upserts").and_then(Json::as_u64), Some(1));
        assert!(record.get("total_us").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(record.get("stage_us").and_then(Json::as_f64).unwrap() > 0.0);
        let obs = stats.get("obs").expect("obs block");
        assert_eq!(obs.get("enabled").and_then(Json::as_bool), Some(true));
        assert!(obs.get("sa").and_then(Json::as_u64).unwrap() >= resp_sa);
        let spans_by_kind = obs.get("spans").expect("span totals");
        assert!(spans_by_kind.get("query").and_then(Json::as_u64).unwrap() >= 3);
        assert!(spans_by_kind.get("ingest").and_then(Json::as_u64).unwrap() >= 1);

        // 4. Prometheus exposition.
        let body = client.metrics_text().unwrap();
        for series in [
            "greca_requests_total{verb=\"query\"}",
            "greca_request_duration_seconds_bucket{verb=\"query\",le=\"+Inf\"}",
            "greca_cache_lookups_total{outcome=\"hit\"}",
            "greca_spans_total{kind=\"query\"}",
            "greca_phase_seconds_total{phase=\"kernel\"}",
            "greca_kernel_accesses_total{mode=\"sorted\"}",
        ] {
            assert!(body.contains(series), "missing series {series}:\n{body}");
        }

        // 5. The zero threshold put the traced spans in the slow log.
        let slow = client.trace_dump(Some(QUERY_TRACE), true).unwrap();
        assert_eq!(slow.get("source").and_then(Json::as_str), Some("slow_log"));
        assert_eq!(spans_of(&slow).len(), 1, "{slow:?}");
    });
}
