//! A minimal blocking client for the line protocol — what the load
//! harness, the examples and the integration tests talk through.
//!
//! Push frames (server-initiated lines for `subscribe`d queries) can
//! arrive interleaved with responses; the client tells them apart by
//! the wire framing — push frames lead with the `push` key, responses
//! with `ok` — and stashes pushes so request/response pairing never
//! skews. Drain them with [`Client::take_pushes`] or block for the
//! next one with [`Client::poll_push`].

use crate::json::{self, Json};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One blocking connection to a [`GrecaServer`](crate::GrecaServer).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Push frames read while waiting for a response, in arrival order.
    pushes: VecDeque<Json>,
}

impl Client {
    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            pushes: VecDeque::new(),
        })
    }

    /// Send one request value, wait for its response line.
    pub fn request(&mut self, body: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&body.to_line())?;
        parse_line(&line)
    }

    /// Send one raw line, read one raw line back (no parsing). Push
    /// frames arriving first are stashed, not returned.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        loop {
            let line = self.read_line()?;
            if is_push(&line) {
                self.pushes.push_back(parse_line(&line)?);
                continue;
            }
            return Ok(line);
        }
    }

    /// Push frames received so far (stashed while reading responses),
    /// oldest first. Does not read from the socket.
    pub fn take_pushes(&mut self) -> Vec<Json> {
        self.pushes.drain(..).collect()
    }

    /// Block until one push frame is available (stashed or freshly
    /// read) or `timeout` elapses; `Ok(None)` on timeout. Any response
    /// line read while polling is an error — poll only when no request
    /// is outstanding.
    pub fn poll_push(&mut self, timeout: Duration) -> std::io::Result<Option<Json>> {
        if let Some(frame) = self.pushes.pop_front() {
            return Ok(Some(frame));
        }
        let stream = self.reader.get_ref();
        let previous = stream.read_timeout()?;
        stream.set_read_timeout(Some(timeout))?;
        let read = self.read_line();
        self.reader.get_ref().set_read_timeout(previous)?;
        match read {
            Ok(line) if is_push(&line) => parse_line(&line).map(Some),
            Ok(line) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a push frame, got a response: {line}"),
            )),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// A `query` request over `group` with optional itemset and k.
    pub fn query(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
    ) -> std::io::Result<Json> {
        self.request(&query_body("query", group, items, k))
    }

    /// A `subscribe` request: registers `group` as a continuous query
    /// and returns the baseline response (with its `sub` id).
    pub fn subscribe(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
    ) -> std::io::Result<Json> {
        self.request(&query_body("subscribe", group, items, k))
    }

    /// An `unsubscribe` request for subscription `sub`.
    pub fn unsubscribe(&mut self, sub: u64) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![
            ("verb", Json::str("unsubscribe")),
            ("sub", Json::num(sub as f64)),
        ]))
    }

    /// An `ingest` request of `(user, item, value, ts)` ratings.
    pub fn ingest(&mut self, ratings: &[(u32, u32, f32, i64)]) -> std::io::Result<Json> {
        let body = Json::obj(vec![
            ("verb", Json::str("ingest")),
            (
                "ratings",
                Json::Arr(
                    ratings
                        .iter()
                        .map(|&(u, i, v, ts)| {
                            Json::Arr(vec![
                                Json::num(u),
                                Json::num(i),
                                Json::num(f64::from(v)),
                                Json::num(ts as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        self.request(&body)
    }

    /// A `stats` request.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("verb", Json::str("stats"))]))
    }

    /// A `health` request.
    pub fn health(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("verb", Json::str("health"))]))
    }

    /// Read one line, EOF-checked.
    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

/// The wire-framing check: push frames lead with the `push` key (see
/// [`crate::protocol`]'s push-frame docs).
fn is_push(line: &str) -> bool {
    line.starts_with("{\"push\":")
}

fn parse_line(line: &str) -> std::io::Result<Json> {
    json::parse(line).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable response '{line}': {e}"),
        )
    })
}

/// A `query`-shaped request body under `verb`.
fn query_body(verb: &str, group: &[u32], items: Option<&[u32]>, k: Option<usize>) -> Json {
    let mut pairs = vec![
        ("verb", Json::str(verb)),
        (
            "group",
            Json::Arr(group.iter().map(|&u| Json::num(u)).collect()),
        ),
    ];
    if let Some(items) = items {
        pairs.push((
            "items",
            Json::Arr(items.iter().map(|&i| Json::num(i)).collect()),
        ));
    }
    if let Some(k) = k {
        pairs.push(("k", Json::num(k as f64)));
    }
    Json::obj(pairs)
}
