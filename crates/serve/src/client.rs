//! A minimal blocking client for the line protocol — what the load
//! harness, the examples and the integration tests talk through.

use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a [`GrecaServer`](crate::GrecaServer).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request value, wait for its response line.
    pub fn request(&mut self, body: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&body.to_line())?;
        json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response '{line}': {e}"),
            )
        })
    }

    /// Send one raw line, read one raw line back (no parsing).
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// A `query` request over `group` with optional itemset and k.
    pub fn query(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
    ) -> std::io::Result<Json> {
        let mut pairs = vec![
            ("verb", Json::str("query")),
            (
                "group",
                Json::Arr(group.iter().map(|&u| Json::num(u)).collect()),
            ),
        ];
        if let Some(items) = items {
            pairs.push((
                "items",
                Json::Arr(items.iter().map(|&i| Json::num(i)).collect()),
            ));
        }
        if let Some(k) = k {
            pairs.push(("k", Json::num(k as f64)));
        }
        self.request(&Json::obj(pairs))
    }

    /// An `ingest` request of `(user, item, value, ts)` ratings.
    pub fn ingest(&mut self, ratings: &[(u32, u32, f32, i64)]) -> std::io::Result<Json> {
        let body = Json::obj(vec![
            ("verb", Json::str("ingest")),
            (
                "ratings",
                Json::Arr(
                    ratings
                        .iter()
                        .map(|&(u, i, v, ts)| {
                            Json::Arr(vec![
                                Json::num(u),
                                Json::num(i),
                                Json::num(f64::from(v)),
                                Json::num(ts as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        self.request(&body)
    }

    /// A `stats` request.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("verb", Json::str("stats"))]))
    }

    /// A `health` request.
    pub fn health(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("verb", Json::str("health"))]))
    }
}
