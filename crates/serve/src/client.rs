//! A minimal blocking client for the line protocol — what the load
//! harness, the examples and the integration tests talk through.
//!
//! Push frames (server-initiated lines for `subscribe`d queries) can
//! arrive interleaved with responses; the client tells them apart by
//! the wire framing — push frames lead with the `push` key, responses
//! with `ok` — and stashes pushes so request/response pairing never
//! skews. Drain them with [`Client::take_pushes`] or block for the
//! next one with [`Client::poll_push`].
//!
//! ## Timeouts and retries
//!
//! [`ClientConfig`] bounds every socket operation: connect, read and
//! write timeouts all default on, so a wedged server turns into a
//! typed [`ClientError::TimedOut`] instead of a hung client.
//! [`Client::request_retrying`] layers deterministic retry on top —
//! exponential backoff with seeded jitter, reconnecting on timeouts
//! and dropped connections. Retried *ingests* must carry a `batch`
//! idempotency key (see [`Client::ingest_keyed`]): the server
//! deduplicates the key, so a retry whose original acknowledgement
//! was lost is a no-op instead of a double-apply.

use crate::json::{self, Json};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket and retry configuration for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect timeout. `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Read timeout per response line; an expiry surfaces as
    /// [`ClientError::TimedOut`]. `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Write timeout per request line.
    pub write_timeout: Option<Duration>,
    /// Retries [`Client::request_retrying`] attempts *after* the first
    /// try (0 = no retry).
    pub retries: u32,
    /// Base backoff before the first retry; doubles each retry.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic retry jitter (each backoff is scaled
    /// by 50–100%, drawn from this seed), so two clients created with
    /// different seeds don't retry in lockstep — and a test replays
    /// the exact same schedule from the same seed.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            retries: 3,
            backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            retry_seed: 0x9e37_79b9,
        }
    }
}

/// A typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// A socket operation exceeded its configured timeout.
    TimedOut,
    /// The server closed the connection (EOF mid-protocol).
    Disconnected,
    /// A line arrived that wasn't valid protocol JSON.
    Protocol(String),
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut => f.write_str("socket operation timed out"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => ClientError::TimedOut,
            ErrorKind::UnexpectedEof => ClientError::Disconnected,
            _ => ClientError::Io(e),
        }
    }
}

impl From<ClientError> for std::io::Error {
    fn from(e: ClientError) -> std::io::Error {
        use std::io::{Error, ErrorKind};
        match e {
            ClientError::TimedOut => Error::new(ErrorKind::TimedOut, "socket operation timed out"),
            ClientError::Disconnected => {
                Error::new(ErrorKind::UnexpectedEof, "server closed the connection")
            }
            ClientError::Protocol(detail) => Error::new(ErrorKind::InvalidData, detail),
            ClientError::Io(e) => e,
        }
    }
}

impl ClientError {
    /// Whether a retry (on a fresh connection) could plausibly
    /// succeed: timeouts and connection-level failures are transient;
    /// protocol garbage is not.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::TimedOut | ClientError::Disconnected => true,
            ClientError::Protocol(_) => false,
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::NotConnected
            ),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One blocking connection to a [`GrecaServer`](crate::GrecaServer).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Push frames read while waiting for a response, in arrival order.
    pushes: VecDeque<Json>,
    config: ClientConfig,
    /// The resolved peer address, kept for reconnect-on-retry.
    addr: SocketAddr,
    /// Retries performed so far (jitter counter + observability).
    retries_used: u64,
}

impl Client {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts and retry policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(ClientError::from)?
            .next()
            .ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                ))
            })?;
        let stream = open_stream(resolved, &config)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone().map_err(ClientError::from)?),
            writer: stream,
            pushes: VecDeque::new(),
            config,
            addr: resolved,
            retries_used: 0,
        })
    }

    /// The retry policy and timeouts this client runs under.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Drop the current connection and dial the server again (fresh
    /// socket, same config). Stashed push frames survive; any
    /// subscriptions registered on the old connection do not — the
    /// server retires them when it notices the dead socket.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = open_stream(self.addr, &self.config)?;
        self.reader = BufReader::new(stream.try_clone().map_err(ClientError::from)?);
        self.writer = stream;
        Ok(())
    }

    /// Send one request value, wait for its response line.
    pub fn request(&mut self, body: &Json) -> Result<Json, ClientError> {
        let line = self.request_raw(&body.to_line())?;
        parse_line(&line)
    }

    /// [`Client::request`] with retry: on a retryable failure (timeout,
    /// dropped connection) the client reconnects and resends, backing
    /// off exponentially with seeded jitter between attempts. The
    /// request may execute more than once server-side — give retried
    /// ingests a `batch` idempotency key ([`Client::ingest_keyed`]
    /// does) so re-execution is a no-op; queries are naturally
    /// idempotent.
    pub fn request_retrying(&mut self, body: &Json) -> Result<Json, ClientError> {
        let line = body.to_line();
        let mut attempt = 0u32;
        loop {
            let result = self
                .request_raw(&line)
                .and_then(|response| parse_line(&response));
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if attempt >= self.config.retries || !err.is_retryable() {
                return Err(err);
            }
            std::thread::sleep(self.backoff_for(attempt));
            attempt += 1;
            self.retries_used += 1;
            // Reconnect failures are themselves retryable up to the
            // same attempt budget.
            if let Err(reconnect_err) = self.reconnect() {
                if attempt >= self.config.retries || !reconnect_err.is_retryable() {
                    return Err(reconnect_err);
                }
            }
        }
    }

    /// The backoff before retry number `attempt` (0-based): base × 2^n,
    /// capped, then jittered into 50–100% of itself so concurrent
    /// clients spread out. Deterministic in `(retry_seed, retries so
    /// far)`.
    fn backoff_for(&self, attempt: u32) -> Duration {
        let base = self
            .config
            .backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.max_backoff);
        let draw = splitmix64(self.config.retry_seed ^ self.retries_used.wrapping_mul(0x2545_f491));
        let scale_permille = 500 + (draw % 501); // 50.0%..=100.0%
        base.mul_f64(scale_permille as f64 / 1000.0)
    }

    /// Send one raw line, read one raw line back (no parsing). Push
    /// frames arriving first are stashed, not returned.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}").map_err(ClientError::from)?;
        loop {
            let line = self.read_line()?;
            if is_push(&line) {
                self.pushes.push_back(parse_line(&line)?);
                continue;
            }
            return Ok(line);
        }
    }

    /// Push frames received so far (stashed while reading responses),
    /// oldest first. Does not read from the socket.
    pub fn take_pushes(&mut self) -> Vec<Json> {
        self.pushes.drain(..).collect()
    }

    /// Block until one push frame is available (stashed or freshly
    /// read) or `timeout` elapses; `Ok(None)` on timeout. Any response
    /// line read while polling is an error — poll only when no request
    /// is outstanding.
    pub fn poll_push(&mut self, timeout: Duration) -> Result<Option<Json>, ClientError> {
        if let Some(frame) = self.pushes.pop_front() {
            return Ok(Some(frame));
        }
        let stream = self.reader.get_ref();
        let previous = stream.read_timeout().map_err(ClientError::from)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::from)?;
        let read = self.read_line();
        self.reader
            .get_ref()
            .set_read_timeout(previous)
            .map_err(ClientError::from)?;
        match read {
            Ok(line) if is_push(&line) => parse_line(&line).map(Some),
            Ok(line) => Err(ClientError::Protocol(format!(
                "expected a push frame, got a response: {line}"
            ))),
            Err(ClientError::TimedOut) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// A `query` request over `group` with optional itemset and k.
    pub fn query(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
    ) -> Result<Json, ClientError> {
        self.request(&query_body("query", group, items, k))
    }

    /// A `subscribe` request: registers `group` as a continuous query
    /// and returns the baseline response (with its `sub` id).
    pub fn subscribe(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
    ) -> Result<Json, ClientError> {
        self.request(&query_body("subscribe", group, items, k))
    }

    /// An `unsubscribe` request for subscription `sub`.
    pub fn unsubscribe(&mut self, sub: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![
            ("verb", Json::str("unsubscribe")),
            ("sub", Json::num(sub as f64)),
        ]))
    }

    /// An `ingest` request of `(user, item, value, ts)` ratings.
    pub fn ingest(&mut self, ratings: &[(u32, u32, f32, i64)]) -> Result<Json, ClientError> {
        self.request(&ingest_body(ratings, None))
    }

    /// An `ingest` carrying the `batch` idempotency key `key`, sent
    /// through [`Client::request_retrying`]: safe to retry end-to-end,
    /// because the server answers a replayed key with `duplicate: true`
    /// instead of applying it again.
    pub fn ingest_keyed(
        &mut self,
        key: u64,
        ratings: &[(u32, u32, f32, i64)],
    ) -> Result<Json, ClientError> {
        self.request_retrying(&ingest_body(ratings, Some(key)))
    }

    /// A `query` carrying a caller-chosen trace id, echoed in the
    /// response — the handle for retrieving the request's per-phase
    /// cost attribution via [`Client::trace_dump`].
    pub fn query_traced(
        &mut self,
        group: &[u32],
        items: Option<&[u32]>,
        k: Option<usize>,
        trace: u64,
    ) -> Result<Json, ClientError> {
        let Json::Obj(mut pairs) = query_body("query", group, items, k) else {
            unreachable!("query_body builds an object");
        };
        pairs.push(("trace".to_string(), Json::num(trace as f64)));
        self.request(&Json::Obj(pairs))
    }

    /// A `trace` request: dump flight-recorder spans, filtered by
    /// trace id (`Some(id)`) and/or the other server-side filters left
    /// at their defaults. `slow` dumps the slow-query log instead.
    pub fn trace_dump(&mut self, trace: Option<u64>, slow: bool) -> Result<Json, ClientError> {
        let mut pairs = vec![("verb", Json::str("trace"))];
        if let Some(trace) = trace {
            pairs.push(("trace", Json::num(trace as f64)));
        }
        if slow {
            pairs.push(("slow", Json::Bool(true)));
        }
        self.request(&Json::obj(pairs))
    }

    /// A `metrics` request: the Prometheus text exposition body.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let response = self.request(&Json::obj(vec![("verb", Json::str("metrics"))]))?;
        match response.get("body").and_then(Json::as_str) {
            Some(body) => Ok(body.to_string()),
            None => Err(ClientError::Protocol(
                "metrics response carried no body".to_string(),
            )),
        }
    }

    /// A `stats` request.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("verb", Json::str("stats"))]))
    }

    /// A `health` request.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("verb", Json::str("health"))]))
    }

    /// Read one line, EOF-checked.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(ClientError::from)?;
        if n == 0 {
            return Err(ClientError::Disconnected);
        }
        Ok(line.trim_end().to_string())
    }
}

/// Dial `addr` under `config`'s connect timeout and apply its
/// per-operation socket timeouts.
fn open_stream(addr: SocketAddr, config: &ClientConfig) -> Result<TcpStream, ClientError> {
    let stream = match config.connect_timeout {
        Some(timeout) => TcpStream::connect_timeout(&addr, timeout),
        None => TcpStream::connect(addr),
    }
    .map_err(ClientError::from)?;
    stream.set_nodelay(true).map_err(ClientError::from)?;
    stream
        .set_read_timeout(config.read_timeout)
        .map_err(ClientError::from)?;
    stream
        .set_write_timeout(config.write_timeout)
        .map_err(ClientError::from)?;
    Ok(stream)
}

/// The wire-framing check: push frames lead with the `push` key (see
/// [`crate::protocol`]'s push-frame docs).
fn is_push(line: &str) -> bool {
    line.starts_with("{\"push\":")
}

fn parse_line(line: &str) -> Result<Json, ClientError> {
    json::parse(line).map_err(|e| ClientError::Protocol(format!("unparseable line '{line}': {e}")))
}

/// A `query`-shaped request body under `verb`.
fn query_body(verb: &str, group: &[u32], items: Option<&[u32]>, k: Option<usize>) -> Json {
    let mut pairs = vec![
        ("verb", Json::str(verb)),
        (
            "group",
            Json::Arr(group.iter().map(|&u| Json::num(u)).collect()),
        ),
    ];
    if let Some(items) = items {
        pairs.push((
            "items",
            Json::Arr(items.iter().map(|&i| Json::num(i)).collect()),
        ));
    }
    if let Some(k) = k {
        pairs.push(("k", Json::num(k as f64)));
    }
    Json::obj(pairs)
}

/// An `ingest` request body, optionally keyed for idempotent retry.
fn ingest_body(ratings: &[(u32, u32, f32, i64)], batch_key: Option<u64>) -> Json {
    let mut pairs = vec![
        ("verb", Json::str("ingest")),
        (
            "ratings",
            Json::Arr(
                ratings
                    .iter()
                    .map(|&(u, i, v, ts)| {
                        Json::Arr(vec![
                            Json::num(u),
                            Json::num(i),
                            Json::num(f64::from(v)),
                            Json::num(ts as f64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(key) = batch_key {
        pairs.push(("batch", Json::num(key as f64)));
    }
    Json::obj(pairs)
}
