//! The wire protocol: line-delimited JSON, one request and one response
//! per line, eight verbs — plus server-initiated push frames for
//! continuous queries.
//!
//! ## Requests
//!
//! ```text
//! {"verb":"query","group":[3,17,42]}                          — paper defaults
//! {"verb":"query","group":[3,17],"items":[0,1,2],"k":5,
//!  "period":2,"mode":"static","consensus":"mo","id":7}        — everything spelled out
//! {"verb":"subscribe","group":[3,17],"k":5}                   — continuous query
//! {"verb":"unsubscribe","sub":4}
//! {"verb":"ingest","ratings":[[3,120,4.5,1710000000]],
//!  "retract":[[3,7]]}                                         — one epoch publish
//! {"verb":"stats"}
//! {"verb":"health"}
//! {"verb":"trace","trace":18446744073709551,"limit":10}       — flight-recorder dump
//! {"verb":"metrics"}                                          — Prometheus text exposition
//! ```
//!
//! `consensus` accepts `"ap"`, `"mo"`, `"pd:<w1>"`, `"vd:<w1>"`;
//! `mode` accepts `"none"`, `"static"`, `"discrete"` (the default).
//! An optional `id` of any JSON type is echoed verbatim in the
//! response, for clients that pipeline.
//!
//! `query`, `subscribe` and `ingest` also accept `deadline_ms`: a
//! per-request latency budget. A request still queued when its budget
//! expires is answered `deadline_exceeded` instead of executing —
//! cheaper than doing work whose caller has already given up on.
//! `ingest` additionally accepts `batch`, a u64 client idempotency
//! key: retrying an ingest whose acknowledgement was lost with the
//! same key is a no-op answered with `duplicate: true` (see
//! [`LiveEngine::stage_keyed`](greca_core::LiveEngine::stage_keyed)).
//!
//! ## Tracing
//!
//! `query`, `subscribe` and `ingest` accept an optional u64 `trace`:
//! a caller-chosen trace id threaded through the whole serving path
//! (admission → cache → planner → kernel) and echoed in the response
//! — and, for subscriptions, in every later push frame — so external
//! callers can correlate retries and pushes. Requests without one get
//! a server-assigned id, still echoed. The `trace` verb dumps the
//! flight recorder's cost-attribution records: `trace` (id), `kind`
//! (`query`/`ingest`/`publish`/…), `min_us` (minimum total latency)
//! and `limit` filter; `"slow":true` dumps the slow-query log
//! instead. The `metrics` verb returns the Prometheus text exposition
//! (as a JSON-wrapped `body`, this being a line protocol).
//!
//! ## Responses
//!
//! Every response carries `ok` plus the echoed `verb` (and `id` when
//! given). Failures replace the payload with a typed `code`:
//!
//! * `bad_request` — malformed JSON, unknown verb, missing/ill-typed
//!   field (detail in `error`);
//! * `rejected` — the engine refused the query
//!   ([`QueryError`](greca_core::QueryError) text in `error`);
//! * `overloaded` — the verb's admission queue was full; the request
//!   was **not** executed and the client should back off (the
//!   HTTP-429 analogue);
//! * `deadline_exceeded` — the request's `deadline_ms` budget ran out
//!   while it waited in the queue; it was **not** executed;
//! * `degraded` — an ingest could not be made durable (the write-ahead
//!   log is stalled); nothing was applied and the retry is idempotent.
//!   Reads are *not* shed in this state — see below;
//! * `shutting_down` — the server is draining;
//! * `internal` — a worker panicked mid-execution.
//!
//! Successful `query` responses carry the serving epoch, the cache
//! disposition (`hit` / `miss` / `coalesced` / `bypass`) and the exact
//! result: item ids with their `[lb, ub]` score envelopes (floats in
//! shortest round-trip form, so the payload is bit-comparable to a
//! direct engine run), access statistics, sweeps and the stop reason.
//! While the engine's WAL is stalled, queries keep being answered from
//! the last healthy epoch and gain two fields — `degraded: true` and
//! `staleness_ms`, the age of that epoch — so clients can tell a
//! fresh answer from a degraded-mode one.
//!
//! ## Push frames
//!
//! `subscribe` registers a continuous query: the response carries a
//! server-assigned `sub` id plus the baseline result, and after each
//! epoch publish whose dirty set intersects the subscription's
//! footprint, the server re-runs the query and — *only when the top-k
//! actually changed* — writes an unsolicited frame on the same
//! connection:
//!
//! ```text
//! {"push":"delta","sub":4,"epoch":12,"items":[…],…}
//! ```
//!
//! Push frames always start with the `push` key (never `ok`), so a
//! pipelining client can tell them from responses by the first bytes
//! of the line; the subscription's original `id`, when given, is echoed
//! in every frame.

use crate::json::Json;
use greca_affinity::AffinityMode;
use greca_consensus::ConsensusFunction;
use greca_core::{Phase, SpanKind, SpanRecord, StopReason, TopKResult};
use greca_dataset::{ItemId, Rating, UserId};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one group query.
    Query(QueryRequest),
    /// Register a continuous group query (same shape as `query`).
    Subscribe(QueryRequest),
    /// Deregister a continuous query by its `sub` id.
    Unsubscribe {
        /// The server-assigned subscription id.
        sub: u64,
        /// Echoed request id.
        id: Option<Json>,
    },
    /// Stage + publish rating deltas as one epoch.
    Ingest(IngestRequest),
    /// Metrics registry dump.
    Stats,
    /// Liveness probe.
    Health,
    /// Flight-recorder dump (filtered span records / slow-query log).
    Trace(TraceRequest),
    /// Prometheus text exposition.
    Metrics {
        /// Echoed request id.
        id: Option<Json>,
    },
}

impl Request {
    /// The verb label echoed in responses.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Query(_) => "query",
            Request::Subscribe(_) => "subscribe",
            Request::Unsubscribe { .. } => "unsubscribe",
            Request::Ingest(_) => "ingest",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::Trace(_) => "trace",
            Request::Metrics { .. } => "metrics",
        }
    }
}

/// One `trace` request: flight-recorder filters.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRequest {
    /// Keep only records with this trace id.
    pub trace: Option<u64>,
    /// Keep only records of this span kind (`query`/`ingest`/…).
    pub kind: Option<SpanKind>,
    /// Keep only records at least this slow (total, µs).
    pub min_us: Option<u64>,
    /// Dump the slow-query log instead of the rings.
    pub slow: bool,
    /// Newest records kept after filtering.
    pub limit: Option<usize>,
    /// Echoed request id.
    pub id: Option<Json>,
}

/// One `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Group member user ids.
    pub group: Vec<UserId>,
    /// Candidate itemset; `None` = the provider's candidate set.
    pub items: Option<Vec<ItemId>>,
    /// Result size; `None` = the paper default (10).
    pub k: Option<usize>,
    /// Query period; `None` = the latest.
    pub period: Option<usize>,
    /// Affinity mode; `None` = discrete.
    pub mode: Option<AffinityMode>,
    /// Consensus function; `None` = AP.
    pub consensus: Option<ConsensusFunction>,
    /// Per-request latency budget in milliseconds; a request still
    /// queued when it expires is answered `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// Caller-chosen trace id, echoed in the response (and every push
    /// frame of a subscription); `None` = server-assigned.
    pub trace: Option<u64>,
    /// Echoed request id.
    pub id: Option<Json>,
}

/// One `ingest` request.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRequest {
    /// Rating upserts.
    pub ratings: Vec<Rating>,
    /// `(user, item)` retractions.
    pub retractions: Vec<(UserId, ItemId)>,
    /// Client idempotency key (`batch` on the wire): a key the engine
    /// has already staged makes the request a no-op answered with
    /// `duplicate: true`.
    pub batch_key: Option<u64>,
    /// Per-request latency budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Caller-chosen trace id, echoed in the ack; `None` =
    /// server-assigned.
    pub trace: Option<u64>,
    /// Echoed request id.
    pub id: Option<Json>,
}

/// A request-level failure, mapped to a typed error response.
#[derive(Debug, Clone, PartialEq)]
pub struct BadRequest {
    /// Human-readable detail.
    pub detail: String,
    /// Echoed request id, when it was at least readable.
    pub id: Option<Json>,
}

fn bad(detail: impl Into<String>, id: Option<Json>) -> BadRequest {
    BadRequest {
        detail: detail.into(),
        id,
    }
}

/// A wire value as a u32 id — rejects negatives, fractions, and values
/// beyond `u32::MAX` (silent truncation would address the wrong
/// user/item).
fn as_u32_id(v: &Json) -> Option<u32> {
    v.as_u64().and_then(|u| u32::try_from(u).ok())
}

/// An optional u64 wire field (`deadline_ms`, `batch`), erroring on an
/// ill-typed value rather than silently ignoring it.
fn u64_field(value: &Json, name: &str, id: &Option<Json>) -> Result<Option<u64>, BadRequest> {
    match value.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("'{name}' must be a u64"), id.clone())),
    }
}

/// Parse one request line's JSON into a [`Request`].
pub fn parse_request(value: &Json) -> Result<Request, BadRequest> {
    let id = value.get("id").cloned();
    let verb = value
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'verb'", id.clone()))?;
    match verb {
        "query" => Ok(Request::Query(parse_query(value, id)?)),
        "subscribe" => Ok(Request::Subscribe(parse_query(value, id)?)),
        "unsubscribe" => {
            let sub = value
                .get("sub")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("unsubscribe needs a u64 field 'sub'", id.clone()))?;
            Ok(Request::Unsubscribe { sub, id })
        }
        "ingest" => Ok(Request::Ingest(parse_ingest(value, id)?)),
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "trace" => Ok(Request::Trace(parse_trace(value, id)?)),
        "metrics" => Ok(Request::Metrics { id }),
        other => Err(bad(
            format!(
                "unknown verb '{other}' (expected query/subscribe/unsubscribe/ingest/stats/\
                 health/trace/metrics)"
            ),
            id,
        )),
    }
}

fn parse_trace(value: &Json, id: Option<Json>) -> Result<TraceRequest, BadRequest> {
    let kind = match value.get("kind") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(SpanKind::from_label(s).ok_or_else(|| {
            bad(
                format!(
                    "unknown kind '{s}' (expected query/subscribe/ingest/publish/pump/batch/other)"
                ),
                id.clone(),
            )
        })?),
        Some(_) => return Err(bad("'kind' must be a string", id)),
    };
    let slow = match value.get("slow") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("'slow' must be a boolean", id)),
    };
    Ok(TraceRequest {
        trace: u64_field(value, "trace", &id)?,
        kind,
        min_us: u64_field(value, "min_us", &id)?,
        slow,
        limit: u64_field(value, "limit", &id)?.map(|v| v as usize),
        id,
    })
}

fn parse_query(value: &Json, id: Option<Json>) -> Result<QueryRequest, BadRequest> {
    let group = value
        .get("group")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("query needs an array field 'group'", id.clone()))?
        .iter()
        .map(|v| as_u32_id(v).map(UserId))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| bad("'group' entries must be u32 user ids", id.clone()))?;
    let items = match value.get("items") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_array()
                .ok_or_else(|| bad("'items' must be an array", id.clone()))?
                .iter()
                .map(|v| as_u32_id(v).map(ItemId))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| bad("'items' entries must be u32 item ids", id.clone()))?,
        ),
    };
    let int_field = |name: &str| -> Result<Option<usize>, BadRequest> {
        match value.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(|u| Some(u as usize)).ok_or_else(|| {
                bad(
                    format!("'{name}' must be a non-negative integer"),
                    id.clone(),
                )
            }),
        }
    };
    let k = int_field("k")?;
    let period = int_field("period")?;
    let mode = match value.get("mode") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => match s.as_str() {
            "none" => Some(AffinityMode::None),
            "static" => Some(AffinityMode::StaticOnly),
            "discrete" => Some(AffinityMode::Discrete),
            other => {
                return Err(bad(
                    format!("unknown mode '{other}' (expected none/static/discrete)"),
                    id,
                ))
            }
        },
        Some(_) => return Err(bad("'mode' must be a string", id)),
    };
    let consensus = match value.get("consensus") {
        None | Some(Json::Null) => None,
        Some(Json::Str(spec)) => Some(parse_consensus(spec).ok_or_else(|| {
            bad(
                format!("unknown consensus '{spec}' (expected ap/mo/pd:<w1>/vd:<w1>)"),
                id.clone(),
            )
        })?),
        Some(_) => return Err(bad("'consensus' must be a string", id)),
    };
    let deadline_ms = u64_field(value, "deadline_ms", &id)?;
    let trace = u64_field(value, "trace", &id)?;
    Ok(QueryRequest {
        group,
        items,
        k,
        period,
        mode,
        consensus,
        deadline_ms,
        trace,
        id,
    })
}

/// Parse a consensus spec: `ap`, `mo`, `pd:<w1>`, `vd:<w1>`.
pub fn parse_consensus(spec: &str) -> Option<ConsensusFunction> {
    match spec {
        "ap" => Some(ConsensusFunction::average_preference()),
        "mo" => Some(ConsensusFunction::least_misery()),
        _ => {
            let (kind, w1) = spec.split_once(':')?;
            let w1: f64 = w1.parse().ok()?;
            if !(0.0..=1.0).contains(&w1) {
                return None;
            }
            match kind {
                "pd" => Some(ConsensusFunction::pairwise_disagreement(w1)),
                "vd" => Some(ConsensusFunction::variance_disagreement(w1)),
                _ => None,
            }
        }
    }
}

fn parse_ingest(value: &Json, id: Option<Json>) -> Result<IngestRequest, BadRequest> {
    let mut ratings = Vec::new();
    if let Some(v) = value.get("ratings") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad("'ratings' must be an array", id.clone()))?;
        for entry in arr {
            let tuple = entry
                .as_array()
                .filter(|t| t.len() == 4)
                .ok_or_else(|| bad("each rating must be [user, item, value, ts]", id.clone()))?;
            let user = as_u32_id(&tuple[0]);
            let item = as_u32_id(&tuple[1]);
            let value_f = tuple[2].as_f64();
            let ts = tuple[3].as_f64().filter(|t| t.fract() == 0.0);
            match (user, item, value_f, ts) {
                (Some(u), Some(i), Some(v), Some(t)) => ratings.push(Rating {
                    user: UserId(u),
                    item: ItemId(i),
                    value: v as f32,
                    ts: t as i64,
                }),
                _ => return Err(bad("each rating must be [user, item, value, ts]", id)),
            }
        }
    }
    let mut retractions = Vec::new();
    if let Some(v) = value.get("retract") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad("'retract' must be an array", id.clone()))?;
        for entry in arr {
            let tuple = entry.as_array().filter(|t| t.len() == 2);
            let pair = tuple.and_then(|t| Some((as_u32_id(&t[0])?, as_u32_id(&t[1])?)));
            match pair {
                Some((u, i)) => retractions.push((UserId(u), ItemId(i))),
                None => return Err(bad("each retraction must be [user, item]", id)),
            }
        }
    }
    if ratings.is_empty() && retractions.is_empty() {
        return Err(bad("ingest needs 'ratings' and/or 'retract'", id));
    }
    let batch_key = u64_field(value, "batch", &id)?;
    let deadline_ms = u64_field(value, "deadline_ms", &id)?;
    let trace = u64_field(value, "trace", &id)?;
    Ok(IngestRequest {
        ratings,
        retractions,
        batch_key,
        deadline_ms,
        trace,
        id,
    })
}

/// Start a response object: `ok`, `verb`, echoed `id` and `trace`.
fn response_head(
    ok: bool,
    verb: &str,
    id: &Option<Json>,
    trace: Option<u64>,
) -> Vec<(String, Json)> {
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(ok)),
        ("verb".to_string(), Json::str(verb)),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    if let Some(trace) = trace {
        pairs.push(("trace".to_string(), Json::num(trace as f64)));
    }
    pairs
}

/// A typed error response line. `trace` is echoed when the request
/// got far enough to have one (so even a shed or expired request can
/// be correlated).
pub fn error_response(
    verb: &str,
    code: &str,
    detail: &str,
    id: &Option<Json>,
    trace: Option<u64>,
) -> String {
    let mut pairs = response_head(false, verb, id, trace);
    pairs.push(("code".to_string(), Json::str(code)));
    pairs.push(("error".to_string(), Json::str(detail)));
    Json::Obj(pairs).to_line()
}

/// The result payload shared by `query`/`subscribe` responses and push
/// frames: epoch, items with exact score envelopes, access statistics,
/// sweeps, stop reason.
fn result_pairs(result: &TopKResult, epoch: u64) -> Vec<(String, Json)> {
    let items: Vec<Json> = result
        .items
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("item", Json::num(t.item.0)),
                ("lb", Json::Num(t.lb)),
                ("ub", Json::Num(t.ub)),
            ])
        })
        .collect();
    let stop = match result.stop_reason {
        StopReason::Buffer => "buffer",
        StopReason::Threshold => "threshold",
        StopReason::Exhausted => "exhausted",
    };
    vec![
        ("epoch".to_string(), Json::num(epoch as f64)),
        ("items".to_string(), Json::Arr(items)),
        ("sa".to_string(), Json::num(result.stats.sa as f64)),
        ("ra".to_string(), Json::num(result.stats.ra as f64)),
        (
            "total_entries".to_string(),
            Json::num(result.stats.total_entries as f64),
        ),
        ("sweeps".to_string(), Json::num(result.sweeps as f64)),
        ("stop".to_string(), Json::str(stop)),
    ]
}

/// A successful `query` response line. `degraded` is `Some(age_ms)`
/// when the engine's WAL is stalled and the answer comes from the last
/// healthy epoch: the response gains `degraded: true` and
/// `staleness_ms` so the client can tell (the fields are absent on a
/// healthy serve, keeping the common-case payload unchanged).
pub fn query_response(
    result: &TopKResult,
    epoch: u64,
    cache: &str,
    degraded: Option<u64>,
    id: &Option<Json>,
    trace: Option<u64>,
) -> String {
    let mut pairs = response_head(true, "query", id, trace);
    pairs.push(("cache".to_string(), Json::str(cache)));
    if let Some(staleness_ms) = degraded {
        pairs.push(("degraded".to_string(), Json::Bool(true)));
        pairs.push(("staleness_ms".to_string(), Json::num(staleness_ms as f64)));
    }
    pairs.extend(result_pairs(result, epoch));
    Json::Obj(pairs).to_line()
}

/// A successful `subscribe` response line: the assigned `sub` id plus
/// the baseline result.
pub fn subscribe_response(
    sub: u64,
    result: &TopKResult,
    epoch: u64,
    cache: &str,
    id: &Option<Json>,
    trace: Option<u64>,
) -> String {
    let mut pairs = response_head(true, "subscribe", id, trace);
    pairs.push(("sub".to_string(), Json::num(sub as f64)));
    pairs.push(("cache".to_string(), Json::str(cache)));
    pairs.extend(result_pairs(result, epoch));
    Json::Obj(pairs).to_line()
}

/// A successful `unsubscribe` response line (`removed` says whether the
/// id named a live subscription owned by this connection).
pub fn unsubscribe_response(sub: u64, removed: bool, id: &Option<Json>) -> String {
    let mut pairs = response_head(true, "unsubscribe", id, None);
    pairs.push(("sub".to_string(), Json::num(sub as f64)));
    pairs.push(("removed".to_string(), Json::Bool(removed)));
    Json::Obj(pairs).to_line()
}

/// A server-initiated push frame for subscription `sub`. The `push` key
/// leads the object (the wire-level discriminator — see the module
/// docs); the subscription's original `id` and `trace` are echoed when
/// present, so pushes correlate with the subscribe that started them.
pub fn push_frame(
    sub: u64,
    result: &TopKResult,
    epoch: u64,
    id: &Option<Json>,
    trace: Option<u64>,
) -> String {
    let mut pairs = vec![
        ("push".to_string(), Json::str("delta")),
        ("sub".to_string(), Json::num(sub as f64)),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    if let Some(trace) = trace {
        pairs.push(("trace".to_string(), Json::num(trace as f64)));
    }
    pairs.extend(result_pairs(result, epoch));
    Json::Obj(pairs).to_line()
}

/// Largest trace id representable on the wire: the JSON layer carries
/// numbers as `f64`, so ids are 53-bit (server-assigned ids are masked
/// to this; client-supplied ones beyond it fail parsing).
pub const MAX_WIRE_TRACE: u64 = (1 << 53) - 1;

/// One flight-recorder record as a JSON object: identity, outcome,
/// cost attribution (total + per-phase µs, zero phases omitted) and
/// the SA/RA access counts.
pub fn span_json(r: &SpanRecord) -> Json {
    let mut pairs = vec![
        ("trace".to_string(), Json::num(r.trace as f64)),
        ("span".to_string(), Json::num(r.span as f64)),
        ("kind".to_string(), Json::str(r.kind.label())),
        ("ok".to_string(), Json::Bool(r.ok)),
        ("epoch".to_string(), Json::num(r.epoch as f64)),
        ("unix_ms".to_string(), Json::num(r.unix_ms as f64)),
        (
            "total_us".to_string(),
            Json::num((r.total_ns / 1_000) as f64),
        ),
        ("sa".to_string(), Json::num(r.sa as f64)),
        ("ra".to_string(), Json::num(r.ra as f64)),
    ];
    if r.cache != greca_core::CacheNote::None {
        pairs.push(("cache".to_string(), Json::str(r.cache.label())));
    }
    let phases: Vec<(String, Json)> = Phase::ALL
        .iter()
        .filter(|&&p| r.phase(p) > 0)
        .map(|&p| {
            (
                format!("{}_us", p.label()),
                Json::num((r.phase(p) as f64) / 1_000.0),
            )
        })
        .collect();
    pairs.push(("phases".to_string(), Json::Obj(phases)));
    Json::Obj(pairs)
}

/// A successful `trace` response line: the filtered records (oldest →
/// newest) plus the source (`recorder` or `slow_log`).
pub fn trace_response(records: &[SpanRecord], slow: bool, id: &Option<Json>) -> String {
    let mut pairs = response_head(true, "trace", id, None);
    pairs.push((
        "source".to_string(),
        Json::str(if slow { "slow_log" } else { "recorder" }),
    ));
    pairs.push(("count".to_string(), Json::num(records.len() as f64)));
    pairs.push((
        "spans".to_string(),
        Json::Arr(records.iter().map(span_json).collect()),
    ));
    Json::Obj(pairs).to_line()
}

/// A successful `metrics` response line: the Prometheus text
/// exposition riding inside the line protocol as a JSON-escaped
/// `body` with its `content_type`.
pub fn metrics_response(body: &str, id: &Option<Json>) -> String {
    let mut pairs = response_head(true, "metrics", id, None);
    pairs.push((
        "content_type".to_string(),
        Json::str("text/plain; version=0.0.4"),
    ));
    pairs.push(("body".to_string(), Json::str(body)));
    Json::Obj(pairs).to_line()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_minimal_and_full_query() {
        let v = parse(r#"{"verb":"query","group":[3,1,2]}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Query(q) => {
                assert_eq!(q.group, vec![UserId(3), UserId(1), UserId(2)]);
                assert_eq!(
                    (q.items, q.k, q.period, q.mode, q.consensus),
                    (None, None, None, None, None)
                );
            }
            other => panic!("{other:?}"),
        }
        let v = parse(
            r#"{"verb":"query","group":[1],"items":[5,6],"k":3,"period":2,"mode":"static","consensus":"pd:0.8","id":"abc"}"#,
        )
        .unwrap();
        match parse_request(&v).unwrap() {
            Request::Query(q) => {
                assert_eq!(q.items, Some(vec![ItemId(5), ItemId(6)]));
                assert_eq!((q.k, q.period), (Some(3), Some(2)));
                assert_eq!(q.mode, Some(AffinityMode::StaticOnly));
                assert_eq!(
                    q.consensus,
                    Some(ConsensusFunction::pairwise_disagreement(0.8))
                );
                assert_eq!(q.id, Some(Json::str("abc")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ingest_with_retractions() {
        let v =
            parse(r#"{"verb":"ingest","ratings":[[3,120,4.5,1000]],"retract":[[3,7]]}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Ingest(i) => {
                assert_eq!(i.ratings.len(), 1);
                assert_eq!(i.ratings[0].user, UserId(3));
                assert_eq!(i.ratings[0].value, 4.5);
                assert_eq!(i.ratings[0].ts, 1000);
                assert_eq!(i.retractions, vec![(UserId(3), ItemId(7))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_detail() {
        for (line, needle) in [
            (r#"{"group":[1]}"#, "verb"),
            (r#"{"verb":"frobnicate"}"#, "unknown verb"),
            (r#"{"verb":"query"}"#, "group"),
            (r#"{"verb":"query","group":[-1]}"#, "u32"),
            (r#"{"verb":"query","group":[4294967297]}"#, "u32"),
            (
                r#"{"verb":"query","group":[1],"items":[4294967296]}"#,
                "u32",
            ),
            (r#"{"verb":"query","group":[1],"mode":5}"#, "string"),
            (r#"{"verb":"query","group":[1],"consensus":7}"#, "string"),
            (
                r#"{"verb":"ingest","ratings":[[4294967296,1,3.0,0]]}"#,
                "rating",
            ),
            (
                r#"{"verb":"ingest","retract":[[1,4294967296]]}"#,
                "retraction",
            ),
            (r#"{"verb":"query","group":[1],"mode":"cubic"}"#, "mode"),
            (
                r#"{"verb":"query","group":[1],"consensus":"pd:7"}"#,
                "consensus",
            ),
            (r#"{"verb":"ingest"}"#, "ingest needs"),
            (r#"{"verb":"ingest","ratings":[[1,2]]}"#, "rating"),
        ] {
            let v = parse(line).unwrap();
            let err = parse_request(&v).unwrap_err();
            assert!(
                err.detail.contains(needle),
                "{line} → {} (wanted '{needle}')",
                err.detail
            );
        }
    }

    #[test]
    fn parses_deadline_and_batch_key() {
        let v = parse(r#"{"verb":"query","group":[1],"deadline_ms":250}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Query(q) => assert_eq!(q.deadline_ms, Some(250)),
            other => panic!("{other:?}"),
        }
        let v = parse(r#"{"verb":"ingest","ratings":[[1,2,3.0,0]],"batch":77,"deadline_ms":100}"#)
            .unwrap();
        match parse_request(&v).unwrap() {
            Request::Ingest(i) => {
                assert_eq!(i.batch_key, Some(77));
                assert_eq!(i.deadline_ms, Some(100));
            }
            other => panic!("{other:?}"),
        }
        for line in [
            r#"{"verb":"query","group":[1],"deadline_ms":"soon"}"#,
            r#"{"verb":"ingest","ratings":[[1,2,3.0,0]],"batch":-1}"#,
        ] {
            let v = parse(line).unwrap();
            assert!(parse_request(&v).is_err(), "{line}");
        }
    }

    #[test]
    fn degraded_queries_carry_staleness_and_healthy_ones_do_not() {
        use greca_core::{AccessStats, StopReason, TopKResult};
        let result = TopKResult {
            items: Vec::new(),
            stats: AccessStats {
                sa: 0,
                ra: 0,
                total_entries: 0,
            },
            sweeps: 0,
            stop_reason: StopReason::Exhausted,
        };
        let healthy = parse(&query_response(&result, 3, "miss", None, &None, None)).unwrap();
        assert!(healthy.get("degraded").is_none());
        assert!(healthy.get("staleness_ms").is_none());
        let degraded = parse(&query_response(
            &result,
            3,
            "hit",
            Some(1234),
            &None,
            Some(99),
        ))
        .unwrap();
        assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(
            degraded.get("staleness_ms").and_then(Json::as_u64),
            Some(1234)
        );
        assert_eq!(degraded.get("epoch").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn consensus_specs_cover_the_paper_set() {
        assert_eq!(
            parse_consensus("ap"),
            Some(ConsensusFunction::average_preference())
        );
        assert_eq!(
            parse_consensus("mo"),
            Some(ConsensusFunction::least_misery())
        );
        assert_eq!(
            parse_consensus("vd:0.5"),
            Some(ConsensusFunction::variance_disagreement(0.5))
        );
        assert_eq!(parse_consensus("pd"), None);
        assert_eq!(parse_consensus("pd:1.5"), None);
        assert_eq!(parse_consensus("xx:0.5"), None);
    }

    #[test]
    fn parses_subscribe_and_unsubscribe() {
        let v = parse(r#"{"verb":"subscribe","group":[2,1],"k":3,"id":"s1"}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Subscribe(q) => {
                assert_eq!(q.group, vec![UserId(2), UserId(1)]);
                assert_eq!(q.k, Some(3));
                assert_eq!(q.id, Some(Json::str("s1")));
            }
            other => panic!("{other:?}"),
        }
        let v = parse(r#"{"verb":"unsubscribe","sub":7}"#).unwrap();
        assert_eq!(
            parse_request(&v).unwrap(),
            Request::Unsubscribe { sub: 7, id: None }
        );
        let v = parse(r#"{"verb":"unsubscribe"}"#).unwrap();
        assert!(parse_request(&v).unwrap_err().detail.contains("sub"));
    }

    #[test]
    fn push_frames_lead_with_the_push_key() {
        use greca_core::{AccessStats, StopReason, TopKResult};
        let result = TopKResult {
            items: Vec::new(),
            stats: AccessStats {
                sa: 1,
                ra: 2,
                total_entries: 3,
            },
            sweeps: 4,
            stop_reason: StopReason::Exhausted,
        };
        let frame = push_frame(9, &result, 12, &Some(Json::str("tag")), Some(41));
        assert!(frame.starts_with(r#"{"push":"delta""#), "{frame}");
        let v = parse(&frame).unwrap();
        assert_eq!(v.get("sub").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("tag"));
        assert!(v.get("ok").is_none(), "push frames are not responses");
        let sub = subscribe_response(9, &result, 12, "miss", &None, None);
        let v = parse(&sub).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("sub").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn error_responses_echo_verb_and_id() {
        let line = error_response(
            "query",
            "overloaded",
            "queue full",
            &Some(Json::num(9u32)),
            Some(7),
        );
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("trace").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn parses_client_trace_ids_and_echoes_them_in_responses() {
        use greca_core::{AccessStats, StopReason, TopKResult};
        let v = parse(r#"{"verb":"query","group":[1],"trace":12345}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Query(q) => assert_eq!(q.trace, Some(12345)),
            other => panic!("{other:?}"),
        }
        let v = parse(r#"{"verb":"ingest","ratings":[[1,2,3.0,0]],"trace":88}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Ingest(i) => assert_eq!(i.trace, Some(88)),
            other => panic!("{other:?}"),
        }
        // A non-integer trace id is a typed bad_request, not silence.
        let v = parse(r#"{"verb":"query","group":[1],"trace":"abc"}"#).unwrap();
        assert!(parse_request(&v).unwrap_err().detail.contains("trace"));
        let result = TopKResult {
            items: Vec::new(),
            stats: AccessStats {
                sa: 0,
                ra: 0,
                total_entries: 0,
            },
            sweeps: 0,
            stop_reason: StopReason::Exhausted,
        };
        let line = query_response(&result, 1, "miss", None, &None, Some(12345));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("trace").and_then(Json::as_u64), Some(12345));
        // The largest wire-representable id round-trips exactly.
        let line = query_response(&result, 1, "miss", None, &None, Some(MAX_WIRE_TRACE));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("trace").and_then(Json::as_u64), Some(MAX_WIRE_TRACE));
    }

    #[test]
    fn parses_trace_and_metrics_verbs() {
        let v = parse(r#"{"verb":"trace"}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Trace(t) => {
                assert_eq!(
                    (t.trace, t.kind, t.min_us, t.slow, t.limit),
                    (None, None, None, false, None)
                );
            }
            other => panic!("{other:?}"),
        }
        let v = parse(
            r#"{"verb":"trace","trace":42,"kind":"query","min_us":500,"slow":true,"limit":10,"id":"t1"}"#,
        )
        .unwrap();
        match parse_request(&v).unwrap() {
            Request::Trace(t) => {
                assert_eq!(t.trace, Some(42));
                assert_eq!(t.kind, Some(SpanKind::Query));
                assert_eq!(t.min_us, Some(500));
                assert!(t.slow);
                assert_eq!(t.limit, Some(10));
                assert_eq!(t.id, Some(Json::str("t1")));
            }
            other => panic!("{other:?}"),
        }
        for line in [
            r#"{"verb":"trace","kind":"frobnicate"}"#,
            r#"{"verb":"trace","slow":1}"#,
        ] {
            let v = parse(line).unwrap();
            assert!(parse_request(&v).is_err(), "{line}");
        }
        let v = parse(r#"{"verb":"metrics","id":7}"#).unwrap();
        assert_eq!(
            parse_request(&v).unwrap(),
            Request::Metrics {
                id: Some(Json::num(7u32))
            }
        );
    }

    #[test]
    fn span_records_serialize_with_phase_attribution() {
        let mut record = SpanRecord {
            trace: 42,
            span: 7,
            kind: SpanKind::Query,
            ok: true,
            cache: greca_core::CacheNote::Miss,
            epoch: 3,
            sa: 100,
            ra: 20,
            total_ns: 5_000_000,
            unix_ms: 1_700_000_000_000,
            phase_ns: [0; greca_core::NUM_PHASES],
        };
        record.phase_ns[Phase::Kernel as usize] = 3_000_000;
        record.phase_ns[Phase::Serialize as usize] = 250_000;
        let v = span_json(&record);
        assert_eq!(v.get("trace").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(v.get("sa").and_then(Json::as_u64), Some(100));
        let phases = v.get("phases").expect("phases object");
        assert_eq!(phases.get("kernel_us").and_then(Json::as_u64), Some(3000));
        assert_eq!(phases.get("serialize_us").and_then(Json::as_u64), Some(250));
        assert!(
            phases.get("admit_us").is_none(),
            "zero phases are omitted: {phases:?}"
        );
        let line = trace_response(&[record], false, &Some(Json::str("t")));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("trace"));
        assert_eq!(v.get("source").and_then(Json::as_str), Some("recorder"));
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        let line = trace_response(&[], true, &None);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("source").and_then(Json::as_str), Some("slow_log"));
    }

    #[test]
    fn metrics_responses_carry_the_exposition_body() {
        let line = metrics_response("greca_requests_total 3\n", &Some(Json::str("m1")));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            v.get("content_type").and_then(Json::as_str),
            Some("text/plain; version=0.0.4")
        );
        assert_eq!(
            v.get("body").and_then(Json::as_str),
            Some("greca_requests_total 3\n")
        );
        assert_eq!(v.get("id").and_then(Json::as_str), Some("m1"));
    }
}
