//! Admission control: bounded per-verb queues with immediate load
//! shedding and graceful drain.
//!
//! The serving discipline the ISSUE's overload criterion asks for is
//! *bounded latency, not bounded refusal*: when demand exceeds
//! capacity, a full queue answers `overloaded` **now** (the HTTP-429
//! analogue) instead of queueing unboundedly and answering everyone
//! late. Each verb gets its own queue so a burst of slow queries can
//! never starve ingestion (or vice versa): capacity is the product of
//! queue depth × worker count per verb, set in
//! [`ServeConfig`](crate::ServeConfig).
//!
//! The scheduler is deliberately generic — a job is any `FnOnce()` —
//! so its admission/drain semantics are testable without a socket or
//! an engine in sight (see the unit tests below). The server submits
//! closures that execute the request and fill a [`ResponseSlot`] the
//! connection thread is waiting on; workers are plain scoped threads
//! running [`VerbQueue::worker_loop`].
//!
//! Drain protocol ([`VerbQueue::drain`]): new submissions are refused
//! with [`Submission::Draining`], every job already accepted still
//! runs to completion, and workers exit once the queue is empty — so
//! a graceful shutdown never drops an accepted request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A unit of deferred work (the server's: "execute this request and
/// fill its response slot").
pub type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// What [`VerbQueue::submit`] did with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Enqueued; a worker will run it.
    Accepted,
    /// Queue full — the job was **not** enqueued (shed it).
    Overloaded,
    /// The queue is draining for shutdown — not enqueued.
    Draining,
}

struct QueueState<'env> {
    jobs: VecDeque<Job<'env>>,
    draining: bool,
}

/// One verb's bounded job queue. See the module docs.
pub struct VerbQueue<'env> {
    state: Mutex<QueueState<'env>>,
    /// Wakes workers (new job or drain).
    work_cv: Condvar,
    capacity: usize,
}

impl<'env> VerbQueue<'env> {
    /// An empty queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        VerbQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            work_cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<'env>> {
        // Jobs never run under this lock, so a poisoned state is
        // structurally sound; recover rather than wedging the server.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Admit `job`, or refuse immediately — never blocks the caller.
    pub fn submit(&self, job: Job<'env>) -> Submission {
        let mut state = self.lock();
        if state.draining {
            return Submission::Draining;
        }
        if state.jobs.len() >= self.capacity {
            return Submission::Overloaded;
        }
        state.jobs.push_back(job);
        drop(state);
        self.work_cv.notify_one();
        Submission::Accepted
    }

    /// Pending (accepted, not yet started) jobs.
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Refuse new submissions and wake every worker; accepted jobs
    /// still run. Idempotent.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.work_cv.notify_all();
    }

    /// Run jobs until the queue drains: the body of one worker thread.
    /// Returns the number of jobs this worker executed.
    ///
    /// A panicking job is caught and swallowed here: the job's own
    /// unwind guards answer its client, and the worker lives on to
    /// execute the rest of the queue — otherwise a panicking request
    /// would deplete the pool one worker at a time until accepted jobs
    /// wait forever.
    pub fn worker_loop(&self) -> usize {
        let mut executed = 0;
        loop {
            let job = {
                let mut state = self.lock();
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.draining {
                        return executed;
                    }
                    state = self
                        .work_cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            executed += 1;
        }
    }
}

/// A one-shot rendezvous between the connection thread (waiting for a
/// response line) and the worker that produces it.
#[derive(Default)]
pub struct ResponseSlot {
    value: Mutex<Option<String>>,
    cv: Condvar,
}

impl ResponseSlot {
    /// A fresh, empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver the response and wake the waiter. First fill wins.
    pub fn fill(&self, response: String) {
        let mut value = self
            .value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if value.is_none() {
            *value = Some(response);
            self.cv.notify_all();
        }
    }

    /// Block until a response is delivered.
    pub fn wait(&self) -> String {
        let mut value = self
            .value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(v) = value.take() {
                return v;
            }
            value = self
                .cv
                .wait(value)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let queue = VerbQueue::new(2);
        // No workers: submissions pile up to capacity, then shed.
        assert_eq!(queue.submit(Box::new(|| {})), Submission::Accepted);
        assert_eq!(queue.submit(Box::new(|| {})), Submission::Accepted);
        assert_eq!(queue.depth(), 2);
        let t0 = std::time::Instant::now();
        assert_eq!(queue.submit(Box::new(|| {})), Submission::Overloaded);
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(50),
            "shedding must be immediate, not queued"
        );
    }

    #[test]
    fn workers_drain_accepted_jobs_then_exit() {
        let queue = Arc::new(VerbQueue::new(16));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            assert_eq!(
                queue.submit(Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                })),
                Submission::Accepted
            );
        }
        let executed: usize = std::thread::scope(|s| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    s.spawn(move || queue.worker_loop())
                })
                .collect();
            queue.drain();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        assert_eq!(ran.load(Ordering::SeqCst), 10, "no accepted job dropped");
        assert_eq!(executed, 10);
        assert_eq!(queue.submit(Box::new(|| {})), Submission::Draining);
    }

    #[test]
    fn busy_workers_plus_full_queue_is_the_shed_condition() {
        // 1 worker wedged on a slow job + capacity-1 queue: the next
        // submission sheds while the accepted one still completes.
        let queue = Arc::new(VerbQueue::new(1));
        let gate = Arc::new(Barrier::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let worker = {
                let queue = Arc::clone(&queue);
                s.spawn(move || queue.worker_loop())
            };
            let slow_gate = Arc::clone(&gate);
            let slow_done = Arc::clone(&done);
            queue.submit(Box::new(move || {
                slow_gate.wait(); // worker is now occupied
                std::thread::sleep(std::time::Duration::from_millis(30));
                slow_done.fetch_add(1, Ordering::SeqCst);
            }));
            gate.wait();
            let queued_done = Arc::clone(&done);
            assert_eq!(
                queue.submit(Box::new(move || {
                    queued_done.fetch_add(1, Ordering::SeqCst);
                })),
                Submission::Accepted,
                "one slot in the queue"
            );
            assert_eq!(queue.submit(Box::new(|| {})), Submission::Overloaded);
            queue.drain();
            worker.join().unwrap();
        });
        assert_eq!(done.load(Ordering::SeqCst), 2, "accepted jobs both ran");
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let queue = Arc::new(VerbQueue::new(8));
        let ran = Arc::new(AtomicUsize::new(0));
        assert_eq!(
            queue.submit(Box::new(|| panic!("request bug"))),
            Submission::Accepted
        );
        let after = Arc::clone(&ran);
        assert_eq!(
            queue.submit(Box::new(move || {
                after.fetch_add(1, Ordering::SeqCst);
            })),
            Submission::Accepted
        );
        let executed = std::thread::scope(|s| {
            let worker = {
                let queue = Arc::clone(&queue);
                s.spawn(move || queue.worker_loop())
            };
            queue.drain();
            worker.join().expect("worker thread itself must not die")
        });
        assert_eq!(executed, 2, "both jobs ran on the same worker");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            1,
            "the job behind the panicking one still executed"
        );
    }

    #[test]
    fn response_slot_rendezvous() {
        let slot = Arc::new(ResponseSlot::new());
        let filler = Arc::clone(&slot);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                filler.fill("pong".to_string());
                filler.fill("ignored second fill".to_string());
            });
            assert_eq!(slot.wait(), "pong");
        });
    }
}
