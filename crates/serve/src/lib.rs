//! # greca-serve
//!
//! The production serving front-end over
//! [`LiveEngine`](greca_core::LiveEngine): a multi-threaded TCP server
//! speaking a line-delimited JSON protocol, with the serving
//! discipline a real deployment needs and the algorithms alone don't
//! provide —
//!
//! * **a network surface** ([`server`]) — `query` / `subscribe` /
//!   `unsubscribe` / `ingest` / `stats` / `health` verbs over
//!   `std::net::TcpListener`, one JSON value per line ([`protocol`],
//!   with its own `std`-only JSON in [`json`]: the vendored serde is a
//!   stub);
//! * **result reuse** ([`cache`]) — an epoch-aware cache keyed by the
//!   engine's canonical [`QueryKey`](greca_core::QueryKey), guarded
//!   per-lookup by the pinned epoch, with single-flight stampede
//!   protection. Publishes invalidate it *selectively* through
//!   [`LiveEngine::on_publish_delta`](greca_core::LiveEngine::on_publish_delta):
//!   entries whose
//!   [`QueryFootprint`](greca_core::QueryFootprint) is disjoint from
//!   the publish's dirty set survive the epoch swap bit-identically;
//! * **continuous queries** ([`server`]) — `subscribe` registers a
//!   group query; a pump thread re-runs it after every publish whose
//!   dirty set intersects its footprint and pushes a delta frame when
//!   the top-k actually changed;
//! * **backpressure** ([`admission`]) — bounded per-verb queues that
//!   shed with a typed `overloaded` reply the moment demand exceeds
//!   capacity, keeping tail latency bounded instead of queueing
//!   unboundedly, plus graceful drain on shutdown;
//! * **observability** ([`metrics`]) — per-verb latency histograms,
//!   shed/error counters, cache hit rates, epoch lag and the
//!   substrate's
//!   [`memory_footprint`](greca_core::Substrate::memory_footprint),
//!   all through the `stats` verb.
//!
//! The load harness (`cargo run -p greca-bench --release --bin
//! serve_load`) drives a mixed query/ingest workload against this
//! stack and emits `BENCH_serve.json`, gating on served results being
//! bit-identical to direct engine execution.
//!
//! ## Quickstart
//!
//! Everything is borrowed, so server and clients compose with scoped
//! threads (see `examples/serve_demo.rs` for the full version):
//!
//! ```ignore
//! let live = LiveEngine::new(&population, LiveModel::Raw, &matrix, &items)?;
//! let server = GrecaServer::bind(&live, ServeConfig::default())?;
//! let handle = server.handle();
//! std::thread::scope(|s| {
//!     s.spawn(|| server.run());
//!     let mut client = Client::connect(handle.addr())?;
//!     let reply = client.query(&[3, 17, 42], None, Some(5))?;
//!     handle.shutdown();
//! });
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use admission::{ResponseSlot, Submission, VerbQueue};
pub use cache::{CacheError, CacheOutcome, CacheStats, ResultCache};
pub use client::{Client, ClientConfig, ClientError};
pub use json::Json;
pub use metrics::{Histogram, Metrics, VerbMetrics};
pub use protocol::{IngestRequest, QueryRequest, Request, TraceRequest, MAX_WIRE_TRACE};
pub use server::{GrecaServer, ServerHandle};

use greca_core::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration. The defaults suit tests and examples; a
/// production deployment tunes queue depths and worker counts to its
/// latency budget (capacity per verb ≈ queue depth + workers).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing `query` jobs.
    pub query_workers: usize,
    /// Worker threads executing `ingest` jobs (publishes serialize on
    /// the engine's staging store, so more than 1 rarely helps).
    pub ingest_workers: usize,
    /// Pending `query` jobs admitted before shedding.
    pub query_queue: usize,
    /// Pending `ingest` jobs admitted before shedding.
    pub ingest_queue: usize,
    /// Result-cache entries before a wholesale flush.
    pub cache_capacity: usize,
    /// Poll granularity for connection reads — bounds how long a quiet
    /// connection takes to notice a shutdown.
    pub read_timeout: Duration,
    /// Longest request line accepted, in bytes (an ingest batch of
    /// ~100k ratings fits in the default 8 MiB); an oversized line gets
    /// a `bad_request` and a disconnect, never unbounded buffering.
    pub max_line_bytes: usize,
    /// Label of the world this server fronts (a worldgen tier name such
    /// as `"10k"`, or a dataset name). Reported verbatim by the `stats`
    /// verb so operators can tell capacity numbers from different tiers
    /// apart; purely informational.
    pub world_label: String,
    /// Whether publishes invalidate the result cache selectively —
    /// keeping entries whose footprint is disjoint from the publish's
    /// dirty set — or wholesale (`false`, the pre-dirty-set behavior,
    /// kept as a benchmark baseline). Selective survival is
    /// bit-identical to recomputing: a surviving entry's result cannot
    /// depend on anything the publish changed.
    pub selective_invalidation: bool,
    /// Deterministic fault-injection plan consulted before every
    /// socket read/write and queued-work execution (the engine's WAL
    /// consults its own copy). `None` — the default in production —
    /// injects nothing and costs one branch per operation. The default
    /// is taken from the `GRECA_FAULT_PLAN` environment variable when
    /// set (see [`FaultPlan::from_env`]), which is how CI re-runs the
    /// ordinary serve test suites under a background fault schedule.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Slow-query threshold in milliseconds: any traced span slower
    /// than this is copied into the flight recorder's slow-query log
    /// at seal time (dumped by the `trace` verb with `"slow": true`).
    /// Applied to the process-wide recorder at
    /// [`GrecaServer::bind`](server::GrecaServer::bind).
    pub slow_query_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            query_workers: parallelism.clamp(2, 8),
            ingest_workers: 1,
            query_queue: 64,
            ingest_queue: 256,
            cache_capacity: 4096,
            read_timeout: Duration::from_millis(25),
            max_line_bytes: 8 << 20,
            world_label: "unlabeled".to_string(),
            selective_invalidation: true,
            fault_plan: FaultPlan::from_env().map(Arc::new),
            slow_query_ms: 250,
        }
    }
}
