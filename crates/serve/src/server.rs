//! The TCP front: accept loop, per-connection readers, verb dispatch.
//!
//! [`GrecaServer::bind`] attaches to a [`LiveEngine`] and a listening
//! socket; [`GrecaServer::run`] blocks, serving until a
//! [`ServerHandle::shutdown`]. Inside `run` everything is scoped
//! threads over borrowed state — no `'static` gymnastics, no runtime:
//!
//! ```text
//! accept loop ──► connection threads ──► per-verb bounded queues ──► workers
//!      │                 │                      │ (full → overloaded)     │
//!      │                 └── stats/health answered inline                 │
//!      └── shutdown: stop accepting, drain queues, finish in-flight ──────┘
//! ```
//!
//! * `query` requests first probe the epoch-scoped [`ResultCache`]
//!   inline — a resident entry costs no kernel work, so hits are
//!   answered on the connection thread without queueing; only cache
//!   misses pay admission (one kernel run, coalesced across identical
//!   concurrent queries).
//! * `ingest` jobs stage and publish through the engine; the
//!   publish-delta hook registered at bind time invalidates the cache
//!   *selectively* (entries whose footprint is disjoint from the dirty
//!   set survive the swap) and queues the delta for the subscription
//!   pump before the ingest response is even written.
//! * `subscribe` registers a continuous query: one baseline kernel run
//!   through the query queue, then the subscription pump re-runs it
//!   after every publish whose dirty set intersects its footprint and
//!   pushes a frame when the top-k actually changed (see
//!   [`protocol`]'s push-frame docs). `unsubscribe` is answered
//!   inline.
//! * `stats`/`health` never queue: they read atomics and one pin, so
//!   they stay responsive under full overload — exactly when an
//!   operator needs them.

use crate::admission::{ResponseSlot, Submission, VerbQueue};
use crate::cache::{CacheError, CacheOutcome, ResultCache};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{self, IngestRequest, QueryRequest, Request, TraceRequest};
use crate::ServeConfig;
use greca_core::obs::{self, CacheNote, Phase, SpanKind, TraceFilter};
use greca_core::{
    FaultCtx, FaultPlan, IoFault, LiveEngine, PublishDelta, QueryError, QueryFootprint,
    SharedMemberState, TopKResult, LINEAGE_CAP,
};
use greca_dataset::Group;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover a poisoned guard: every mutex in this module protects
/// structurally-sound plain data (no invariants span the lock), so a
/// panicking peer must not wedge the serving path.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// One registered continuous query.
struct Subscription {
    /// Server-assigned id (the `sub` field on the wire).
    id: u64,
    /// The parsed query this subscription re-runs (its `id` field is
    /// the client tag echoed in every push frame).
    request: QueryRequest,
    /// The owning connection's write half, shared with its response
    /// writer so pushed frames and responses interleave as whole lines.
    writer: Arc<Mutex<TcpStream>>,
    /// Mutable state, guarded together: the footprint the pump
    /// intersects against (conservative at registration, precise once
    /// the baseline runs) and the last result delivered, with its
    /// epoch — pushes happen only for strictly newer epochs, which is
    /// what makes stale pushes structurally impossible.
    state: Mutex<SubState>,
}

struct SubState {
    footprint: QueryFootprint,
    epoch: u64,
    result: Option<Arc<TopKResult>>,
}

/// Publish deltas queued by the hook for the subscription pump, plus
/// the drain flag the pump exits on.
struct PendingDeltas {
    queue: VecDeque<PublishDelta>,
    draining: bool,
}

/// Deltas held for the pump before coalescing kicks in. The pump
/// usually keeps the queue near-empty; the cap only matters when
/// publishes outpace it (or nothing is pumping), where merging into the
/// newest entry bounds memory at the cost of coarser coalescing.
const PENDING_DELTA_CAP: usize = 64;

/// State shared between the server, its handle, and the publish hook.
struct Shared {
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: ResultCache,
    /// Whether publishes invalidate the cache selectively (footprint
    /// survival) or wholesale (the pre-dirty-set behavior, kept as a
    /// benchmark baseline) — [`ServeConfig::selective_invalidation`].
    selective: bool,
    /// The batch planner's member-state arena for the current epoch:
    /// concurrent cache-miss queries resolve each member's preference
    /// list once per epoch instead of once per query. Swapped (not
    /// mutated) on publish, so in-flight queries keep the arena they
    /// started with — same discipline as the epoch-pinned engine.
    plan_state: Mutex<(u64, Arc<SharedMemberState>)>,
    /// Live subscriptions by id.
    subs: Mutex<HashMap<u64, Arc<Subscription>>>,
    /// Next subscription id.
    next_sub: AtomicU64,
    /// Publish deltas awaiting the subscription pump.
    pending: Mutex<PendingDeltas>,
    /// Wakes the pump for new deltas and for drain.
    pending_cv: Condvar,
    /// Compact wire form of the last publish's dirty set (when small
    /// enough to be worth shipping) — surfaced by `stats` so operators
    /// and downstream caches can see what the last swap invalidated.
    last_dirty: Mutex<Option<String>>,
    /// Per-epoch cache-survival lineage: `(epoch, kept, dropped)` for
    /// the newest [`LINEAGE_CAP`] publishes, recorded by the bind-time
    /// hook and joined with the engine's epoch lineage by `stats`.
    survival_log: Mutex<VecDeque<(u64, u64, u64)>>,
    /// Deterministic fault-injection plan for socket and worker I/O
    /// ([`crate::ServeConfig::fault_plan`]); `None` injects nothing.
    fault: Option<Arc<FaultPlan>>,
    started: Instant,
}

impl Shared {
    /// The member-state arena scoped to `epoch`, freshly reset if the
    /// last one belonged to an older epoch.
    fn plan_state_for(&self, epoch: u64) -> Arc<SharedMemberState> {
        let mut slot = self.plan_state.lock().unwrap_or_else(|p| {
            self.plan_state.clear_poison();
            p.into_inner()
        });
        if slot.0 != epoch {
            *slot = (epoch, Arc::new(SharedMemberState::new()));
        }
        Arc::clone(&slot.1)
    }
}

/// A clonable remote control for a running [`GrecaServer`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, refuse new work,
    /// finish everything already admitted. [`GrecaServer::run`] returns
    /// once in-flight connections close (idle ones are dropped at the
    /// next read-timeout tick). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The serving front-end over one [`LiveEngine`]. See the module docs.
pub struct GrecaServer<'live, 'pop> {
    live: &'live LiveEngine<'pop>,
    listener: TcpListener,
    config: ServeConfig,
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl<'live, 'pop> GrecaServer<'live, 'pop> {
    /// Bind to `config.addr` (`127.0.0.1:0` by default — an ephemeral
    /// port, reported by [`GrecaServer::addr`]) and register the cache
    /// invalidation hook on `live`.
    pub fn bind(live: &'live LiveEngine<'pop>, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&*config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: ResultCache::new(config.cache_capacity),
            selective: config.selective_invalidation,
            plan_state: Mutex::new((live.epoch(), Arc::new(SharedMemberState::new()))),
            subs: Mutex::new(HashMap::new()),
            next_sub: AtomicU64::new(1),
            pending: Mutex::new(PendingDeltas {
                queue: VecDeque::new(),
                draining: false,
            }),
            pending_cv: Condvar::new(),
            last_dirty: Mutex::new(None),
            survival_log: Mutex::new(VecDeque::new()),
            fault: config.fault_plan.clone(),
            started: Instant::now(),
        });
        // Arm the slow-query log: any span slower than the configured
        // threshold is copied into the recorder's slow log at seal time.
        obs::recorder().set_slow_threshold(Duration::from_millis(config.slow_query_ms));
        // The epoch-handoff integration: one hook, registered once,
        // applies the publish's dirty set to the cache (selective
        // survival — or wholesale when configured as the baseline) and
        // queues the delta for the subscription pump. The hook holds
        // only the shared state, so it stays valid (and harmless) after
        // the server itself is gone.
        shared.cache.invalidate_to(live.epoch());
        let hook_shared = Arc::clone(&shared);
        live.on_publish_delta(move |delta| {
            // The hook runs on the publishing thread, inside the
            // publish's span scope — cache-survival work is attributed
            // to it as the `survival` phase, and the per-epoch
            // kept/dropped delta is folded into the survival log.
            let survival = obs::phase(Phase::Survival);
            let kept_before = hook_shared.cache.stats.survivors.load(Ordering::Relaxed);
            let dropped_before = hook_shared.cache.stats.dropped.load(Ordering::Relaxed);
            if hook_shared.selective {
                hook_shared.cache.apply_publish(delta);
            } else {
                hook_shared.cache.invalidate_to(delta.epoch);
            }
            let kept = hook_shared.cache.stats.survivors.load(Ordering::Relaxed) - kept_before;
            let dropped = hook_shared.cache.stats.dropped.load(Ordering::Relaxed) - dropped_before;
            drop(survival);
            {
                let mut log = lock_ok(&hook_shared.survival_log);
                if log.len() >= LINEAGE_CAP {
                    log.pop_front();
                }
                log.push_back((delta.epoch, kept, dropped));
            }
            // Retire the old epoch's member arena eagerly; queries that
            // pinned the previous epoch still hold their own Arc.
            hook_shared.plan_state_for(delta.epoch);
            hook_shared
                .metrics
                .publishes
                .fetch_add(1, Ordering::Relaxed);
            *lock_ok(&hook_shared.last_dirty) = (delta.dirty.num_users() <= 32
                && delta.dirty.num_pairs() <= 32
                && !delta.full_rebuild)
                .then(|| delta.dirty.to_wire());
            // Hand the delta to the subscription pump. Keep the hook
            // cheap: subscriptions re-run on the pump thread, never
            // here on the ingestion path.
            let mut pending = lock_ok(&hook_shared.pending);
            if pending.queue.len() >= PENDING_DELTA_CAP {
                // Bound memory when nothing drains the queue: fold into
                // the newest entry (union of dirty sets, max epoch).
                let mut merged = pending.queue.pop_back().expect("cap > 0");
                let mut dirty = (*merged.dirty).clone();
                dirty.merge(&delta.dirty);
                merged = PublishDelta {
                    epoch: merged.epoch.max(delta.epoch),
                    dirty: Arc::new(dirty),
                    periods: merge_periods(&merged.periods, &delta.periods),
                    full_rebuild: merged.full_rebuild || delta.full_rebuild,
                };
                pending.queue.push_back(merged);
            } else {
                pending.queue.push_back(delta.clone());
            }
            drop(pending);
            hook_shared.pending_cv.notify_all();
        });
        Ok(GrecaServer {
            live,
            listener,
            config,
            shared,
            addr,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server (clonable, thread-safe).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// The server's result cache (observability for tests/benches).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Consult the fault plan (when configured) before one socket or
    /// worker operation. `Delay` faults are slept out here; anything
    /// else is returned for the call site to apply.
    fn inject(&self, ctx: FaultCtx) -> Option<IoFault> {
        let plan = self.shared.fault.as_deref()?;
        FaultPlan::maybe_sleep(plan.decide(ctx))
    }

    /// Write one line on a connection's shared write half, consulting
    /// the fault plan's socket-write channel first. `false` means the
    /// peer is (treated as) gone — an injected drop behaves exactly
    /// like a real dead socket.
    fn write_line(&self, writer: &Arc<Mutex<TcpStream>>, line: &str) -> bool {
        if self.inject(FaultCtx::SockWrite).is_some() {
            return false;
        }
        writeln!(lock_ok(writer), "{line}").is_ok()
    }

    /// Serve until [`ServerHandle::shutdown`]. Blocks the calling
    /// thread; spawn it in a scope alongside your clients:
    ///
    /// ```ignore
    /// std::thread::scope(|s| {
    ///     s.spawn(|| server.run());
    ///     // … clients talk to server.addr() …
    ///     handle.shutdown();
    /// });
    /// ```
    pub fn run(&self) {
        let queues = Queues {
            query: VerbQueue::new(self.config.query_queue),
            ingest: VerbQueue::new(self.config.ingest_queue),
        };
        std::thread::scope(|scope| {
            for _ in 0..self.config.query_workers.max(1) {
                scope.spawn(|| queues.query.worker_loop());
            }
            for _ in 0..self.config.ingest_workers.max(1) {
                scope.spawn(|| queues.ingest.worker_loop());
            }
            scope.spawn(|| self.subscription_pump());
            for stream in self.listener.incoming() {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.shared
                    .metrics
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let queues = &queues;
                scope.spawn(move || self.serve_connection(stream, queues));
            }
            // Graceful drain: everything accepted still executes; new
            // submissions get `shutting_down`. Ingest jobs drained here
            // may still publish, so the pump is told to drain only
            // *after* the queues are empty — it flushes every pending
            // subscription notification before exiting.
            queues.query.drain();
            queues.ingest.drain();
            lock_ok(&self.shared.pending).draining = true;
            self.shared.pending_cv.notify_all();
        });
        // The pump has exited; drop the subscriptions (closing their
        // write halves) so subscribers see EOF rather than a silent
        // socket.
        lock_ok(&self.shared.subs).clear();
    }

    /// The subscription pump: waits for publish deltas queued by the
    /// bind-time hook, coalesces bursts, and re-runs every affected
    /// subscription at the current epoch — pushing a frame when (and
    /// only when) its top-k changed. Runs on one dedicated thread
    /// inside [`GrecaServer::run`]'s scope; exits after flushing the
    /// queue once drain is signalled.
    fn subscription_pump(&self) {
        loop {
            let next = {
                let mut pending = lock_ok(&self.shared.pending);
                loop {
                    if let Some(delta) = pending.queue.pop_front() {
                        break Some(delta);
                    }
                    if pending.draining {
                        break None;
                    }
                    pending = self
                        .shared
                        .pending_cv
                        .wait(pending)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(mut delta) = next else { return };
            // Coalesce the rest of a burst into one pass: subscriptions
            // are re-run at the *current* epoch anyway, so N queued
            // deltas cost one union + one sweep, not N sweeps.
            {
                let mut pending = lock_ok(&self.shared.pending);
                while let Some(more) = pending.queue.pop_front() {
                    let mut dirty = (*delta.dirty).clone();
                    dirty.merge(&more.dirty);
                    delta = PublishDelta {
                        epoch: delta.epoch.max(more.epoch),
                        dirty: Arc::new(dirty),
                        periods: merge_periods(&delta.periods, &more.periods),
                        full_rebuild: delta.full_rebuild || more.full_rebuild,
                    };
                }
            }
            self.process_delta(&delta);
        }
    }

    /// Re-run every subscription the delta affects and push changed
    /// results. See [`GrecaServer::subscription_pump`].
    fn process_delta(&self, delta: &PublishDelta) {
        let subs: Vec<Arc<Subscription>> = lock_ok(&self.shared.subs).values().cloned().collect();
        if subs.is_empty() {
            return;
        }
        // One span per coalesced pump pass: re-run kernel costs (and
        // the pushes they produce) attribute to the pump, not to any
        // client request.
        let pump_span = obs::span(
            obs::next_trace_id() & protocol::MAX_WIRE_TRACE,
            SpanKind::Pump,
        );
        let pump_timer = obs::phase(Phase::Pump);
        let pin = self.live.pin();
        let epoch = pin.epoch();
        let engine = pin.engine();
        let plan_state = self.shared.plan_state_for(epoch);
        for sub in subs {
            let affected = {
                let st = lock_ok(&sub.state);
                st.epoch < epoch && delta.affects(&st.footprint)
            };
            if !affected {
                continue;
            }
            self.shared.metrics.sub_runs.fetch_add(1, Ordering::Relaxed);
            let Ok(group) = Group::new(sub.request.group.clone()) else {
                continue; // validated at subscribe; unreachable
            };
            let query = build_query(&engine, &group, &sub.request);
            let key = query.cache_key();
            let (result, _) = self
                .shared
                .cache
                .get_or_compute(epoch, key, || query.run_shared(&plan_state));
            let Ok(top) = result else { continue };
            let frame = {
                let mut st = lock_ok(&sub.state);
                if epoch <= st.epoch {
                    // A newer run already recorded its result; pushing
                    // ours now would deliver a stale epoch.
                    None
                } else {
                    let changed = st.result.as_ref().is_none_or(|prev| **prev != *top);
                    st.epoch = epoch;
                    st.result = Some(Arc::clone(&top));
                    changed.then(|| {
                        protocol::push_frame(
                            sub.id,
                            &top,
                            epoch,
                            &sub.request.id,
                            sub.request.trace,
                        )
                    })
                }
            };
            if let Some(frame) = frame {
                let wrote = self.write_line(&sub.writer, &frame);
                if wrote {
                    self.shared.metrics.pushes.fetch_add(1, Ordering::Relaxed);
                } else {
                    // The subscriber is gone; retire the subscription
                    // so the pump never spins on a dead socket. The
                    // drop is counted separately from raw push errors:
                    // one tick per subscription actually unregistered.
                    self.shared
                        .metrics
                        .push_errors
                        .fetch_add(1, Ordering::Relaxed);
                    if lock_ok(&self.shared.subs).remove(&sub.id).is_some() {
                        self.shared
                            .metrics
                            .subscribers_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        drop(pump_timer);
        if pump_span.active() {
            obs::note_epoch(epoch);
            obs::note_ok(true);
        }
        drop(pump_span);
    }

    /// One connection: read request lines, write response lines, in
    /// order. Returns when the peer closes, on a fatal socket error, or
    /// at the first read-timeout tick after shutdown began.
    ///
    /// Input is read in buffered chunks with the line-size cap enforced
    /// per chunk, so a client streaming one endless unterminated line —
    /// at any speed — is answered with `bad_request` and disconnected
    /// at the cap instead of growing a buffer until OOM.
    ///
    /// The write half is shared (behind a mutex) with any subscriptions
    /// this connection registers, so pushed frames and responses
    /// interleave as whole lines. When the *peer* goes away the
    /// connection's subscriptions die with it; when the connection
    /// thread exits because the *server* is draining, they are left
    /// registered so the pump can flush final notifications before
    /// [`GrecaServer::run`] returns.
    fn serve_connection<'env>(&'env self, stream: TcpStream, queues: &Queues<'env>) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let writer = Arc::new(Mutex::new(stream));
        let mut conn_subs: Vec<u64> = Vec::new();
        let peer_gone = self.connection_loop(read_half, queues, &writer, &mut conn_subs);
        if peer_gone {
            let mut subs = lock_ok(&self.shared.subs);
            for id in conn_subs {
                subs.remove(&id);
            }
        }
    }

    /// The connection read/dispatch loop. Returns `true` when the peer
    /// is gone (EOF, fatal error, protocol cutoff) — its subscriptions
    /// should die — and `false` on server drain, where they outlive the
    /// connection thread just long enough for the pump to flush.
    fn connection_loop<'env>(
        &'env self,
        read_half: TcpStream,
        queues: &Queues<'env>,
        writer: &Arc<Mutex<TcpStream>>,
        conn_subs: &mut Vec<u64>,
    ) -> bool {
        let mut reader = BufReader::new(read_half);
        let mut acc: Vec<u8> = Vec::new();
        let cap = self.config.max_line_bytes.max(1024);
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            // An injected read fault behaves like the peer resetting
            // the connection: the loop exits and the connection's
            // subscriptions are retired, same as a real dead socket.
            if self.inject(FaultCtx::SockRead).is_some() {
                return true;
            }
            let (consumed, complete) = {
                let chunk = match reader.fill_buf() {
                    Ok([]) => return true, // EOF (a trailing partial line is not a request)
                    Ok(chunk) => chunk,
                    // Timeout tick: keep accumulated partial input,
                    // re-check the shutdown flag.
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => return true,
                };
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        acc.extend_from_slice(&chunk[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        acc.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            };
            reader.consume(consumed);
            if acc.len() > cap {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let response = protocol::error_response(
                    "?",
                    "bad_request",
                    &format!("request line exceeds the {cap}-byte limit"),
                    &None,
                    None,
                );
                self.write_line(writer, &response);
                return true; // the remainder of the oversized line is garbage
            }
            if !complete {
                continue;
            }
            let response = match std::str::from_utf8(&acc) {
                Ok(line) => self.dispatch(line.trim(), queues, writer, conn_subs),
                Err(_) => {
                    self.shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    protocol::error_response(
                        "?",
                        "bad_request",
                        "request line is not valid UTF-8",
                        &None,
                        None,
                    )
                }
            };
            acc.clear();
            if !self.write_line(writer, &response) {
                return true;
            }
        }
    }

    /// Parse one line and route it. Always produces exactly one
    /// response line.
    fn dispatch<'env>(
        &'env self,
        line: &str,
        queues: &Queues<'env>,
        writer: &Arc<Mutex<TcpStream>>,
        conn_subs: &mut Vec<u64>,
    ) -> String {
        if line.is_empty() {
            self.shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_response("?", "bad_request", "empty request line", &None, None);
        }
        let parsed = match crate::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_response(
                    "?",
                    "bad_request",
                    &format!("invalid JSON: {e}"),
                    &None,
                    None,
                );
            }
        };
        let request = match protocol::parse_request(&parsed) {
            Ok(r) => r,
            Err(bad) => {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_response("?", "bad_request", &bad.detail, &bad.id, None);
            }
        };
        match request {
            // Observability verbs answer inline — responsive even when
            // every queue is full.
            Request::Health => {
                let t0 = Instant::now();
                let response = self.handle_health();
                self.shared.metrics.health.served(t0.elapsed(), true);
                response
            }
            Request::Stats => {
                let t0 = Instant::now();
                let response = self.handle_stats(queues);
                self.shared.metrics.stats.served(t0.elapsed(), true);
                response
            }
            Request::Trace(t) => {
                let t0 = Instant::now();
                let response = self.handle_trace(&t);
                self.shared.metrics.stats.served(t0.elapsed(), true);
                response
            }
            Request::Metrics { id } => {
                let t0 = Instant::now();
                let body = crate::expo::render(&self.shared.metrics, &self.shared.cache.stats);
                let response = protocol::metrics_response(&body, &id);
                self.shared.metrics.stats.served(t0.elapsed(), true);
                response
            }
            Request::Query(q) => {
                // Fast path: a resident cache entry costs no kernel
                // work, so it is served inline — never queued, never
                // shed — exactly like the observability verbs.
                let t0 = Instant::now();
                let trace = resolve_trace(q.trace);
                if let Some(response) = self.try_cached_query(&q, trace) {
                    self.shared.metrics.query.served(t0.elapsed(), true);
                    return response;
                }
                self.submit(
                    &queues.query,
                    "query",
                    q.id.clone(),
                    q.deadline_ms,
                    trace,
                    move || self.handle_query(&q, trace, t0),
                )
            }
            Request::Ingest(i) => {
                let t0 = Instant::now();
                let trace = resolve_trace(i.trace);
                self.submit(
                    &queues.ingest,
                    "ingest",
                    i.id.clone(),
                    i.deadline_ms,
                    trace,
                    move || self.handle_ingest(&i, trace, t0),
                )
            }
            Request::Subscribe(q) => {
                // Assign the id and register *on the connection thread*,
                // before the baseline runs: the conservative footprint
                // makes the pump re-check this subscription for any
                // publish touching its members, so a swap racing the
                // baseline can never be missed — only re-verified.
                let t0 = Instant::now();
                let trace = resolve_trace(q.trace);
                let sub_id = self.shared.next_sub.fetch_add(1, Ordering::Relaxed);
                conn_subs.push(sub_id);
                let sub = Arc::new(Subscription {
                    id: sub_id,
                    request: q.clone(),
                    writer: Arc::clone(writer),
                    state: Mutex::new(SubState {
                        footprint: QueryFootprint::conservative(q.group.clone()),
                        epoch: 0,
                        result: None,
                    }),
                });
                lock_ok(&self.shared.subs).insert(sub_id, Arc::clone(&sub));
                let response = self.submit(
                    &queues.query,
                    "subscribe",
                    q.id.clone(),
                    q.deadline_ms,
                    trace,
                    move || self.handle_subscribe(&sub, trace, t0),
                );
                // A shed, drained, or failed baseline leaves no live
                // subscription (success lines always lead with the `ok`
                // key — the same invariant push-frame framing rests on).
                if !response.starts_with("{\"ok\":true") {
                    lock_ok(&self.shared.subs).remove(&sub_id);
                    conn_subs.retain(|&s| s != sub_id);
                }
                response
            }
            Request::Unsubscribe { sub, id } => {
                // Answered inline, like the observability verbs: it is
                // one map removal, and a subscriber drowning in pushes
                // must be able to stop them even under full overload.
                let t0 = Instant::now();
                let owned = conn_subs.contains(&sub);
                let removed = owned && lock_ok(&self.shared.subs).remove(&sub).is_some();
                if owned {
                    conn_subs.retain(|&s| s != sub);
                }
                self.shared.metrics.subscribe.served(t0.elapsed(), true);
                protocol::unsubscribe_response(sub, removed, &id)
            }
        }
    }

    /// Run a subscription's baseline query and arm its precise
    /// footprint. Returns `(response line, ok)`; on error the caller
    /// unregisters the subscription.
    fn handle_subscribe(
        &self,
        sub: &Subscription,
        trace: u64,
        admitted: Instant,
    ) -> (String, bool) {
        let span = obs::span(trace, SpanKind::Subscribe);
        if span.active() {
            obs::add_phase(Phase::Admit, admitted.elapsed());
        }
        let q = &sub.request;
        let group = match Group::new(q.group.clone()) {
            Ok(g) => g,
            Err(e) => {
                return (
                    protocol::error_response(
                        "subscribe",
                        "bad_request",
                        &e.to_string(),
                        &q.id,
                        Some(trace),
                    ),
                    false,
                )
            }
        };
        let pin = self.live.pin();
        let epoch = pin.epoch();
        let engine = pin.engine();
        let query = build_query(&engine, &group, q);
        let key = query.cache_key();
        let footprint = key.footprint();
        let plan_state = self.shared.plan_state_for(epoch);
        let lookup = std::cell::Cell::new(Some(obs::phase(Phase::Cache)));
        let (result, outcome) = self.shared.cache.get_or_compute(epoch, key, || {
            drop(lookup.take());
            query.run_shared(&plan_state)
        });
        drop(lookup.take());
        if span.active() {
            obs::note_cache(cache_note(outcome));
            obs::note_epoch(epoch);
        }
        match result {
            Ok(top) => {
                let mut st = lock_ok(&sub.state);
                // The precise footprint replaces the conservative
                // registration one unconditionally (it is a property of
                // the query, not of an epoch); the baseline result only
                // lands if the pump hasn't already delivered a newer
                // epoch in the registration window.
                st.footprint = footprint;
                if epoch > st.epoch {
                    st.epoch = epoch;
                    st.result = Some(Arc::clone(&top));
                }
                drop(st);
                let serialize = obs::phase(Phase::Serialize);
                let line = protocol::subscribe_response(
                    sub.id,
                    &top,
                    epoch,
                    outcome.label(),
                    &q.id,
                    Some(trace),
                );
                drop(serialize);
                if span.active() {
                    obs::note_ok(true);
                }
                (line, true)
            }
            Err(CacheError::Query(e)) => (
                protocol::error_response(
                    "subscribe",
                    "rejected",
                    &e.to_string(),
                    &q.id,
                    Some(trace),
                ),
                false,
            ),
            Err(CacheError::ComputePanicked) => (
                protocol::error_response(
                    "subscribe",
                    "internal",
                    "a concurrent identical query panicked in the kernel",
                    &q.id,
                    Some(trace),
                ),
                false,
            ),
        }
    }

    /// Admission-controlled execution: run `work` through `queue`,
    /// shedding immediately when it is full. The recorded latency spans
    /// queue wait + execution (what the client experiences minus
    /// network).
    ///
    /// `deadline_ms` is the request's latency budget: a job whose
    /// budget has already elapsed by the time a worker picks it up is
    /// answered `deadline_exceeded` without executing — under
    /// overload, work the caller has abandoned is the cheapest work to
    /// shed.
    fn submit<'env>(
        &'env self,
        queue: &VerbQueue<'env>,
        verb: &'static str,
        id: Option<Json>,
        deadline_ms: Option<u64>,
        trace: u64,
        work: impl FnOnce() -> (String, bool) + Send + 'env,
    ) -> String {
        let t0 = Instant::now();
        let slot = Arc::new(ResponseSlot::new());
        let ok_flag = Arc::new(AtomicBool::new(false));
        let job_slot = Arc::clone(&slot);
        let job_ok = Arc::clone(&ok_flag);
        let job = Box::new(move || {
            // If `work` panics the worker thread dies with it; release
            // the waiter with a typed error first.
            struct Release<'a>(&'a ResponseSlot, &'static str, Option<Json>, u64);
            impl Drop for Release<'_> {
                fn drop(&mut self) {
                    self.0.fill(protocol::error_response(
                        self.1,
                        "internal",
                        "request execution panicked",
                        &self.2,
                        Some(self.3),
                    ));
                }
            }
            let release = Release(&job_slot, verb, id.clone(), trace);
            if let Some(budget) = deadline_ms {
                if t0.elapsed() > Duration::from_millis(budget) {
                    self.shared
                        .metrics
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    std::mem::forget(release);
                    job_slot.fill(protocol::error_response(
                        verb,
                        "deadline_exceeded",
                        &format!("request spent more than its {budget} ms budget queued"),
                        &id,
                        Some(trace),
                    ));
                    return;
                }
            }
            // The worker-panic channel: an injected `Panic` exercises
            // the release guard above end-to-end (the waiter gets the
            // typed `internal` response, the worker thread dies, and
            // the server keeps serving on the remaining workers).
            if let Some(IoFault::Panic) = self.inject(FaultCtx::Work) {
                panic!("injected fault: worker panic");
            }
            let (response, ok) = work();
            std::mem::forget(release);
            job_ok.store(ok, Ordering::Relaxed);
            job_slot.fill(response);
        });
        match queue.submit(job) {
            Submission::Accepted => {
                let response = slot.wait();
                let ok = ok_flag.load(Ordering::Relaxed);
                self.shared.metrics.verb(verb).served(t0.elapsed(), ok);
                response
            }
            Submission::Overloaded => {
                self.shared.metrics.verb(verb).shed_one();
                protocol::error_response(
                    verb,
                    "overloaded",
                    "admission queue full; back off and retry",
                    &None,
                    Some(trace),
                )
            }
            Submission::Draining => protocol::error_response(
                verb,
                "shutting_down",
                "server is draining",
                &None,
                Some(trace),
            ),
        }
    }

    /// The degraded-mode annotation for read responses: `Some(age)` of
    /// the serving epoch when the engine's WAL is stalled. Queries are
    /// *served* in this state, never shed — the whole point of keeping
    /// reads on the last healthy epoch — but the client is told the
    /// answer's staleness bound. Runs on every query response (cache
    /// hits included), so it uses the engine's lock-free probe rather
    /// than `health()` — the latter snapshots the staging store, which
    /// a publish holds for the whole epoch rebuild, and reads must not
    /// queue behind that.
    fn degraded_staleness(&self) -> Option<u64> {
        self.live
            .degraded_staleness()
            .map(|s| s.as_millis().min(u128::from(u64::MAX)) as u64)
    }

    /// Answer a query from the result cache without queueing, when a
    /// resident entry exists at the current epoch. A hit seals a full
    /// span (cache + serialize attribution) under `trace`; a miss
    /// leaves no record — the queued path opens the trace's real span.
    fn try_cached_query(&self, q: &QueryRequest, trace: u64) -> Option<String> {
        let group = Group::new(q.group.clone()).ok()?;
        let pin = self.live.pin();
        let engine = pin.engine();
        let query = build_query(&engine, &group, q);
        let t_lookup = Instant::now();
        let top = self.shared.cache.try_get(pin.epoch(), &query.cache_key())?;
        let lookup = t_lookup.elapsed();
        let span = obs::span(trace, SpanKind::Query);
        if span.active() {
            obs::add_phase(Phase::Cache, lookup);
            obs::note_cache(CacheNote::Hit);
            obs::note_epoch(pin.epoch());
        }
        let serialize = obs::phase(Phase::Serialize);
        let response = protocol::query_response(
            &top,
            pin.epoch(),
            "hit",
            self.degraded_staleness(),
            &q.id,
            Some(trace),
        );
        drop(serialize);
        if span.active() {
            obs::note_ok(true);
        }
        drop(span);
        Some(response)
    }

    /// Execute one query through the epoch-pinned engine and the result
    /// cache. Returns `(response line, ok)`.
    fn handle_query(&self, q: &QueryRequest, trace: u64, admitted: Instant) -> (String, bool) {
        let span = obs::span(trace, SpanKind::Query);
        if span.active() {
            obs::add_phase(Phase::Admit, admitted.elapsed());
        }
        let group = match Group::new(q.group.clone()) {
            Ok(g) => g,
            Err(e) => {
                return (
                    protocol::error_response(
                        "query",
                        "bad_request",
                        &e.to_string(),
                        &q.id,
                        Some(trace),
                    ),
                    false,
                )
            }
        };
        let pin = self.live.pin();
        let epoch = pin.epoch();
        let engine = pin.engine();
        let query = build_query(&engine, &group, q);
        let key = query.cache_key();
        // Cache misses run through the planner's shared member-state
        // arena: distinct overlapping groups landing in one epoch
        // resolve each member's lists once, not once per query. The
        // arena is epoch-scoped, so sharing never crosses a substrate
        // swap and results stay bit-identical to `query.run()`.
        let plan_state = self.shared.plan_state_for(epoch);
        // The cache timer covers the lookup (and, on a coalesced
        // lookup, the wait for the concurrent identical run); a miss
        // hands off to the kernel's own prepare/kernel timers the
        // moment the compute closure starts.
        let lookup = std::cell::Cell::new(Some(obs::phase(Phase::Cache)));
        let (result, outcome) = self.shared.cache.get_or_compute(epoch, key, || {
            drop(lookup.take());
            query.run_shared(&plan_state)
        });
        drop(lookup.take());
        if span.active() {
            obs::note_cache(cache_note(outcome));
            obs::note_epoch(epoch);
        }
        match result {
            Ok(top) => {
                let serialize = obs::phase(Phase::Serialize);
                let line = protocol::query_response(
                    &top,
                    epoch,
                    outcome.label(),
                    self.degraded_staleness(),
                    &q.id,
                    Some(trace),
                );
                drop(serialize);
                if span.active() {
                    obs::note_ok(true);
                }
                (line, true)
            }
            Err(CacheError::Query(e)) => (
                protocol::error_response("query", "rejected", &e.to_string(), &q.id, Some(trace)),
                false,
            ),
            Err(CacheError::ComputePanicked) => (
                protocol::error_response(
                    "query",
                    "internal",
                    "a concurrent identical query panicked in the kernel",
                    &q.id,
                    Some(trace),
                ),
                false,
            ),
        }
    }

    /// Stage + publish one delta batch. Returns `(response line, ok)`.
    ///
    /// The batch goes through [`LiveEngine::stage_keyed`]: with a
    /// `batch` idempotency key, a retry of an already-staged batch is
    /// a no-op answered `duplicate: true` instead of double-applying.
    /// A WAL failure (append or commit) answers `degraded` — the typed
    /// signal that nothing was applied, nothing was lost, and the
    /// retry is safe — while queries keep being served.
    fn handle_ingest(&self, req: &IngestRequest, trace: u64, admitted: Instant) -> (String, bool) {
        // The ingest span owns the whole pipeline: the engine's
        // WAL-append/stage/rebuild/swap timers and the hook's survival
        // timer all attribute here (`LiveEngine::publish` only opens
        // its own span when none is active).
        let span = obs::span(trace, SpanKind::Ingest);
        if span.active() {
            obs::add_phase(Phase::Admit, admitted.elapsed());
        }
        let code_of = |e: &QueryError| match e {
            QueryError::Wal { .. } => "degraded",
            _ => "rejected",
        };
        let staged = match self
            .live
            .stage_keyed(req.batch_key, &req.ratings, &req.retractions)
        {
            Ok(staged) => staged,
            Err(e) => {
                return (
                    protocol::error_response(
                        "ingest",
                        code_of(&e),
                        &e.to_string(),
                        &req.id,
                        Some(trace),
                    ),
                    false,
                )
            }
        };
        if staged.duplicate {
            // Already staged under this key — but staged is not
            // committed: if the publish that should have committed the
            // original attempt failed (WAL stall), the batch is still
            // sitting in the staging store, neither visible to queries
            // nor durable. In that case re-attempt the publish before
            // acknowledging, so `ok: true` always means "committed";
            // while the WAL keeps failing the retry is answered
            // `degraded` again — never a false ack a crash could lose.
            // (`staged() == 0` means every staged batch has been
            // published: a failed publish re-stages its drained batch
            // under the store lock it holds throughout, so there is no
            // window where an uncommitted batch is invisible here.)
            if self.live.staged() > 0 {
                if let Err(e) = self.live.publish() {
                    return (
                        protocol::error_response(
                            "ingest",
                            code_of(&e),
                            &e.to_string(),
                            &req.id,
                            Some(trace),
                        ),
                        false,
                    );
                }
            }
            let epoch = self.live.epoch();
            if span.active() {
                obs::note_epoch(epoch);
                obs::note_ok(true);
            }
            let mut pairs = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("verb".to_string(), Json::str("ingest")),
            ];
            if let Some(id) = &req.id {
                pairs.push(("id".to_string(), id.clone()));
            }
            pairs.extend([
                ("trace".to_string(), Json::num(trace as f64)),
                ("epoch".to_string(), Json::num(epoch as f64)),
                ("batch_id".to_string(), Json::num(staged.batch_id as f64)),
                ("duplicate".to_string(), Json::Bool(true)),
            ]);
            return (Json::Obj(pairs).to_line(), true);
        }
        match self.live.publish() {
            Ok(report) => {
                if span.active() {
                    obs::note_epoch(report.epoch);
                    obs::note_ok(true);
                }
                let serialize = obs::phase(Phase::Serialize);
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("verb".to_string(), Json::str("ingest")),
                ];
                if let Some(id) = &req.id {
                    pairs.push(("id".to_string(), id.clone()));
                }
                pairs.push(("trace".to_string(), Json::num(trace as f64)));
                pairs.extend([
                    ("epoch".to_string(), Json::num(report.epoch as f64)),
                    ("batch_id".to_string(), Json::num(staged.batch_id as f64)),
                    ("duplicate".to_string(), Json::Bool(false)),
                    ("upserts".to_string(), Json::num(report.upserts as f64)),
                    (
                        "retractions".to_string(),
                        Json::num(report.retractions as f64),
                    ),
                    (
                        "dirty_users".to_string(),
                        Json::num(report.dirty_users as f64),
                    ),
                    (
                        "dirty_pairs".to_string(),
                        Json::num(report.dirty_pairs as f64),
                    ),
                    (
                        "rebuilt_segments".to_string(),
                        Json::num(report.rebuilt_segments as f64),
                    ),
                    (
                        "shared_segments".to_string(),
                        Json::num(report.shared_segments as f64),
                    ),
                    ("full_rebuild".to_string(), Json::Bool(report.full_rebuild)),
                ]);
                let line = Json::Obj(pairs).to_line();
                drop(serialize);
                (line, true)
            }
            Err(e) => (
                protocol::error_response(
                    "ingest",
                    code_of(&e),
                    &e.to_string(),
                    &req.id,
                    Some(trace),
                ),
                false,
            ),
        }
    }

    /// Answer a `trace` request from the flight recorder (or its
    /// slow-query log), applying the request's filters.
    fn handle_trace(&self, req: &TraceRequest) -> String {
        let rec = obs::recorder();
        let filter = TraceFilter {
            trace: req.trace,
            kind: req.kind,
            min_total_us: req.min_us,
            limit: req.limit.unwrap_or(0),
        };
        if req.slow {
            let mut records = rec.slow_queries();
            records.retain(|r| filter.matches(r));
            if let Some(limit) = req.limit {
                if records.len() > limit {
                    let cut = records.len() - limit;
                    records.drain(..cut);
                }
            }
            protocol::trace_response(&records, true, &req.id)
        } else {
            protocol::trace_response(&rec.snapshot(&filter), false, &req.id)
        }
    }

    fn handle_health(&self) -> String {
        let health = self.live.health();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("health")),
            ("epoch", Json::num(health.epoch as f64)),
            (
                "uptime_ms",
                Json::num(self.shared.started.elapsed().as_millis() as f64),
            ),
            (
                "draining",
                Json::Bool(self.shared.shutdown.load(Ordering::SeqCst)),
            ),
            ("wal_attached", Json::Bool(health.wal_attached)),
            // `degraded` on the wire == the engine's WAL is stalled:
            // mutations fail typed, reads keep serving this epoch.
            (
                "degraded",
                Json::Bool(health.wal_attached && health.wal_stalled),
            ),
            (
                "staleness_ms",
                Json::num(health.staleness.as_millis() as f64),
            ),
            ("staged", Json::num(health.staged as f64)),
            ("last_batch", Json::num(health.last_batch as f64)),
        ])
        .to_line()
    }

    fn handle_stats(&self, queues: &Queues<'_>) -> String {
        let pin = self.live.pin();
        let engine_epoch = self.live.epoch();
        let cache = &self.shared.cache;
        let stats = &cache.stats;
        let load = |c: &std::sync::atomic::AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        let substrate = pin.substrate();
        let lazy = substrate.lazy_stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("stats")),
            ("epoch", Json::num(engine_epoch as f64)),
            ("world", Json::str(self.config.world_label.as_str())),
            (
                "substrate",
                Json::obj(vec![
                    ("compression", Json::str(substrate.compression().label())),
                    (
                        "quant_error_bound",
                        Json::num(substrate.quant_error_bound()),
                    ),
                    (
                        "has_lazy_segments",
                        Json::Bool(substrate.has_lazy_segments()),
                    ),
                    (
                        "materialize_budget_bytes",
                        Json::num(if lazy.budget_bytes == usize::MAX {
                            -1.0
                        } else {
                            lazy.budget_bytes as f64
                        }),
                    ),
                    ("lazy_resident_bytes", Json::num(lazy.resident_bytes as f64)),
                    (
                        "lazy_cached_segments",
                        Json::num(lazy.cached_segments as f64),
                    ),
                    (
                        "lazy_materializations",
                        Json::num(lazy.materializations as f64),
                    ),
                    ("lazy_evictions", Json::num(lazy.evictions as f64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::num(cache.len() as f64)),
                    ("epoch", Json::num(cache.epoch() as f64)),
                    // How far the cache trails the engine (0 in steady
                    // state; a publish between the two reads above can
                    // show a transient 1).
                    (
                        "epoch_lag",
                        Json::num(engine_epoch.saturating_sub(cache.epoch()) as f64),
                    ),
                    ("hits", load(&stats.hits)),
                    ("misses", load(&stats.misses)),
                    ("coalesced", load(&stats.coalesced)),
                    ("bypasses", load(&stats.bypasses)),
                    ("invalidations", load(&stats.invalidations)),
                    (
                        "selective_invalidations",
                        load(&stats.selective_invalidations),
                    ),
                    ("survivors", load(&stats.survivors)),
                    ("dropped", load(&stats.dropped)),
                    ("survival_rate", Json::num(stats.survival_rate())),
                    ("capacity_flushes", load(&stats.capacity_flushes)),
                    ("hit_rate", Json::num(stats.hit_rate())),
                ]),
            ),
            (
                "subscriptions",
                Json::obj(vec![
                    ("active", Json::num(lock_ok(&self.shared.subs).len() as f64)),
                    ("sub_runs", load(&self.shared.metrics.sub_runs)),
                    ("push_count", load(&self.shared.metrics.pushes)),
                    ("push_errors", load(&self.shared.metrics.push_errors)),
                    (
                        "subscribers_dropped",
                        load(&self.shared.metrics.subscribers_dropped),
                    ),
                ]),
            ),
            ("health", {
                let health = self.live.health();
                Json::obj(vec![
                    ("wal_attached", Json::Bool(health.wal_attached)),
                    (
                        "degraded",
                        Json::Bool(health.wal_attached && health.wal_stalled),
                    ),
                    (
                        "staleness_ms",
                        Json::num(health.staleness.as_millis() as f64),
                    ),
                    ("staged", Json::num(health.staged as f64)),
                    ("last_batch", Json::num(health.last_batch as f64)),
                ])
            }),
            (
                "faults_injected",
                match self.shared.fault.as_deref() {
                    Some(plan) => Json::num(plan.injected().len() as f64),
                    None => Json::Null,
                },
            ),
            (
                "last_dirty",
                match lock_ok(&self.shared.last_dirty).as_deref() {
                    Some(wire) => Json::str(wire),
                    None => Json::Null,
                },
            ),
            ("planner", {
                let state = self.shared.plan_state_for(engine_epoch);
                Json::obj(vec![
                    ("entries", Json::num(state.entries() as f64)),
                    (
                        "resolved_members",
                        Json::num(state.resolved_members() as f64),
                    ),
                    ("reused_members", Json::num(state.reused_members() as f64)),
                    (
                        "reused_prefix_items",
                        Json::num(state.reused_prefix_items() as f64),
                    ),
                    ("memory_bytes", Json::num(state.memory_bytes() as f64)),
                ])
            }),
            (
                "queues",
                Json::obj(vec![
                    (
                        "query",
                        Json::obj(vec![
                            ("depth", Json::num(queues.query.depth() as f64)),
                            ("capacity", Json::num(queues.query.capacity() as f64)),
                        ]),
                    ),
                    (
                        "ingest",
                        Json::obj(vec![
                            ("depth", Json::num(queues.ingest.depth() as f64)),
                            ("capacity", Json::num(queues.ingest.capacity() as f64)),
                        ]),
                    ),
                ]),
            ),
            ("lineage", {
                let summary = self.live.lineage_summary();
                let recent = self.live.lineage_recent(8);
                let survival = lock_ok(&self.shared.survival_log);
                let recent_json: Vec<Json> = recent
                    .iter()
                    .map(|l| {
                        // Join the engine's per-epoch record with the
                        // hook-side cache-survival record for the same
                        // epoch (absent for publishes that predate this
                        // server or fell out of the survival log).
                        let (kept, dropped) = survival
                            .iter()
                            .rev()
                            .find(|(e, _, _)| *e == l.epoch)
                            .map_or((0, 0), |&(_, k, d)| (k, d));
                        Json::obj(vec![
                            ("epoch", Json::num(l.epoch as f64)),
                            ("unix_ms", Json::num(l.unix_ms as f64)),
                            ("upserts", Json::num(l.upserts as f64)),
                            ("retractions", Json::num(l.retractions as f64)),
                            ("dirty_users", Json::num(l.dirty_users as f64)),
                            ("dirty_pairs", Json::num(l.dirty_pairs as f64)),
                            ("rebuilt_segments", Json::num(l.rebuilt_segments as f64)),
                            ("shared_segments", Json::num(l.shared_segments as f64)),
                            ("full_rebuild", Json::Bool(l.full_rebuild)),
                            ("cache_kept", Json::num(kept as f64)),
                            ("cache_dropped", Json::num(dropped as f64)),
                            ("stage_us", Json::num(l.stage_ns as f64 / 1_000.0)),
                            ("rebuild_us", Json::num(l.rebuild_ns as f64 / 1_000.0)),
                            ("wal_us", Json::num(l.wal_ns as f64 / 1_000.0)),
                            ("swap_us", Json::num(l.swap_ns as f64 / 1_000.0)),
                            ("total_us", Json::num(l.total_ns as f64 / 1_000.0)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("epoch", Json::num(summary.epoch as f64)),
                    ("publishes", Json::num(summary.publishes as f64)),
                    ("full_rebuilds", Json::num(summary.full_rebuilds as f64)),
                    (
                        "last_publish_unix_ms",
                        Json::num(summary.last_publish_unix_ms as f64),
                    ),
                    (
                        "degraded_windows",
                        Json::num(summary.degraded_windows as f64),
                    ),
                    (
                        "degraded_ms_total",
                        Json::num(summary.degraded_ms_total as f64),
                    ),
                    ("recent", Json::Arr(recent_json)),
                ])
            }),
            ("obs", {
                let rec = obs::recorder();
                let totals = rec.totals();
                let spans: Vec<(&'static str, Json)> = greca_core::SpanKind::ALL
                    .iter()
                    .map(|&k| (k.label(), Json::num(totals.spans[k as usize] as f64)))
                    .collect();
                let phases: Vec<(&'static str, Json)> = Phase::ALL
                    .iter()
                    .map(|&p| {
                        (
                            p.label(),
                            Json::num(totals.phase_ns[p as usize] as f64 / 1_000.0),
                        )
                    })
                    .collect();
                Json::obj(vec![
                    ("enabled", Json::Bool(rec.is_enabled())),
                    (
                        "slow_threshold_us",
                        Json::num(rec.slow_threshold_us() as f64),
                    ),
                    ("slow_spans", Json::num(totals.slow as f64)),
                    ("sa", Json::num(totals.sa as f64)),
                    ("ra", Json::num(totals.ra as f64)),
                    ("spans", Json::obj(spans)),
                    ("phase_us", Json::obj(phases)),
                ])
            }),
            ("memory", memory_json(substrate.memory_footprint())),
            ("metrics", self.shared.metrics.to_json()),
        ])
        .to_line()
    }
}

/// The per-verb admission queues, scoped to one `run()`.
struct Queues<'env> {
    query: VerbQueue<'env>,
    ingest: VerbQueue<'env>,
}

/// Assemble a [`greca_core::GroupQuery`] from a parsed request's
/// optional fields (shared by the inline fast path and the queued
/// execution path, so both derive the same canonical cache key).
fn build_query<'q>(
    engine: &'q greca_core::GrecaEngine<'q>,
    group: &'q Group,
    req: &'q QueryRequest,
) -> greca_core::GroupQuery<'q> {
    let mut query = engine.query(group);
    if let Some(items) = &req.items {
        query = query.items(items);
    }
    if let Some(k) = req.k {
        query = query.top(k);
    }
    if let Some(period) = req.period {
        query = query.period(period);
    }
    if let Some(mode) = req.mode {
        query = query.affinity(mode);
    }
    if let Some(consensus) = req.consensus {
        query = query.consensus(consensus);
    }
    query
}

/// The trace id a request travels under: the caller's, or a fresh
/// server-assigned one masked to the wire-representable range (the
/// JSON layer carries numbers as `f64` — see
/// [`protocol::MAX_WIRE_TRACE`]).
fn resolve_trace(requested: Option<u64>) -> u64 {
    requested.unwrap_or_else(|| obs::next_trace_id() & protocol::MAX_WIRE_TRACE)
}

/// A cache outcome as the span record's cache disposition.
fn cache_note(outcome: CacheOutcome) -> CacheNote {
    match outcome {
        CacheOutcome::Hit => CacheNote::Hit,
        CacheOutcome::Miss => CacheNote::Miss,
        CacheOutcome::Coalesced => CacheNote::Coalesced,
        CacheOutcome::Bypass => CacheNote::Bypass,
    }
}

/// Union two sorted-or-not period lists into a sorted, deduplicated
/// one (delta coalescing in the hook and the pump).
fn merge_periods(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut merged: Vec<usize> = a.iter().chain(b).copied().collect();
    merged.sort_unstable();
    merged.dedup();
    merged
}

/// A [`greca_core::MemoryFootprint`] as a JSON object.
fn memory_json(fp: greca_core::MemoryFootprint) -> Json {
    Json::obj(vec![
        ("universe_bytes", Json::num(fp.universe_bytes as f64)),
        ("pref_bytes", Json::num(fp.pref_bytes as f64)),
        ("affinity_bytes", Json::num(fp.affinity_bytes as f64)),
        ("lazy_bytes", Json::num(fp.lazy_bytes as f64)),
        ("total_bytes", Json::num(fp.total() as f64)),
    ])
}
