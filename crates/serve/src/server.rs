//! The TCP front: accept loop, per-connection readers, verb dispatch.
//!
//! [`GrecaServer::bind`] attaches to a [`LiveEngine`] and a listening
//! socket; [`GrecaServer::run`] blocks, serving until a
//! [`ServerHandle::shutdown`]. Inside `run` everything is scoped
//! threads over borrowed state — no `'static` gymnastics, no runtime:
//!
//! ```text
//! accept loop ──► connection threads ──► per-verb bounded queues ──► workers
//!      │                 │                      │ (full → overloaded)     │
//!      │                 └── stats/health answered inline                 │
//!      └── shutdown: stop accepting, drain queues, finish in-flight ──────┘
//! ```
//!
//! * `query` requests first probe the epoch-scoped [`ResultCache`]
//!   inline — a resident entry costs no kernel work, so hits are
//!   answered on the connection thread without queueing; only cache
//!   misses pay admission (one kernel run, coalesced across identical
//!   concurrent queries).
//! * `ingest` jobs stage and publish through the engine; the epoch
//!   hook registered at bind time invalidates the cache and bumps the
//!   publish counter before the ingest response is even written.
//! * `stats`/`health` never queue: they read atomics and one pin, so
//!   they stay responsive under full overload — exactly when an
//!   operator needs them.

use crate::admission::{ResponseSlot, Submission, VerbQueue};
use crate::cache::{CacheError, ResultCache};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{self, IngestRequest, QueryRequest, Request};
use crate::ServeConfig;
use greca_core::{LiveEngine, SharedMemberState};
use greca_dataset::Group;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// State shared between the server, its handle, and the publish hook.
struct Shared {
    shutdown: AtomicBool,
    metrics: Metrics,
    cache: ResultCache,
    /// The batch planner's member-state arena for the current epoch:
    /// concurrent cache-miss queries resolve each member's preference
    /// list once per epoch instead of once per query. Swapped (not
    /// mutated) on publish, so in-flight queries keep the arena they
    /// started with — same discipline as the epoch-pinned engine.
    plan_state: Mutex<(u64, Arc<SharedMemberState>)>,
    started: Instant,
}

impl Shared {
    /// The member-state arena scoped to `epoch`, freshly reset if the
    /// last one belonged to an older epoch.
    fn plan_state_for(&self, epoch: u64) -> Arc<SharedMemberState> {
        let mut slot = self.plan_state.lock().unwrap_or_else(|p| {
            self.plan_state.clear_poison();
            p.into_inner()
        });
        if slot.0 != epoch {
            *slot = (epoch, Arc::new(SharedMemberState::new()));
        }
        Arc::clone(&slot.1)
    }
}

/// A clonable remote control for a running [`GrecaServer`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, refuse new work,
    /// finish everything already admitted. [`GrecaServer::run`] returns
    /// once in-flight connections close (idle ones are dropped at the
    /// next read-timeout tick). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The serving front-end over one [`LiveEngine`]. See the module docs.
pub struct GrecaServer<'live, 'pop> {
    live: &'live LiveEngine<'pop>,
    listener: TcpListener,
    config: ServeConfig,
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl<'live, 'pop> GrecaServer<'live, 'pop> {
    /// Bind to `config.addr` (`127.0.0.1:0` by default — an ephemeral
    /// port, reported by [`GrecaServer::addr`]) and register the cache
    /// invalidation hook on `live`.
    pub fn bind(live: &'live LiveEngine<'pop>, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&*config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: ResultCache::new(config.cache_capacity),
            plan_state: Mutex::new((live.epoch(), Arc::new(SharedMemberState::new()))),
            started: Instant::now(),
        });
        // The epoch-handoff integration: one hook, registered once,
        // invalidates the whole cache and counts the swap. The hook
        // holds only the shared state, so it stays valid (and harmless)
        // after the server itself is gone.
        shared.cache.invalidate_to(live.epoch());
        let hook_shared = Arc::clone(&shared);
        live.on_publish(move |epoch| {
            hook_shared.cache.invalidate_to(epoch);
            // Retire the old epoch's member arena eagerly; queries that
            // pinned the previous epoch still hold their own Arc.
            hook_shared.plan_state_for(epoch);
            hook_shared
                .metrics
                .publishes
                .fetch_add(1, Ordering::Relaxed);
        });
        Ok(GrecaServer {
            live,
            listener,
            config,
            shared,
            addr,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server (clonable, thread-safe).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// The server's result cache (observability for tests/benches).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Serve until [`ServerHandle::shutdown`]. Blocks the calling
    /// thread; spawn it in a scope alongside your clients:
    ///
    /// ```ignore
    /// std::thread::scope(|s| {
    ///     s.spawn(|| server.run());
    ///     // … clients talk to server.addr() …
    ///     handle.shutdown();
    /// });
    /// ```
    pub fn run(&self) {
        let queues = Queues {
            query: VerbQueue::new(self.config.query_queue),
            ingest: VerbQueue::new(self.config.ingest_queue),
        };
        std::thread::scope(|scope| {
            for _ in 0..self.config.query_workers.max(1) {
                scope.spawn(|| queues.query.worker_loop());
            }
            for _ in 0..self.config.ingest_workers.max(1) {
                scope.spawn(|| queues.ingest.worker_loop());
            }
            for stream in self.listener.incoming() {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.shared
                    .metrics
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let queues = &queues;
                scope.spawn(move || self.serve_connection(stream, queues));
            }
            // Graceful drain: everything accepted still executes; new
            // submissions get `shutting_down`.
            queues.query.drain();
            queues.ingest.drain();
        });
    }

    /// One connection: read request lines, write response lines, in
    /// order. Returns when the peer closes, on a fatal socket error, or
    /// at the first read-timeout tick after shutdown began.
    ///
    /// Input is read in buffered chunks with the line-size cap enforced
    /// per chunk, so a client streaming one endless unterminated line —
    /// at any speed — is answered with `bad_request` and disconnected
    /// at the cap instead of growing a buffer until OOM.
    fn serve_connection<'env>(&'env self, stream: TcpStream, queues: &Queues<'env>) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut acc: Vec<u8> = Vec::new();
        let cap = self.config.max_line_bytes.max(1024);
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let (consumed, complete) = {
                let chunk = match reader.fill_buf() {
                    Ok([]) => return, // EOF (a trailing partial line is not a request)
                    Ok(chunk) => chunk,
                    // Timeout tick: keep accumulated partial input,
                    // re-check the shutdown flag.
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => return,
                };
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        acc.extend_from_slice(&chunk[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        acc.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            };
            reader.consume(consumed);
            if acc.len() > cap {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let response = protocol::error_response(
                    "?",
                    "bad_request",
                    &format!("request line exceeds the {cap}-byte limit"),
                    &None,
                );
                let _ = writeln!(writer, "{response}");
                return; // the remainder of the oversized line is garbage
            }
            if !complete {
                continue;
            }
            let response = match std::str::from_utf8(&acc) {
                Ok(line) => self.dispatch(line.trim(), queues),
                Err(_) => {
                    self.shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    protocol::error_response(
                        "?",
                        "bad_request",
                        "request line is not valid UTF-8",
                        &None,
                    )
                }
            };
            acc.clear();
            if writeln!(writer, "{response}").is_err() {
                return;
            }
        }
    }

    /// Parse one line and route it. Always produces exactly one
    /// response line.
    fn dispatch<'env>(&'env self, line: &str, queues: &Queues<'env>) -> String {
        if line.is_empty() {
            self.shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_response("?", "bad_request", "empty request line", &None);
        }
        let parsed = match crate::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_response(
                    "?",
                    "bad_request",
                    &format!("invalid JSON: {e}"),
                    &None,
                );
            }
        };
        let request = match protocol::parse_request(&parsed) {
            Ok(r) => r,
            Err(bad) => {
                self.shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_response("?", "bad_request", &bad.detail, &bad.id);
            }
        };
        match request {
            // Observability verbs answer inline — responsive even when
            // every queue is full.
            Request::Health => {
                let t0 = Instant::now();
                let response = self.handle_health();
                self.shared.metrics.health.served(t0.elapsed(), true);
                response
            }
            Request::Stats => {
                let t0 = Instant::now();
                let response = self.handle_stats(queues);
                self.shared.metrics.stats.served(t0.elapsed(), true);
                response
            }
            Request::Query(q) => {
                // Fast path: a resident cache entry costs no kernel
                // work, so it is served inline — never queued, never
                // shed — exactly like the observability verbs.
                let t0 = Instant::now();
                if let Some(response) = self.try_cached_query(&q) {
                    self.shared.metrics.query.served(t0.elapsed(), true);
                    return response;
                }
                self.submit(&queues.query, "query", q.id.clone(), move || {
                    self.handle_query(&q)
                })
            }
            Request::Ingest(i) => self.submit(&queues.ingest, "ingest", i.id.clone(), move || {
                self.handle_ingest(&i)
            }),
        }
    }

    /// Admission-controlled execution: run `work` through `queue`,
    /// shedding immediately when it is full. The recorded latency spans
    /// queue wait + execution (what the client experiences minus
    /// network).
    fn submit<'env>(
        &'env self,
        queue: &VerbQueue<'env>,
        verb: &'static str,
        id: Option<Json>,
        work: impl FnOnce() -> (String, bool) + Send + 'env,
    ) -> String {
        let t0 = Instant::now();
        let slot = Arc::new(ResponseSlot::new());
        let ok_flag = Arc::new(AtomicBool::new(false));
        let job_slot = Arc::clone(&slot);
        let job_ok = Arc::clone(&ok_flag);
        let job = Box::new(move || {
            // If `work` panics the worker thread dies with it; release
            // the waiter with a typed error first.
            struct Release<'a>(&'a ResponseSlot, &'static str, Option<Json>);
            impl Drop for Release<'_> {
                fn drop(&mut self) {
                    self.0.fill(protocol::error_response(
                        self.1,
                        "internal",
                        "request execution panicked",
                        &self.2,
                    ));
                }
            }
            let release = Release(&job_slot, verb, id.clone());
            let (response, ok) = work();
            std::mem::forget(release);
            job_ok.store(ok, Ordering::Relaxed);
            job_slot.fill(response);
        });
        match queue.submit(job) {
            Submission::Accepted => {
                let response = slot.wait();
                let ok = ok_flag.load(Ordering::Relaxed);
                self.shared.metrics.verb(verb).served(t0.elapsed(), ok);
                response
            }
            Submission::Overloaded => {
                self.shared.metrics.verb(verb).shed_one();
                protocol::error_response(
                    verb,
                    "overloaded",
                    "admission queue full; back off and retry",
                    &None,
                )
            }
            Submission::Draining => {
                protocol::error_response(verb, "shutting_down", "server is draining", &None)
            }
        }
    }

    /// Answer a query from the result cache without queueing, when a
    /// resident entry exists at the current epoch.
    fn try_cached_query(&self, q: &QueryRequest) -> Option<String> {
        let group = Group::new(q.group.clone()).ok()?;
        let pin = self.live.pin();
        let engine = pin.engine();
        let query = build_query(&engine, &group, q);
        let top = self.shared.cache.try_get(pin.epoch(), &query.cache_key())?;
        Some(protocol::query_response(&top, pin.epoch(), "hit", &q.id))
    }

    /// Execute one query through the epoch-pinned engine and the result
    /// cache. Returns `(response line, ok)`.
    fn handle_query(&self, q: &QueryRequest) -> (String, bool) {
        let group = match Group::new(q.group.clone()) {
            Ok(g) => g,
            Err(e) => {
                return (
                    protocol::error_response("query", "bad_request", &e.to_string(), &q.id),
                    false,
                )
            }
        };
        let pin = self.live.pin();
        let epoch = pin.epoch();
        let engine = pin.engine();
        let query = build_query(&engine, &group, q);
        let key = query.cache_key();
        // Cache misses run through the planner's shared member-state
        // arena: distinct overlapping groups landing in one epoch
        // resolve each member's lists once, not once per query. The
        // arena is epoch-scoped, so sharing never crosses a substrate
        // swap and results stay bit-identical to `query.run()`.
        let plan_state = self.shared.plan_state_for(epoch);
        let (result, outcome) = self
            .shared
            .cache
            .get_or_compute(epoch, key, || query.run_shared(&plan_state));
        match result {
            Ok(top) => (
                protocol::query_response(&top, epoch, outcome.label(), &q.id),
                true,
            ),
            Err(CacheError::Query(e)) => (
                protocol::error_response("query", "rejected", &e.to_string(), &q.id),
                false,
            ),
            Err(CacheError::ComputePanicked) => (
                protocol::error_response(
                    "query",
                    "internal",
                    "a concurrent identical query panicked in the kernel",
                    &q.id,
                ),
                false,
            ),
        }
    }

    /// Stage + publish one delta batch. Returns `(response line, ok)`.
    fn handle_ingest(&self, req: &IngestRequest) -> (String, bool) {
        if let Err(e) = self.live.stage(&req.ratings) {
            return (
                protocol::error_response("ingest", "rejected", &e.to_string(), &req.id),
                false,
            );
        }
        self.live.stage_retractions(&req.retractions);
        match self.live.publish() {
            Ok(report) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("verb".to_string(), Json::str("ingest")),
                ];
                if let Some(id) = &req.id {
                    pairs.push(("id".to_string(), id.clone()));
                }
                pairs.extend([
                    ("epoch".to_string(), Json::num(report.epoch as f64)),
                    ("upserts".to_string(), Json::num(report.upserts as f64)),
                    (
                        "retractions".to_string(),
                        Json::num(report.retractions as f64),
                    ),
                    (
                        "rebuilt_segments".to_string(),
                        Json::num(report.rebuilt_segments as f64),
                    ),
                    (
                        "shared_segments".to_string(),
                        Json::num(report.shared_segments as f64),
                    ),
                    ("full_rebuild".to_string(), Json::Bool(report.full_rebuild)),
                ]);
                (Json::Obj(pairs).to_line(), true)
            }
            Err(e) => (
                protocol::error_response("ingest", "rejected", &e.to_string(), &req.id),
                false,
            ),
        }
    }

    fn handle_health(&self) -> String {
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("health")),
            ("epoch", Json::num(self.live.epoch() as f64)),
            (
                "uptime_ms",
                Json::num(self.shared.started.elapsed().as_millis() as f64),
            ),
            (
                "draining",
                Json::Bool(self.shared.shutdown.load(Ordering::SeqCst)),
            ),
        ])
        .to_line()
    }

    fn handle_stats(&self, queues: &Queues<'_>) -> String {
        let pin = self.live.pin();
        let engine_epoch = self.live.epoch();
        let cache = &self.shared.cache;
        let stats = &cache.stats;
        let load = |c: &std::sync::atomic::AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        let substrate = pin.substrate();
        let lazy = substrate.lazy_stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("stats")),
            ("epoch", Json::num(engine_epoch as f64)),
            ("world", Json::str(self.config.world_label.as_str())),
            (
                "substrate",
                Json::obj(vec![
                    ("compression", Json::str(substrate.compression().label())),
                    (
                        "quant_error_bound",
                        Json::num(substrate.quant_error_bound()),
                    ),
                    (
                        "has_lazy_segments",
                        Json::Bool(substrate.has_lazy_segments()),
                    ),
                    (
                        "materialize_budget_bytes",
                        Json::num(if lazy.budget_bytes == usize::MAX {
                            -1.0
                        } else {
                            lazy.budget_bytes as f64
                        }),
                    ),
                    ("lazy_resident_bytes", Json::num(lazy.resident_bytes as f64)),
                    (
                        "lazy_cached_segments",
                        Json::num(lazy.cached_segments as f64),
                    ),
                    (
                        "lazy_materializations",
                        Json::num(lazy.materializations as f64),
                    ),
                    ("lazy_evictions", Json::num(lazy.evictions as f64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::num(cache.len() as f64)),
                    ("epoch", Json::num(cache.epoch() as f64)),
                    // How far the cache trails the engine (0 in steady
                    // state; a publish between the two reads above can
                    // show a transient 1).
                    (
                        "epoch_lag",
                        Json::num(engine_epoch.saturating_sub(cache.epoch()) as f64),
                    ),
                    ("hits", load(&stats.hits)),
                    ("misses", load(&stats.misses)),
                    ("coalesced", load(&stats.coalesced)),
                    ("bypasses", load(&stats.bypasses)),
                    ("invalidations", load(&stats.invalidations)),
                    ("capacity_flushes", load(&stats.capacity_flushes)),
                    ("hit_rate", Json::num(stats.hit_rate())),
                ]),
            ),
            ("planner", {
                let state = self.shared.plan_state_for(engine_epoch);
                Json::obj(vec![
                    ("entries", Json::num(state.entries() as f64)),
                    (
                        "resolved_members",
                        Json::num(state.resolved_members() as f64),
                    ),
                    ("reused_members", Json::num(state.reused_members() as f64)),
                    (
                        "reused_prefix_items",
                        Json::num(state.reused_prefix_items() as f64),
                    ),
                    ("memory_bytes", Json::num(state.memory_bytes() as f64)),
                ])
            }),
            (
                "queues",
                Json::obj(vec![
                    (
                        "query",
                        Json::obj(vec![
                            ("depth", Json::num(queues.query.depth() as f64)),
                            ("capacity", Json::num(queues.query.capacity() as f64)),
                        ]),
                    ),
                    (
                        "ingest",
                        Json::obj(vec![
                            ("depth", Json::num(queues.ingest.depth() as f64)),
                            ("capacity", Json::num(queues.ingest.capacity() as f64)),
                        ]),
                    ),
                ]),
            ),
            ("memory", memory_json(substrate.memory_footprint())),
            ("metrics", self.shared.metrics.to_json()),
        ])
        .to_line()
    }
}

/// The per-verb admission queues, scoped to one `run()`.
struct Queues<'env> {
    query: VerbQueue<'env>,
    ingest: VerbQueue<'env>,
}

/// Assemble a [`greca_core::GroupQuery`] from a parsed request's
/// optional fields (shared by the inline fast path and the queued
/// execution path, so both derive the same canonical cache key).
fn build_query<'q>(
    engine: &'q greca_core::GrecaEngine<'q>,
    group: &'q Group,
    req: &'q QueryRequest,
) -> greca_core::GroupQuery<'q> {
    let mut query = engine.query(group);
    if let Some(items) = &req.items {
        query = query.items(items);
    }
    if let Some(k) = req.k {
        query = query.top(k);
    }
    if let Some(period) = req.period {
        query = query.period(period);
    }
    if let Some(mode) = req.mode {
        query = query.affinity(mode);
    }
    if let Some(consensus) = req.consensus {
        query = query.consensus(consensus);
    }
    query
}

/// A [`greca_core::MemoryFootprint`] as a JSON object.
fn memory_json(fp: greca_core::MemoryFootprint) -> Json {
    Json::obj(vec![
        ("universe_bytes", Json::num(fp.universe_bytes as f64)),
        ("pref_bytes", Json::num(fp.pref_bytes as f64)),
        ("affinity_bytes", Json::num(fp.affinity_bytes as f64)),
        ("lazy_bytes", Json::num(fp.lazy_bytes as f64)),
        ("total_bytes", Json::num(fp.total() as f64)),
    ])
}
