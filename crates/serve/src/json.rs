//! A minimal JSON value, parser and writer over `std` only.
//!
//! The workspace's vendored `serde` is a marker-trait stub (see
//! `vendor/README.md`), so the wire layer carries its own ~200-line
//! JSON implementation. Scope is exactly what the line protocol needs:
//!
//! * every value nests `Null | Bool | Num(f64) | Str | Arr | Obj`;
//! * objects preserve insertion order (`Vec` of pairs, not a map) so
//!   responses read stably in logs and tests;
//! * `f64`s are written with Rust's shortest round-trip formatting, so
//!   a score travels the wire **bit-identically** — the property the
//!   serve-vs-direct identity checks in `BENCH_serve.json` rest on;
//! * the parser is a recursive-descent reader with a nesting-depth cap
//!   (malformed or adversarial input fails with a message, never a
//!   stack overflow).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers; see
    /// [`Json::as_u64`] for checked integer reads).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value from anything convertible to `f64` losslessly
    /// enough for the protocol (counts, ids, epochs, latencies).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shortest round-trip float formatting; integers print without the
/// trailing `.0` (both re-parse to the identical `f64`). Non-finite
/// values have no JSON spelling and serialize as `null` — the engine's
/// ingestion contract rejects them long before they could reach a
/// response.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else {
        // `{}` on f64 is Rust's shortest representation that parses
        // back to the same bits.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse exactly one JSON value; trailing non-whitespace is an error
/// (the line protocol carries one value per line).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{lit}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| ParseError {
            message: format!("invalid number '{text}'"),
            at: start,
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                message: format!("number '{text}' overflows f64"),
                at: start,
            });
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // A surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            // hex4 leaves pos one past the last digit;
                            // skip the shared increment below.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("verb", Json::str("query")),
            (
                "group",
                Json::Arr(vec![Json::num(1u32), Json::num(2u32), Json::num(3u32)]),
            ),
            ("k", Json::num(10u32)),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
            ("nothing", Json::Null),
        ]);
        let line = v.to_line();
        assert_eq!(parse(&line).unwrap(), v);
        assert!(!line.contains('\n'), "single line");
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            -2.5e-7,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.25,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let line = Json::Num(x).to_line();
            let back = parse(&line).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {line}");
        }
    }

    #[test]
    fn integers_print_clean_and_read_back() {
        assert_eq!(Json::num(42u32).to_line(), "42");
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\u{0007}é👀";
        let line = Json::str(nasty).to_line();
        assert_eq!(parse(&line).unwrap().as_str(), Some(nasty));
        // Standard escapes parse too.
        assert_eq!(
            parse(r#""\u00e9\ud83d\udc40\/""#).unwrap().as_str(),
            Some("é👀/")
        );
    }

    #[test]
    fn malformed_input_errors_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1e999",
            "nan",
            "[1] []",
            "{\"a\":}",
            "\"\\u12\"",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Depth cap, not stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}

/// Round-trip fuzz for the hand-rolled codec: arbitrary values —
/// including non-finite-adjacent floats, control characters, astral
/// unicode, and deep nesting — serialize and parse back **exactly**;
/// malformed or truncated input fails with a typed [`ParseError`],
/// never a panic.
#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Finite `f64` from arbitrary bits: non-finite patterns (exponent
    /// all-ones) get their exponent cleared, landing on the adjacent
    /// subnormal with the same sign and mantissa — so the generator
    /// sweeps right up against the NaN/Inf boundary without crossing it.
    fn finite(bits: u64) -> f64 {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            f64::from_bits(bits & 0x800F_FFFF_FFFF_FFFF)
        }
    }

    /// Any scalar value (surrogate codepoints remapped below the
    /// surrogate block, keeping the full control/BMP/astral spread).
    fn char_of(code: u32) -> char {
        let code = code % 0x11_0000;
        let code = if (0xD800..0xE000).contains(&code) {
            code - 0x800
        } else {
            code
        };
        char::from_u32(code).unwrap_or('\u{FFFD}')
    }

    fn string_strategy() -> impl Strategy<Value = String> {
        collection::vec((0u32..0x11_0000).prop_map(char_of), 0..8usize)
            .prop_map(|chars| chars.into_iter().collect())
    }

    fn leaf_strategy() -> BoxedStrategy<Json> {
        (0u8..4, any::<bool>(), any::<u64>(), string_strategy())
            .prop_map(|(sel, b, bits, s)| match sel {
                0 => Json::Null,
                1 => Json::Bool(b),
                2 => Json::Num(finite(bits)),
                _ => Json::Str(s),
            })
            .boxed()
    }

    /// Arbitrary trees up to `depth` levels of arrays/objects over the
    /// leaves (the vendored proptest has no `prop_recursive`; explicit
    /// depth-bounded recursion plays the same role).
    fn json_strategy(depth: usize) -> BoxedStrategy<Json> {
        if depth == 0 {
            return leaf_strategy();
        }
        let inner = json_strategy(depth - 1);
        (
            0u8..4,
            leaf_strategy(),
            collection::vec(inner.clone(), 0..4usize),
            collection::vec((string_strategy(), inner), 0..4usize),
        )
            .prop_map(|(sel, leaf, arr, obj)| match sel {
                0 => Json::Arr(arr),
                1 => Json::Obj(obj),
                _ => leaf,
            })
            .boxed()
    }

    /// Bytes drawn from a JSON-shaped pool — quotes, brackets, escapes,
    /// digit/keyword fragments — so random lines land near the grammar
    /// instead of failing on the first byte.
    fn soup_strategy() -> impl Strategy<Value = String> {
        const POOL: &[char] = &[
            '{', '}', '[', ']', '"', ',', ':', '\\', 'u', 'n', 't', 'r', 'e', 'f', 'a', 'l', 's',
            '0', '1', '9', '-', '+', '.', 'E', ' ', 'é', '👀', '\u{0007}', 'd', '8',
        ];
        collection::vec(0usize..POOL.len(), 0..40usize)
            .prop_map(|picks| picks.into_iter().map(|i| POOL[i]).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn values_round_trip_exactly(v in json_strategy(3)) {
            let line = v.to_line();
            let back = parse(&line);
            prop_assert_eq!(back.as_ref(), Ok(&v), "via {}", line);
            // And the serialized form is a fixed point: re-serializing
            // the parsed value reproduces the line byte-for-byte.
            prop_assert_eq!(back.unwrap().to_line(), line);
        }

        #[test]
        fn floats_round_trip_bit_for_bit(bits in any::<u64>()) {
            let x = finite(bits);
            let line = Json::Num(x).to_line();
            let back = parse(&line).unwrap().as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits(), "{} via {}", x, line);
        }

        #[test]
        fn nesting_beyond_the_cap_fails_typed(n in 0usize..200) {
            let line = "[".repeat(n) + &"]".repeat(n);
            match parse(&line) {
                // The outermost value sits at depth 0, so the cap
                // admits MAX_DEPTH + 1 brackets.
                Ok(_) => prop_assert!(n <= MAX_DEPTH + 1, "depth {} accepted", n),
                Err(e) => {
                    prop_assert!(n > MAX_DEPTH + 1 || n == 0, "depth {} rejected: {}", n, e);
                    prop_assert!(e.at <= line.len());
                }
            }
        }

        #[test]
        fn malformed_input_never_panics(soup in soup_strategy()) {
            // Ok or Err are both acceptable; panicking or running away
            // is not. A typed error must point inside the input.
            if let Err(e) = parse(&soup) {
                prop_assert!(e.at <= soup.len(), "error at {} in {:?}", e.at, soup);
            }
        }

        #[test]
        fn truncated_lines_never_panic(v in json_strategy(2), cut_seed in any::<u64>()) {
            let line = v.to_line();
            let mut cut = (cut_seed as usize) % (line.len() + 1);
            while !line.is_char_boundary(cut) {
                cut -= 1;
            }
            if let Err(e) = parse(&line[..cut]) {
                prop_assert!(e.at <= cut);
            }
        }
    }
}
