//! Prometheus-style text exposition (format 0.0.4) for the `metrics`
//! verb: one plain-text body unifying the serve-side registry
//! ([`Metrics`]), the result-cache counters ([`CacheStats`]) and the
//! span-derived series from the core flight recorder
//! ([`greca_core::FlightRecorder::totals`]).
//!
//! Everything is generated from the same counters `stats` reports as
//! JSON — the exposition adds no new state, only a scrape-friendly
//! rendering: `_total` counters, per-verb latency histograms with
//! cumulative `le` buckets, and the kernel's SA/RA access counters as
//! first-class series (the paper's cost model, live on an operations
//! dashboard).

use crate::cache::CacheStats;
use crate::metrics::{Histogram, Metrics, VerbMetrics};
use greca_core::obs::{self, Phase, SpanKind};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Render the full exposition body. Lines follow the text format's
/// `# HELP` / `# TYPE` convention; every series is prefixed `greca_`.
pub fn render(metrics: &Metrics, cache: &CacheStats) -> String {
    let mut out = String::with_capacity(8 * 1024);
    render_verbs(&mut out, metrics);
    render_counters(&mut out, metrics);
    render_cache(&mut out, cache);
    render_obs(&mut out);
    out
}

fn load(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// Seconds rendering for microsecond quantities (Prometheus base
/// units are seconds).
fn secs(us: u64) -> f64 {
    us as f64 / 1_000_000.0
}

fn render_verbs(out: &mut String, metrics: &Metrics) {
    let verbs: [(&str, &VerbMetrics); 5] = [
        ("query", &metrics.query),
        ("subscribe", &metrics.subscribe),
        ("ingest", &metrics.ingest),
        ("stats", &metrics.stats),
        ("health", &metrics.health),
    ];
    let _ = writeln!(out, "# HELP greca_requests_total Requests served, by verb.");
    let _ = writeln!(out, "# TYPE greca_requests_total counter");
    for (verb, m) in verbs {
        let _ = writeln!(
            out,
            "greca_requests_total{{verb=\"{verb}\"}} {}",
            load(&m.requests)
        );
    }
    let _ = writeln!(
        out,
        "# HELP greca_request_errors_total Requests answered with a typed error, by verb."
    );
    let _ = writeln!(out, "# TYPE greca_request_errors_total counter");
    for (verb, m) in verbs {
        let _ = writeln!(
            out,
            "greca_request_errors_total{{verb=\"{verb}\"}} {}",
            load(&m.errors)
        );
    }
    let _ = writeln!(
        out,
        "# HELP greca_requests_shed_total Requests shed by admission control, by verb."
    );
    let _ = writeln!(out, "# TYPE greca_requests_shed_total counter");
    for (verb, m) in verbs {
        let _ = writeln!(
            out,
            "greca_requests_shed_total{{verb=\"{verb}\"}} {}",
            load(&m.shed)
        );
    }
    let _ = writeln!(
        out,
        "# HELP greca_request_duration_seconds Served-request latency (queue wait + execution), by verb."
    );
    let _ = writeln!(out, "# TYPE greca_request_duration_seconds histogram");
    for (verb, m) in verbs {
        render_histogram(out, "greca_request_duration_seconds", verb, &m.latency);
    }
}

/// One histogram in cumulative-`le` form. The registry's buckets are
/// `(2^(i-1), 2^i]` microseconds with a saturating last bucket, which
/// maps onto the exposition contract directly: bucket `i < last`
/// exposes `le = 2^i µs`, the saturating bucket folds into `+Inf`.
fn render_histogram(out: &mut String, name: &str, verb: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, &count) in counts.iter().enumerate().take(counts.len() - 1) {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{verb=\"{verb}\",le=\"{}\"}} {cumulative}",
            secs(Histogram::bucket_bound_us(i))
        );
    }
    let total = h.count();
    let _ = writeln!(out, "{name}_bucket{{verb=\"{verb}\",le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum{{verb=\"{verb}\"}} {}", secs(h.sum_us()));
    let _ = writeln!(out, "{name}_count{{verb=\"{verb}\"}} {total}");
}

fn render_counters(out: &mut String, metrics: &Metrics) {
    let series: [(&str, &str, &AtomicU64); 8] = [
        (
            "greca_protocol_errors_total",
            "Unparseable or malformed request lines.",
            &metrics.protocol_errors,
        ),
        (
            "greca_publishes_total",
            "Epoch publishes observed by the serve hook.",
            &metrics.publishes,
        ),
        (
            "greca_connections_total",
            "TCP connections accepted.",
            &metrics.connections,
        ),
        (
            "greca_subscription_runs_total",
            "Subscription re-runs triggered by the pump.",
            &metrics.sub_runs,
        ),
        (
            "greca_pushes_total",
            "Push frames delivered to subscribers.",
            &metrics.pushes,
        ),
        (
            "greca_push_errors_total",
            "Push frames that failed to write.",
            &metrics.push_errors,
        ),
        (
            "greca_subscribers_dropped_total",
            "Subscriptions retired after a dead socket.",
            &metrics.subscribers_dropped,
        ),
        (
            "greca_deadline_exceeded_total",
            "Requests expired in the admission queue.",
            &metrics.deadline_exceeded,
        ),
    ];
    for (name, help, counter) in series {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", load(counter));
    }
}

fn render_cache(out: &mut String, cache: &CacheStats) {
    let _ = writeln!(
        out,
        "# HELP greca_cache_lookups_total Result-cache lookups, by outcome."
    );
    let _ = writeln!(out, "# TYPE greca_cache_lookups_total counter");
    let outcomes: [(&str, &AtomicU64); 4] = [
        ("hit", &cache.hits),
        ("miss", &cache.misses),
        ("coalesced", &cache.coalesced),
        ("bypass", &cache.bypasses),
    ];
    for (outcome, counter) in outcomes {
        let _ = writeln!(
            out,
            "greca_cache_lookups_total{{outcome=\"{outcome}\"}} {}",
            load(counter)
        );
    }
    let series: [(&str, &str, &AtomicU64); 5] = [
        (
            "greca_cache_invalidations_total",
            "Wholesale cache invalidations (epoch swaps).",
            &cache.invalidations,
        ),
        (
            "greca_cache_selective_invalidations_total",
            "Selective invalidations applied on publish.",
            &cache.selective_invalidations,
        ),
        (
            "greca_cache_survivors_total",
            "Entries kept across epoch swaps (disjoint footprint).",
            &cache.survivors,
        ),
        (
            "greca_cache_dropped_total",
            "Entries dropped by selective invalidation.",
            &cache.dropped,
        ),
        (
            "greca_cache_capacity_flushes_total",
            "Wholesale flushes forced by the capacity bound.",
            &cache.capacity_flushes,
        ),
    ];
    for (name, help, counter) in series {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", load(counter));
    }
}

fn render_obs(out: &mut String) {
    let rec = obs::recorder();
    let totals = rec.totals();
    let _ = writeln!(
        out,
        "# HELP greca_tracing_enabled Whether span recording is on (GRECA_OBS)."
    );
    let _ = writeln!(out, "# TYPE greca_tracing_enabled gauge");
    let _ = writeln!(out, "greca_tracing_enabled {}", u8::from(rec.is_enabled()));
    let _ = writeln!(out, "# HELP greca_spans_total Spans sealed, by kind.");
    let _ = writeln!(out, "# TYPE greca_spans_total counter");
    for kind in SpanKind::ALL {
        let _ = writeln!(
            out,
            "greca_spans_total{{kind=\"{}\"}} {}",
            kind.label(),
            totals.spans[kind as usize]
        );
    }
    let _ = writeln!(
        out,
        "# HELP greca_phase_seconds_total Wall clock attributed to each pipeline phase across all spans."
    );
    let _ = writeln!(out, "# TYPE greca_phase_seconds_total counter");
    for phase in Phase::ALL {
        let _ = writeln!(
            out,
            "greca_phase_seconds_total{{phase=\"{}\"}} {}",
            phase.label(),
            totals.phase_ns[phase as usize] as f64 / 1e9
        );
    }
    let access: [(&str, u64); 2] = [("sorted", totals.sa), ("random", totals.ra)];
    let _ = writeln!(
        out,
        "# HELP greca_kernel_accesses_total Kernel list accesses charged to traced spans (the paper's SA/RA cost model)."
    );
    let _ = writeln!(out, "# TYPE greca_kernel_accesses_total counter");
    for (mode, count) in access {
        let _ = writeln!(
            out,
            "greca_kernel_accesses_total{{mode=\"{mode}\"}} {count}"
        );
    }
    let _ = writeln!(
        out,
        "# HELP greca_slow_spans_total Spans that crossed the slow-query threshold."
    );
    let _ = writeln!(out, "# TYPE greca_slow_spans_total counter");
    let _ = writeln!(out, "greca_slow_spans_total {}", totals.slow);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn exposition_is_well_formed_and_covers_every_family() {
        let metrics = Metrics::default();
        metrics.query.served(Duration::from_micros(100), true);
        metrics.query.served(Duration::from_micros(300), false);
        metrics.query.shed_one();
        let cache = CacheStats::default();
        cache.hits.fetch_add(3, Ordering::Relaxed);
        let body = render(&metrics, &cache);
        for family in [
            "greca_requests_total{verb=\"query\"} 2",
            "greca_request_errors_total{verb=\"query\"} 1",
            "greca_requests_shed_total{verb=\"query\"} 1",
            "greca_request_duration_seconds_bucket{verb=\"query\",le=\"+Inf\"} 2",
            "greca_request_duration_seconds_count{verb=\"query\"} 2",
            "greca_cache_lookups_total{outcome=\"hit\"} 3",
            "greca_spans_total{kind=\"query\"}",
            "greca_phase_seconds_total{phase=\"kernel\"}",
            "greca_kernel_accesses_total{mode=\"sorted\"}",
            "greca_tracing_enabled",
            "greca_slow_spans_total",
        ] {
            assert!(body.contains(family), "missing: {family}\n{body}");
        }
        // Every non-comment line is `name{labels} value` or `name value`
        // with a parseable numeric value.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("series line has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let metrics = Metrics::default();
        // 100 µs lands in the (64, 128] bucket; 300 µs in (256, 512].
        metrics.query.served(Duration::from_micros(100), true);
        metrics.query.served(Duration::from_micros(300), true);
        let body = render(&metrics, &CacheStats::default());
        let bucket = |le: &str| {
            let needle =
                format!("greca_request_duration_seconds_bucket{{verb=\"query\",le=\"{le}\"}} ");
            body.lines()
                .find(|l| l.starts_with(&needle))
                .and_then(|l| l.rsplit_once(' '))
                .map(|(_, v)| v.parse::<u64>().unwrap())
                .unwrap_or_else(|| panic!("no bucket with le={le}\n{body}"))
        };
        assert_eq!(bucket("0.000064"), 0, "below both samples");
        assert_eq!(bucket("0.000128"), 1, "first sample only");
        assert_eq!(bucket("0.000512"), 2, "both samples");
        assert_eq!(bucket("+Inf"), 2);
    }
}
