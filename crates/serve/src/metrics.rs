//! The metrics registry: lock-free per-verb counters and latency
//! histograms, dumped by the `stats` verb.
//!
//! Histograms use power-of-two microsecond buckets (1 µs … ~67 s), the
//! classic log-scaled layout: recording is one atomic increment, and
//! quantiles come back as the upper bound of the bucket the quantile
//! falls in — within 2× of the true value at any scale, which is what
//! an operator needs from a `stats` endpoint. (The load harness
//! measures its headline p50/p99 client-side from exact samples; these
//! histograms are the *server's* self-observation.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// Number of power-of-two buckets: bucket `i` holds samples in
/// `(2^(i-1), 2^i]` µs; the last bucket absorbs everything larger.
const BUCKETS: usize = 27;

/// A log-scaled latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        // `2^i` belongs to bucket `i` per the `(2^(i-1), 2^i]` layout:
        // classify by the bit length of `us - 1` (0 and 1 µs share
        // bucket 0, whose bound is 1 µs).
        let bucket = (64 - us.saturating_sub(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, microseconds (the Prometheus
    /// `_sum` series).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), index-aligned with
    /// [`Histogram::bucket_bound_us`].
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound of bucket `i` in microseconds (`2^i`).
    pub fn bucket_bound_us(i: usize) -> u64 {
        1u64 << i.min(BUCKETS - 1)
    }

    /// Number of buckets (for exposition loops).
    pub const fn num_buckets() -> usize {
        BUCKETS
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Upper bound (µs) of the bucket the `q`-quantile falls in; 0 when
    /// empty. `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// The histogram as a JSON object (count, mean, p50/p90/p99 bucket
    /// bounds in µs).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::num(self.count() as f64)),
            ("mean_us", Json::num(self.mean_us())),
            ("p50_us", Json::num(self.quantile_us(0.50) as f64)),
            ("p90_us", Json::num(self.quantile_us(0.90) as f64)),
            ("p99_us", Json::num(self.quantile_us(0.99) as f64)),
        ])
    }
}

/// One verb's counters.
#[derive(Debug, Default)]
pub struct VerbMetrics {
    /// Requests admitted and executed (latency recorded for these).
    pub requests: AtomicU64,
    /// Requests refused by admission control (`overloaded` replies).
    pub shed: AtomicU64,
    /// Requests that executed but answered with a typed error.
    pub errors: AtomicU64,
    /// End-to-end serve latency (queue wait + execution + encoding).
    pub latency: Histogram,
}

impl VerbMetrics {
    /// Record one served request.
    pub fn served(&self, elapsed: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(elapsed);
    }

    /// Record one shed request.
    pub fn shed_one(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// The verb's counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "requests",
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            ("shed", Json::num(self.shed.load(Ordering::Relaxed) as f64)),
            (
                "errors",
                Json::num(self.errors.load(Ordering::Relaxed) as f64),
            ),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// The server-wide registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `query` verb counters.
    pub query: VerbMetrics,
    /// `subscribe`/`unsubscribe` verb counters.
    pub subscribe: VerbMetrics,
    /// `ingest` verb counters.
    pub ingest: VerbMetrics,
    /// `stats` verb counters.
    pub stats: VerbMetrics,
    /// `health` verb counters.
    pub health: VerbMetrics,
    /// Unparseable or ill-formed request lines.
    pub protocol_errors: AtomicU64,
    /// Epoch swaps observed via the publish hook.
    pub publishes: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Subscription re-runs triggered by publishes (kernel executions
    /// on behalf of continuous queries, cache-coalesced or not).
    pub sub_runs: AtomicU64,
    /// Push frames written to subscribers (top-k actually changed).
    pub pushes: AtomicU64,
    /// Push frames that failed to write (subscriber gone; the
    /// subscription is dropped).
    pub push_errors: AtomicU64,
    /// Subscriptions retired because their connection's write half
    /// failed mid-push (a strict subset of `push_errors` ticks: one
    /// per subscription actually unregistered).
    pub subscribers_dropped: AtomicU64,
    /// Requests answered `deadline_exceeded`: their `deadline_ms`
    /// budget ran out in the queue and the work was skipped.
    pub deadline_exceeded: AtomicU64,
}

impl Metrics {
    /// Counter for one verb label.
    pub fn verb(&self, verb: &str) -> &VerbMetrics {
        match verb {
            "query" => &self.query,
            "subscribe" | "unsubscribe" => &self.subscribe,
            "ingest" => &self.ingest,
            "stats" => &self.stats,
            _ => &self.health,
        }
    }

    /// The registry as a JSON object.
    pub fn to_json(&self) -> Json {
        let load = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        Json::obj(vec![
            ("query", self.query.to_json()),
            ("subscribe", self.subscribe.to_json()),
            ("ingest", self.ingest.to_json()),
            ("stats", self.stats.to_json()),
            ("health", self.health.to_json()),
            ("protocol_errors", load(&self.protocol_errors)),
            ("publishes_observed", load(&self.publishes)),
            ("connections", load(&self.connections)),
            ("sub_runs", load(&self.sub_runs)),
            ("push_count", load(&self.pushes)),
            ("push_errors", load(&self.push_errors)),
            ("subscribers_dropped", load(&self.subscribers_dropped)),
            ("deadline_exceeded", load(&self.deadline_exceeded)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_scaled() {
        let h = Histogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(10));
        assert_eq!(h.count(), 3);
        // p50 falls in the 100 µs sample's bucket (2^7 = 128).
        assert_eq!(h.quantile_us(0.5), 128);
        // p99 falls in the 10 ms sample's bucket (2^14 = 16384).
        assert_eq!(h.quantile_us(0.99), 16_384);
        assert!((h.mean_us() - (1.0 + 100.0 + 10_000.0) / 3.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_on_empty_and_saturated_histograms() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        h.record(Duration::from_secs(10_000)); // beyond the last bucket
        assert_eq!(h.quantile_us(0.5), 1 << (BUCKETS - 1));
    }

    /// Which bucket one `us`-microsecond sample lands in.
    fn bucket_of(us: u64) -> usize {
        let h = Histogram::default();
        h.record(Duration::from_micros(us));
        let counts = h.bucket_counts();
        let hits: Vec<usize> = (0..BUCKETS).filter(|&i| counts[i] == 1).collect();
        assert_eq!(hits.len(), 1, "exactly one bucket for {us} µs");
        hits[0]
    }

    #[test]
    fn bucket_edges_land_deterministically() {
        // Exact powers of two belong to their own bucket — the
        // `(2^(i-1), 2^i]` contract at every edge — and the first
        // value past an edge starts the next bucket.
        for i in 1..(BUCKETS - 1) {
            let edge = 1u64 << i;
            assert_eq!(bucket_of(edge), i, "2^{i} µs is the bucket-{i} bound");
            assert_eq!(
                bucket_of(edge + 1),
                i + 1,
                "2^{i}+1 µs opens bucket {}",
                i + 1
            );
        }
        // Quantile bounds agree with the placement: a bucket's bound
        // is exactly its edge value.
        let h = Histogram::default();
        h.record(Duration::from_micros(128));
        assert_eq!(h.quantile_us(0.5), 128, "an exact edge reports itself");
    }

    #[test]
    fn zero_and_one_microsecond_share_the_first_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 1, "bucket 0's bound is 1 µs");
    }

    #[test]
    fn overflow_saturates_into_the_last_bucket() {
        // Anything past the last edge lands in the overflow bucket,
        // deterministically — including the absurd.
        let last = BUCKETS - 1;
        assert_eq!(bucket_of(1u64 << 40), last);
        assert_eq!(bucket_of(u64::MAX), last);
        assert_eq!(bucket_of((1u64 << last) + 1), last);
        // The last *in-range* edge still belongs to its own bucket.
        assert_eq!(bucket_of(1u64 << (last - 1)), last - 1);
    }

    #[test]
    fn bucket_accessors_expose_counts_and_sum() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(100));
        assert_eq!(h.sum_us(), 108);
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(counts[2], 1, "3 µs → (2,4]");
        assert_eq!(counts[3], 1, "5 µs → (4,8]");
        assert_eq!(counts[7], 1, "100 µs → (64,128]");
        assert_eq!(Histogram::bucket_bound_us(7), 128);
        assert_eq!(Histogram::num_buckets(), BUCKETS);
    }

    #[test]
    fn verb_metrics_track_outcomes() {
        let m = VerbMetrics::default();
        m.served(Duration::from_micros(10), true);
        m.served(Duration::from_micros(20), false);
        m.shed_one();
        let json = m.to_json();
        assert_eq!(json.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("errors").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("shed").and_then(Json::as_u64), Some(1));
    }
}
