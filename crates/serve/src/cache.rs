//! The epoch-aware result cache: memoized [`TopKResult`]s keyed by
//! canonical query identity, selectively invalidated on epoch swaps
//! (entries whose [`QueryFootprint`] is disjoint from the publish's
//! dirty set *survive*), with single-flight stampede protection.
//!
//! A production group-recommendation deployment sees the *same* query
//! many times — the hot groups re-ask every few seconds, dashboards
//! poll, retries duplicate — and GRECA is deterministic over one
//! epoch's substrate, so re-running the kernel for an identical
//! `(epoch, query)` pair is pure waste. The cache closes that gap with
//! three guarantees:
//!
//! * **Bit-identity** — a cached response is the very value a direct
//!   kernel run produced (shared by `Arc`, never recomputed, never
//!   transformed), so serving from cache is observably identical to
//!   serving from the engine (property-tested in
//!   `tests/cache_correctness.rs`).
//! * **No stale epochs** — entries are scoped to one
//!   [`LiveEngine`](greca_core::LiveEngine) epoch. The serving layer
//!   registers [`ResultCache::apply_publish`] as an
//!   `on_publish_delta` hook: entries whose recorded footprint is
//!   *disjoint* from the publish's dirty set are re-stamped to the new
//!   epoch and kept (they are bit-identical there by the dirty-set
//!   contract — see [`QueryFootprint`]), everything else — and
//!   everything, on the full-rebuild fallback, where the dirty set is
//!   only a lower bound — is dropped. And because every lookup also
//!   carries the *pinned* epoch of its own query, even a racing lookup
//!   can never read an entry from a different epoch (the lazy epoch
//!   check is a second, independent guard — hook or no hook, stale
//!   results are unreachable).
//! * **No stampedes** — the first miss for a key installs an in-flight
//!   marker and computes; concurrent identical queries *wait on that
//!   computation* instead of re-entering the kernel, so `n`
//!   simultaneous identical requests cost one kernel execution, not
//!   `n` (the "thundering herd" guard; accounted as `coalesced`).
//!
//! Capacity is bounded the same way the engine's affinity cache is:
//! reaching the cap flushes wholesale (hot keys repopulate in one
//! miss each) rather than maintaining LRU precision.

use greca_core::{PublishDelta, QueryError, QueryFootprint, QueryKey, TopKResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident entry; no kernel work.
    Hit,
    /// Computed by this caller and (on success) installed.
    Miss,
    /// Waited on a concurrent identical computation (stampede
    /// protection); no kernel work.
    Coalesced,
    /// The caller's pinned epoch was older than the cache's — computed
    /// directly without touching the map (only possible in the narrow
    /// race between pinning and lookup while a publish lands).
    Bypass,
}

impl CacheOutcome {
    /// Wire label for responses and stats.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Why a lookup produced no result.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The engine rejected the query (never cached; every identical
    /// request re-validates and gets its own typed error).
    Query(QueryError),
    /// The computing thread panicked; waiters get this instead of
    /// hanging forever.
    ComputePanicked,
}

/// Monotonic counters, readable without the map lock.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups served from resident entries.
    pub hits: AtomicU64,
    /// Lookups that computed (and tried to install) a fresh entry.
    pub misses: AtomicU64,
    /// Lookups that waited on a concurrent identical computation.
    pub coalesced: AtomicU64,
    /// Lookups that bypassed the map entirely (older pinned epoch).
    pub bypasses: AtomicU64,
    /// Wholesale invalidations (epoch swaps observed).
    pub invalidations: AtomicU64,
    /// Wholesale flushes forced by the capacity bound.
    pub capacity_flushes: AtomicU64,
    /// Selective invalidations applied ([`ResultCache::apply_publish`]
    /// calls that kept the map, possibly emptied).
    pub selective_invalidations: AtomicU64,
    /// Entries re-stamped and kept across epoch swaps (footprint
    /// disjoint from the dirty set).
    pub survivors: AtomicU64,
    /// Ready entries dropped by selective invalidation (footprint
    /// intersecting the dirty set; in-flight markers are not counted).
    pub dropped: AtomicU64,
}

impl CacheStats {
    fn load(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Hit rate over all map-served lookups (hits + coalesced count as
    /// avoided kernel runs).
    pub fn hit_rate(&self) -> f64 {
        let avoided = Self::load(&self.hits) + Self::load(&self.coalesced);
        let total = avoided + Self::load(&self.misses) + Self::load(&self.bypasses);
        if total == 0 {
            0.0
        } else {
            avoided as f64 / total as f64
        }
    }

    /// Fraction of entries that survived across all selective
    /// invalidations (survivors / (survivors + dropped); 0 when no
    /// selective invalidation touched any entry).
    pub fn survival_rate(&self) -> f64 {
        let kept = Self::load(&self.survivors);
        let total = kept + Self::load(&self.dropped);
        if total == 0 {
            0.0
        } else {
            kept as f64 / total as f64
        }
    }
}

/// A single-flight cell: the first computer fills it, waiters block on
/// the condvar.
struct InFlight {
    done: Mutex<Option<Result<Arc<TopKResult>, CacheError>>>,
    cv: Condvar,
}

enum Slot {
    /// A resident value plus the footprint recorded when it was
    /// installed — the state slice the value depends on, consulted by
    /// [`ResultCache::apply_publish`] to decide survival.
    Ready {
        value: Arc<TopKResult>,
        footprint: QueryFootprint,
    },
    InFlight(Arc<InFlight>),
}

struct CacheState {
    /// The epoch the resident entries belong to.
    epoch: u64,
    map: HashMap<QueryKey, Slot>,
}

/// The cache. See the module docs for the contract.
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    /// Lookup/invalidation counters.
    pub stats: CacheStats,
}

/// Unwind cleanup for an in-flight computation: if the computing
/// closure panics, evict the dead in-flight marker from the map (so
/// future lookups recompute instead of coalescing onto a corpse) and
/// release the waiters with a typed error instead of hanging them.
struct FlightGuard<'c> {
    cache: &'c ResultCache,
    key: QueryKey,
    cell: Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.evict_in_flight(&self.key, &self.cell);
            fill(&self.cell, Err(CacheError::ComputePanicked));
        }
    }
}

fn fill(cell: &InFlight, value: Result<Arc<TopKResult>, CacheError>) {
    let mut done = cell
        .done
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *done = Some(value);
    cell.cv.notify_all();
}

fn lock_state(m: &Mutex<CacheState>) -> MutexGuard<'_, CacheState> {
    // A panic can only poison this lock between pure map operations
    // (no user code runs under it), so the state is structurally sound;
    // recover rather than wedging the serving path.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

impl ResultCache {
    /// An empty cache that starts at epoch 0 and flushes wholesale at
    /// `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            state: Mutex::new(CacheState {
                epoch: 0,
                map: HashMap::new(),
            }),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The epoch the resident entries belong to.
    pub fn epoch(&self) -> u64 {
        lock_state(&self.state).epoch
    }

    /// Resident entry count (in-flight markers included).
    pub fn len(&self) -> usize {
        lock_state(&self.state).map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advance to `epoch`, clearing every resident entry — the
    /// *wholesale* invalidation path (the
    /// [`LiveEngine::on_publish`](greca_core::LiveEngine::on_publish)
    /// hook target, and the baseline [`apply_publish`](Self::apply_publish)
    /// falls back to under a full rebuild). Regressing or same-epoch
    /// calls are no-ops (epochs are monotonic; a late hook delivery
    /// must not clear a newer cache).
    pub fn invalidate_to(&self, epoch: u64) {
        let mut state = lock_state(&self.state);
        if epoch > state.epoch {
            state.epoch = epoch;
            state.map.clear();
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Advance to `delta.epoch` *selectively* — the
    /// [`LiveEngine::on_publish_delta`](greca_core::LiveEngine::on_publish_delta)
    /// hook target. Ready entries whose recorded footprint the delta
    /// does not affect are re-stamped to the new epoch and kept: by the
    /// dirty-set contract they are bit-identical to a cold re-execution
    /// there (property-tested in `tests/survival_properties.rs`).
    /// Everything else is dropped, and so is the whole map when the
    /// publish fell back to a full rebuild (the dirty set is then only
    /// a lower bound). In-flight markers are always dropped — their
    /// computation pinned the old epoch, and the install step's own
    /// epoch check already refuses them; waiters still get their value
    /// through the flight cell. Regressing or same-epoch deltas are
    /// no-ops.
    pub fn apply_publish(&self, delta: &PublishDelta) {
        let mut state = lock_state(&self.state);
        if delta.epoch <= state.epoch {
            return;
        }
        state.epoch = delta.epoch;
        if delta.full_rebuild {
            let dropped = state
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            state.map.clear();
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            self.stats
                .dropped
                .fetch_add(dropped as u64, Ordering::Relaxed);
            return;
        }
        let ready_before = state
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        state.map.retain(|_, slot| match slot {
            Slot::Ready { footprint, .. } => !delta.affects(footprint),
            Slot::InFlight(_) => false,
        });
        let kept = state.map.len();
        drop(state);
        self.stats
            .selective_invalidations
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .survivors
            .fetch_add(kept as u64, Ordering::Relaxed);
        self.stats
            .dropped
            .fetch_add((ready_before - kept) as u64, Ordering::Relaxed);
    }

    /// Drop `key`'s in-flight marker if (and only if) it is still
    /// `cell` — the panic-path cleanup.
    fn evict_in_flight(&self, key: &QueryKey, cell: &Arc<InFlight>) {
        let mut state = lock_state(&self.state);
        let ours = matches!(
            state.map.get(key),
            Some(Slot::InFlight(resident)) if Arc::ptr_eq(resident, cell)
        );
        if ours {
            state.map.remove(key);
        }
    }

    /// Non-blocking lookup: the resident value for `key` at the
    /// caller's pinned `epoch`, or `None` when absent, still in flight,
    /// or pinned behind the cache's epoch. This is the serving layer's
    /// **fast path** — a hit is answered on the connection thread
    /// without touching the admission queue, because it costs no
    /// kernel work (the same reasoning that keeps `stats`/`health`
    /// inline). Counts a hit when it returns `Some`; misses are
    /// counted by the [`get_or_compute`](Self::get_or_compute) that
    /// follows.
    pub fn try_get(&self, epoch: u64, key: &QueryKey) -> Option<Arc<TopKResult>> {
        let mut state = lock_state(&self.state);
        if epoch > state.epoch {
            state.epoch = epoch;
            state.map.clear();
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if epoch < state.epoch {
            return None; // the queued path will bypass
        }
        match state.map.get(key) {
            Some(Slot::Ready { value, .. }) => {
                let v = Arc::clone(value);
                drop(state);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            _ => None,
        }
    }

    /// Install a value for `key` at `epoch` with an *explicit*
    /// footprint, replacing any resident slot. This is the pre-seeding
    /// path (cache warmers) and the fault-injection path for the
    /// survival property tests — which deliberately install widened and
    /// narrowed footprints to prove the survival invariants would catch
    /// a wrong one. The serving path never calls this: it derives the
    /// footprint from the key at install time.
    pub fn install(
        &self,
        epoch: u64,
        key: QueryKey,
        footprint: QueryFootprint,
        value: Arc<TopKResult>,
    ) {
        let mut state = lock_state(&self.state);
        if epoch > state.epoch {
            state.epoch = epoch;
            state.map.clear();
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        } else if epoch < state.epoch {
            return;
        }
        if state.map.len() >= self.capacity {
            state.map.clear();
            self.stats.capacity_flushes.fetch_add(1, Ordering::Relaxed);
        }
        state.map.insert(key, Slot::Ready { value, footprint });
    }

    /// Look `key` up at the caller's pinned `epoch`; on a miss, run
    /// `compute` exactly once across all concurrent identical callers
    /// and share the value. Errors are returned to every waiter but
    /// never cached.
    pub fn get_or_compute(
        &self,
        epoch: u64,
        key: QueryKey,
        compute: impl FnOnce() -> Result<TopKResult, QueryError>,
    ) -> (Result<Arc<TopKResult>, CacheError>, CacheOutcome) {
        let cell = {
            let mut state = lock_state(&self.state);
            // Lazy epoch guard: even without the publish hook, an entry
            // from a different epoch is unreachable.
            if epoch > state.epoch {
                state.epoch = epoch;
                state.map.clear();
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            } else if epoch < state.epoch {
                // This caller pinned before the last swap; its snapshot
                // is consistent but must not populate (or read) the
                // newer cache.
                drop(state);
                self.stats.bypasses.fetch_add(1, Ordering::Relaxed);
                let result = compute().map(Arc::new).map_err(CacheError::Query);
                return (result, CacheOutcome::Bypass);
            }
            match state.map.get(&key) {
                Some(Slot::Ready { value, .. }) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(value)), CacheOutcome::Hit);
                }
                Some(Slot::InFlight(cell)) => {
                    let cell = Arc::clone(cell);
                    drop(state);
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut done = cell
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while done.is_none() {
                        done = cell
                            .cv
                            .wait(done)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    return (
                        done.clone().expect("loop exits only when filled"),
                        CacheOutcome::Coalesced,
                    );
                }
                None => {
                    if state.map.len() >= self.capacity {
                        state.map.clear();
                        self.stats.capacity_flushes.fetch_add(1, Ordering::Relaxed);
                    }
                    let cell = Arc::new(InFlight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    state
                        .map
                        .insert(key.clone(), Slot::InFlight(Arc::clone(&cell)));
                    cell
                }
            }
        };

        // Compute outside the lock; if the kernel panics, the unwind
        // guard evicts the marker and releases the waiters with a
        // typed error.
        let mut guard = FlightGuard {
            cache: self,
            key: key.clone(),
            cell: Arc::clone(&cell),
            armed: true,
        };
        let result = compute().map(Arc::new).map_err(CacheError::Query);
        guard.armed = false;
        drop(guard);

        {
            let mut state = lock_state(&self.state);
            // Only touch the map if our in-flight marker is still the
            // resident slot (an epoch swap or capacity flush may have
            // dropped it; a successor computation may own the key now).
            let ours = matches!(
                state.map.get(&key),
                Some(Slot::InFlight(resident)) if Arc::ptr_eq(resident, &cell)
            );
            if ours {
                match &result {
                    Ok(v) if state.epoch == epoch => {
                        let footprint = key.footprint();
                        state.map.insert(
                            key,
                            Slot::Ready {
                                value: Arc::clone(v),
                                footprint,
                            },
                        );
                    }
                    _ => {
                        state.map.remove(&key);
                    }
                }
            }
        }
        fill(&cell, result.clone());
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        (result, CacheOutcome::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_core::{AccessStats, StopReason};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    // QueryKey has no public constructor by design; unit tests reuse a
    // real engine over a micro-world to mint keys.
    use greca_affinity::{PopulationAffinity, TableAffinitySource};
    use greca_cf::RawRatings;
    use greca_dataset::{
        Granularity, Group, ItemId, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
    };

    fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(2), ItemId(2), 3.0, 0);
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(1), UserId(2), 0.5);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let users = vec![UserId(0), UserId(1), UserId(2)];
        let pop = PopulationAffinity::build(&src, &users, &tl);
        (b.build(), pop, (0..4).map(ItemId).collect())
    }

    fn fake_result(marker: u64) -> TopKResult {
        TopKResult {
            items: Vec::new(),
            stats: AccessStats {
                sa: marker,
                ra: 0,
                total_entries: 0,
            },
            sweeps: 0,
            stop_reason: StopReason::Exhausted,
        }
    }

    fn key_for(k: usize) -> QueryKey {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = greca_core::GrecaEngine::new(&raw, &pop);
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        engine.query(&group).items(&items).top(k).cache_key()
    }

    #[test]
    fn hit_after_miss_shares_the_same_allocation() {
        let cache = ResultCache::new(64);
        let (first, o1) = cache.get_or_compute(0, key_for(1), || Ok(fake_result(7)));
        assert_eq!(o1, CacheOutcome::Miss);
        let (second, o2) = cache.get_or_compute(0, key_for(1), || panic!("must not recompute"));
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first.unwrap(), &second.unwrap()));
        assert_eq!(cache.stats.hit_rate(), 0.5);
    }

    #[test]
    fn epoch_swap_invalidates_and_regression_is_a_noop() {
        let cache = ResultCache::new(64);
        let _ = cache.get_or_compute(0, key_for(1), || Ok(fake_result(1)));
        assert_eq!(cache.len(), 1);
        cache.invalidate_to(1);
        assert_eq!((cache.len(), cache.epoch()), (0, 1));
        // Stale-hook delivery (or equal epoch) must not clear anew.
        let _ = cache.get_or_compute(1, key_for(1), || Ok(fake_result(2)));
        cache.invalidate_to(1);
        cache.invalidate_to(0);
        assert_eq!((cache.len(), cache.epoch()), (1, 1));
        assert_eq!(cache.stats.invalidations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn newer_pin_clears_lazily_and_older_pin_bypasses() {
        let cache = ResultCache::new(64);
        let _ = cache.get_or_compute(3, key_for(1), || Ok(fake_result(3)));
        assert_eq!(cache.epoch(), 3);
        // An older pin computes directly: correct for its snapshot,
        // invisible to the newer cache.
        let (r, outcome) = cache.get_or_compute(2, key_for(1), || Ok(fake_result(2)));
        assert_eq!(outcome, CacheOutcome::Bypass);
        assert_eq!(r.unwrap().stats.sa, 2);
        let (r, outcome) = cache.get_or_compute(3, key_for(1), || unreachable!());
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(r.unwrap().stats.sa, 3, "resident entry untouched");
    }

    #[test]
    fn errors_are_shared_with_waiters_but_never_cached() {
        let cache = ResultCache::new(64);
        let (r, outcome) = cache.get_or_compute(0, key_for(1), || Err(QueryError::ZeroK));
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(r.unwrap_err(), CacheError::Query(QueryError::ZeroK));
        assert_eq!(cache.len(), 0, "errors leave no entry behind");
        let (_, outcome) = cache.get_or_compute(0, key_for(1), || Ok(fake_result(1)));
        assert_eq!(
            outcome,
            CacheOutcome::Miss,
            "retried, not served stale error"
        );
    }

    #[test]
    fn concurrent_identical_lookups_run_the_kernel_once() {
        const WAITERS: usize = 8;
        let cache = Arc::new(ResultCache::new(64));
        let executions = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(WAITERS + 1));
        let key = key_for(1);
        let results: Vec<(u64, CacheOutcome)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WAITERS + 1)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let executions = Arc::clone(&executions);
                    let gate = Arc::clone(&gate);
                    let key = key.clone();
                    s.spawn(move || {
                        gate.wait();
                        let (r, outcome) = cache.get_or_compute(0, key, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Hold the computation long enough that the
                            // herd piles onto the in-flight cell.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok(fake_result(42))
                        });
                        (r.unwrap().stats.sa, outcome)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "one kernel run for the whole herd"
        );
        assert!(results.iter().all(|(sa, _)| *sa == 42));
        assert_eq!(
            results
                .iter()
                .filter(|(_, o)| *o == CacheOutcome::Miss)
                .count(),
            1
        );
        // Everyone else either coalesced onto the in-flight run or hit
        // the entry it installed.
        assert!(results.iter().all(|(_, o)| matches!(
            o,
            CacheOutcome::Miss | CacheOutcome::Coalesced | CacheOutcome::Hit
        )));
    }

    #[test]
    fn panicking_computation_releases_waiters() {
        let cache = Arc::new(ResultCache::new(64));
        let gate = Arc::new(Barrier::new(2));
        let key = key_for(1);
        std::thread::scope(|s| {
            let panicker = {
                let cache = Arc::clone(&cache);
                let gate = Arc::clone(&gate);
                let key = key.clone();
                s.spawn(move || {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cache.get_or_compute(0, key, || {
                            gate.wait();
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            panic!("kernel bug")
                        })
                    }));
                })
            };
            gate.wait(); // the in-flight marker is installed
            let (r, outcome) = cache.get_or_compute(0, key.clone(), || Ok(fake_result(1)));
            // Either we coalesced onto the doomed run (typed error) or
            // it already unwound and we recomputed cleanly.
            match outcome {
                CacheOutcome::Coalesced => {
                    assert_eq!(r.unwrap_err(), CacheError::ComputePanicked)
                }
                CacheOutcome::Miss => assert!(r.is_ok()),
                other => panic!("unexpected outcome {other:?}"),
            }
            panicker.join().unwrap();
        });
        // The poisoned run left no resident garbage: a fresh lookup
        // computes and caches normally.
        let (r, _) = cache.get_or_compute(0, key, || Ok(fake_result(9)));
        assert_eq!(r.unwrap().stats.sa, 9);
    }

    fn delta(epoch: u64, users: &[u32], full_rebuild: bool) -> PublishDelta {
        PublishDelta {
            epoch,
            dirty: Arc::new(greca_cf::DirtySet {
                users: users.iter().map(|&u| UserId(u)).collect(),
                pairs: Vec::new(),
            }),
            periods: Vec::new(),
            full_rebuild,
        }
    }

    #[test]
    fn selective_invalidation_keeps_disjoint_entries() {
        let cache = ResultCache::new(64);
        let _ = cache.get_or_compute(0, key_for(1), || Ok(fake_result(1)));
        let _ = cache.get_or_compute(0, key_for(2), || Ok(fake_result(2)));
        // Members are {0, 1}; dirtying user 2 touches neither entry.
        cache.apply_publish(&delta(1, &[2], false));
        assert_eq!((cache.len(), cache.epoch()), (2, 1));
        let (r, o) = cache.get_or_compute(1, key_for(1), || unreachable!("survivor"));
        assert_eq!(o, CacheOutcome::Hit);
        assert_eq!(r.unwrap().stats.sa, 1);
        // Dirtying a member drops both entries (same group).
        cache.apply_publish(&delta(2, &[1], false));
        assert_eq!((cache.len(), cache.epoch()), (0, 2));
        assert_eq!(cache.stats.survivors.load(Ordering::Relaxed), 2);
        assert_eq!(cache.stats.dropped.load(Ordering::Relaxed), 2);
        assert!((cache.stats.survival_rate() - 0.5).abs() < 1e-12);
        // Full rebuild: disjoint dirty set, everything dropped anyway.
        let _ = cache.get_or_compute(2, key_for(1), || Ok(fake_result(3)));
        cache.apply_publish(&delta(3, &[2], true));
        assert_eq!((cache.len(), cache.epoch()), (0, 3));
        // Regression / same epoch: no-op.
        cache.apply_publish(&delta(3, &[0], false));
        assert_eq!(cache.epoch(), 3);
    }

    #[test]
    fn install_respects_epoch_and_explicit_footprint() {
        let cache = ResultCache::new(64);
        let key = key_for(1);
        // A footprint narrowed away from the real members survives a
        // publish that dirties a member — exactly the wrongness the
        // mutation tests rely on install() to inject.
        let narrowed = key.footprint().with_members(vec![UserId(7)]);
        cache.install(0, key.clone(), narrowed, Arc::new(fake_result(9)));
        cache.apply_publish(&delta(1, &[0], false));
        let (r, o) = cache.get_or_compute(1, key.clone(), || unreachable!());
        assert_eq!(o, CacheOutcome::Hit);
        assert_eq!(r.unwrap().stats.sa, 9);
        // Stale-epoch install is refused.
        cache.install(0, key.clone(), key.footprint(), Arc::new(fake_result(1)));
        let (r, _) = cache.get_or_compute(1, key, || unreachable!());
        assert_eq!(r.unwrap().stats.sa, 9);
    }

    #[test]
    fn capacity_bound_flushes_wholesale() {
        let cache = ResultCache::new(2);
        for k in 1..=3 {
            let _ = cache.get_or_compute(0, key_for(k), || Ok(fake_result(k as u64)));
        }
        assert_eq!(cache.stats.capacity_flushes.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1, "flush then the newest entry");
    }
}
