//! Micro-benchmarks of the substrates underneath GRECA: CF fitting and
//! prediction, preference-list construction, and the affinity index.

use criterion::{criterion_group, criterion_main, Criterion};
use greca_affinity::{PopulationAffinity, SocialAffinitySource};
use greca_cf::{CfConfig, PreferenceProvider, UserCfModel};
use greca_dataset::{ItemId, MovieLensConfig, SocialConfig, Timeline, UserId};
use std::hint::black_box;

fn bench_cf(c: &mut Criterion) {
    let ml = MovieLensConfig::small().generate();
    let mut g = c.benchmark_group("cf");
    g.bench_function("fit_200_users", |b| {
        b.iter(|| black_box(UserCfModel::fit(&ml.matrix, CfConfig::default())))
    });
    let model = UserCfModel::fit(&ml.matrix, CfConfig::default());
    g.bench_function("predict_one", |b| {
        b.iter(|| black_box(model.predict(UserId(3), ItemId(17))))
    });
    let items: Vec<ItemId> = ml.matrix.items().collect();
    g.bench_function("preference_list_400_items", |b| {
        b.iter(|| black_box(model.preference_list(UserId(3), &items)))
    });
    g.finish();
}

fn bench_affinity(c: &mut Criterion) {
    let net = SocialConfig::paper_scale().generate();
    let source = SocialAffinitySource::new(&net);
    let universe: Vec<UserId> = net.users().collect();
    let tl = Timeline::paper_default();
    let mut g = c.benchmark_group("affinity");
    g.bench_function("build_population_index", |b| {
        b.iter(|| black_box(PopulationAffinity::build(&source, &universe, &tl)))
    });
    let pop = PopulationAffinity::build(&source, &universe, &tl);
    let group = greca_dataset::Group::new(universe[..6].to_vec()).expect("six users");
    g.bench_function("group_view", |b| {
        b.iter(|| {
            black_box(pop.group_view(
                &group,
                tl.num_periods() - 1,
                greca_affinity::AffinityMode::Discrete,
            ))
        })
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("movielens_small", |b| {
        b.iter(|| black_box(MovieLensConfig::small().generate()))
    });
    g.bench_function("social_paper_scale", |b| {
        b.iter(|| black_box(SocialConfig::paper_scale().generate()))
    });
    g.finish();
}

criterion_group!(benches, bench_cf, bench_affinity, bench_generators);
criterion_main!(benches);
