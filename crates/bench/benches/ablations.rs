//! Ablation benches for the design choices called out in `DESIGN.md` §6:
//!
//! * **stopping rule** — GRECA's buffer condition vs threshold-only vs
//!   no early stop (the paper's key novelty, §3.2);
//! * **affinity list layout** — the paper's decomposed `n−1` lists vs a
//!   single combined list (§3.1);
//! * **incremental index** — appending one period vs rebuilding the
//!   whole population index (§1's maintenance claim);
//! * **check cadence** — every-sweep (Algorithm 1 verbatim) vs adaptive.

use criterion::{criterion_group, criterion_main, Criterion};
use greca_affinity::{PopulationAffinity, SocialAffinitySource};
use greca_bench::{PerfSettings, PerfWorld};
use greca_core::{Algorithm, CheckInterval, GrecaConfig, GrecaEngine, ListLayout, StoppingRule};
use greca_dataset::UserId;
use std::hint::black_box;

fn bench_stopping_rules(c: &mut Criterion) {
    let pw = PerfWorld::build_small();
    let cf = pw.cf();
    let settings = PerfSettings {
        num_items: 500,
        ..PerfSettings::default()
    };
    let group = pw.random_groups(1, 6, 11)[0].clone();
    let prepared = pw.prepare_group(&cf, &group, &settings);

    let mut g = c.benchmark_group("ablation_stopping");
    for (name, rule) in [
        ("buffer(greca)", StoppingRule::Greca),
        ("threshold_only", StoppingRule::ThresholdOnly),
        ("exhaustive", StoppingRule::Exhaustive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    prepared.run_algorithm(Algorithm::Greca(
                        GrecaConfig::top(10)
                            .stopping(rule)
                            .check_interval(CheckInterval::Adaptive),
                    )),
                )
            })
        });
    }
    g.finish();
}

fn bench_list_layout(c: &mut Criterion) {
    let pw = PerfWorld::build_small();
    let cf = pw.cf();
    let settings = PerfSettings {
        num_items: 500,
        ..PerfSettings::default()
    };
    let group = pw.random_groups(1, 6, 13)[0].clone();
    let items = pw.items(settings.num_items);
    let engine = GrecaEngine::new(&cf, &pw.world().population);

    let mut g = c.benchmark_group("ablation_layout");
    for (name, layout) in [
        ("decomposed", ListLayout::Decomposed),
        ("single", ListLayout::Single),
    ] {
        let prepared = engine
            .query(&group)
            .items(&items)
            .affinity(settings.mode)
            .layout(layout)
            .normalize_rpref(false)
            .algorithm(Algorithm::Greca(
                GrecaConfig::top(10).check_interval(CheckInterval::Adaptive),
            ))
            .prepare()
            .expect("valid layout-ablation query");
        g.bench_function(name, |b| b.iter(|| black_box(prepared.run())));
    }
    g.finish();
}

fn bench_incremental_index(c: &mut Criterion) {
    let pw = PerfWorld::build_small();
    let world = pw.world();
    let source = SocialAffinitySource::new(&world.social);
    let universe: Vec<UserId> = world.study_users();
    let timeline = &world.timeline;
    let all_but_last: Vec<_> = timeline.periods()[..timeline.num_periods() - 1].to_vec();
    let last = *timeline.periods().last().expect("non-empty timeline");

    let mut g = c.benchmark_group("ablation_incremental");
    // Incremental: one append on top of a prebuilt prefix.
    let mut prefix = PopulationAffinity::new_static_only(&source, &universe);
    for &p in &all_but_last {
        prefix.append_period(&source, p);
    }
    g.bench_function("append_one_period", |b| {
        b.iter_with_setup(
            || prefix.clone(),
            |mut idx| {
                idx.append_period(&source, last);
                black_box(idx)
            },
        )
    });
    // Full recompute of every period from scratch.
    g.bench_function("rebuild_all_periods", |b| {
        b.iter(|| black_box(PopulationAffinity::build(&source, &universe, timeline)))
    });
    g.finish();
}

fn bench_check_interval(c: &mut Criterion) {
    let pw = PerfWorld::build_small();
    let cf = pw.cf();
    let settings = PerfSettings {
        num_items: 500,
        ..PerfSettings::default()
    };
    let group = pw.random_groups(1, 6, 17)[0].clone();
    let prepared = pw.prepare_group(&cf, &group, &settings);

    let mut g = c.benchmark_group("ablation_check_interval");
    for (name, ci) in [
        ("every_sweep", CheckInterval::EverySweep),
        ("adaptive", CheckInterval::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    prepared
                        .run_algorithm(Algorithm::Greca(GrecaConfig::top(10).check_interval(ci))),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stopping_rules,
    bench_list_layout,
    bench_incremental_index,
    bench_check_interval
);
criterion_main!(benches);
