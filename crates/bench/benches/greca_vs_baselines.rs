//! Wall-clock comparison of GRECA against the TA and naive baselines on
//! a fixed prepared group (complements the access-count figures: GRECA's
//! saveup must also show up as time, not just avoided reads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greca_bench::{PerfSettings, PerfWorld};
use greca_core::{Algorithm, CheckInterval, GrecaConfig, TaConfig};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let pw = PerfWorld::build_small();
    let cf = pw.cf();
    let settings = PerfSettings {
        num_items: 600,
        ..PerfSettings::default()
    };
    let group = pw.random_groups(1, 6, 7)[0].clone();
    let prepared = pw.prepare_group(&cf, &group, &settings);

    let mut g = c.benchmark_group("topk_algorithms");
    for k in [5usize, 10] {
        let prepared = prepared.clone().top(k);
        g.bench_with_input(BenchmarkId::new("greca", k), &k, |b, &k| {
            b.iter(|| {
                black_box(prepared.run_algorithm(Algorithm::Greca(
                    GrecaConfig::top(k).check_interval(CheckInterval::Adaptive),
                )))
            })
        });
        g.bench_with_input(BenchmarkId::new("ta", k), &k, |b, &k| {
            b.iter(|| black_box(prepared.run_algorithm(Algorithm::Ta(TaConfig::top(k)))))
        });
        g.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| black_box(prepared.run_algorithm(Algorithm::Naive)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
