//! One function per table/figure of the paper's evaluation section.
//!
//! Every function prints the same rows/series the paper reports and
//! returns the measured numbers so `run_all` can assemble a summary and
//! tests can assert the reproduction's *shape* (who wins, by roughly
//! what factor, where crossovers fall — not the authors' absolute
//! numbers, which came from human raters and their testbed).

use crate::harness::{banner, fmt_aggregate, print_row, PerfSettings, PerfWorld};
use greca_affinity::{AffinityMode, PopulationAffinity, SocialAffinitySource};
use greca_consensus::ConsensusFunction;
use greca_core::Aggregate;
use greca_dataset::{
    AffinityLevel, Cohesion, Granularity, GroupBuilder, GroupSpec, MovieLensConfig, Timeline,
    UserId,
};
use greca_eval::{RecVariant, Study, StudyConfig, StudyWorld};

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-size sweeps (used by the binaries).
    Full,
    /// Miniature sweeps for integration tests.
    Quick,
}

impl Scale {
    fn groups(&self) -> usize {
        match self {
            Scale::Full => 20,
            Scale::Quick => 3,
        }
    }
}

// ---------------------------------------------------------------------
// Table 5
// ---------------------------------------------------------------------

/// Table 5: dataset statistics of the MovieLens-1M-like world.
pub fn table5(scale: Scale) -> greca_dataset::MovieLensStats {
    banner("Table 5: The MovieLens 1M Dataset (synthetic twin)");
    let cfg = match scale {
        Scale::Full => MovieLensConfig::paper_scale(),
        Scale::Quick => MovieLensConfig::small(),
    };
    let ml = cfg.generate();
    let stats = ml.stats();
    print_row("# users (paper: 6,040)", stats.num_users);
    print_row("# movies (paper: 3,952)", stats.num_items);
    print_row("# ratings (paper: 1,000,209)", stats.num_ratings);
    print_row(
        "mean rating (ML-1M: ~3.58)",
        format!("{:.3}", stats.mean_rating),
    );
    print_row("density", format!("{:.4}", stats.density));
    stats
}

// ---------------------------------------------------------------------
// Quality experiments (Figures 1–3)
// ---------------------------------------------------------------------

fn study_config(scale: Scale) -> StudyConfig {
    match scale {
        Scale::Full => StudyConfig::default(),
        Scale::Quick => StudyConfig {
            k: 5,
            max_candidates: 60,
            ..StudyConfig::default()
        },
    }
}

/// Figure 1: independent evaluation of the six variants, per group
/// characteristic. Returns `(variant, per-characteristic %)` rows.
pub fn fig1(world: &StudyWorld, scale: Scale) -> Vec<(RecVariant, Vec<f64>)> {
    banner("Figure 1: Independent Evaluation (satisfaction %, per group characteristic)");
    let study = Study::new(world, study_config(scale));
    let header = greca_eval::GroupCharacteristic::all()
        .iter()
        .map(|c| format!("{:>8}", c.label()))
        .collect::<Vec<_>>()
        .join(" ");
    println!("  {:<28} {header}", "variant");
    let mut out = Vec::new();
    for variant in RecVariant::figure1_sweep() {
        let res = study.independent(variant);
        let vals: Vec<f64> = res.rows.iter().map(|&(_, p)| p).collect();
        let row = vals
            .iter()
            .map(|p| format!("{p:8.1}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  {:<28} {row}", variant.label());
        out.push((variant, vals));
    }
    out
}

/// Figure 2: three-way AP vs MO vs PD preference per characteristic.
pub fn fig2(world: &StudyWorld, scale: Scale) -> Vec<[f64; 3]> {
    banner("Figure 2: Qualitative Evaluation of Consensus Functions (pick %, AP/MO/PD)");
    let study = Study::new(world, study_config(scale));
    let rows = study.consensus_threeway();
    let mut out = Vec::new();
    for (c, pcts) in rows {
        println!(
            "  {:<10} AP={:5.1}  MO={:5.1}  PD={:5.1}",
            c.label(),
            pcts[0],
            pcts[1],
            pcts[2]
        );
        out.push(pcts);
    }
    out
}

/// Figure 3: the three comparative head-to-heads. Returns per-chart
/// per-characteristic preference percentages for the first-named list.
pub fn fig3(world: &StudyWorld, scale: Scale) -> Vec<Vec<f64>> {
    banner("Figure 3: Comparative Evaluation (preference % for the first list)");
    let study = Study::new(world, study_config(scale));
    let pairs = [
        (
            RecVariant::Default,
            RecVariant::AffinityAgnostic,
            "(A) Affinity-aware vs Affinity-agnostic",
        ),
        (
            RecVariant::Default,
            RecVariant::TimeAgnostic,
            "(B) Time-aware vs Time-agnostic",
        ),
        (
            RecVariant::ContinuousTime,
            RecVariant::Default,
            "(C) Continuous vs Discrete time model",
        ),
    ];
    let mut out = Vec::new();
    for (a, b, label) in pairs {
        let res = study.comparative(a, b);
        let vals: Vec<f64> = res.rows.iter().map(|&(_, p)| p).collect();
        let row = res
            .rows
            .iter()
            .map(|(c, p)| format!("{}={:.0}", c.label(), p))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  {label:<42} {row}");
        out.push(vals);
    }
    out
}

// ---------------------------------------------------------------------
// Scalability experiments (Figures 4–8, §4.2.4)
// ---------------------------------------------------------------------

/// Figure 4: period-granularity sweep — % of non-empty (pair, period)
/// cells and period count per granularity. Returns
/// `(label, non_empty %, #periods)` rows.
pub fn fig4(world: &StudyWorld) -> Vec<(&'static str, f64, usize)> {
    banner("Figure 4: Different Time Periods (non-emptiness % vs #periods)");
    let source = SocialAffinitySource::new(&world.social);
    let universe: Vec<UserId> = world.study_users();
    let mut out = Vec::new();
    for g in Granularity::figure4_sweep() {
        let tl = Timeline::discretize(0, world.social.horizon(), g).expect("valid");
        let pop = PopulationAffinity::build(&source, &universe, &tl);
        let pct = 100.0 * pop.non_empty_fraction();
        println!(
            "  {:<10} non-empty = {pct:5.1}%   #periods = {:2}",
            g.label(),
            tl.num_periods()
        );
        out.push((g.label(), pct, tl.num_periods()));
    }
    let two_month =
        Timeline::discretize(0, world.social.horizon(), Granularity::TwoMonth).expect("valid");
    let pop = PopulationAffinity::build(&source, &universe, &two_month);
    print_row(
        "pair std-dev over periods (paper: 0.42)",
        format!("{:.2}", pop.mean_pair_std_dev()),
    );
    out
}

/// Figure 5A: %SA vs result size k. Returns `(k, aggregate)` rows.
pub fn fig5a(pw: &PerfWorld, scale: Scale) -> Vec<(usize, Aggregate)> {
    banner("Figure 5A: Average %SA, varying k");
    let ks: &[usize] = match scale {
        Scale::Full => &[5, 10, 15, 20, 25, 30],
        Scale::Quick => &[5, 15],
    };
    sweep(pw, scale, ks, |settings, &k| settings.k = k, "k")
}

/// Figure 5B: %SA vs group size. Returns `(size, aggregate)` rows.
pub fn fig5b(pw: &PerfWorld, scale: Scale) -> Vec<(usize, Aggregate)> {
    banner("Figure 5B: Average %SA, varying group size");
    let sizes: &[usize] = match scale {
        Scale::Full => &[3, 6, 9, 12],
        Scale::Quick => &[3, 6],
    };
    sweep(
        pw,
        scale,
        sizes,
        |settings, &s| settings.group_size = s,
        "|G|",
    )
}

/// Figure 5C: %SA vs number of items. Returns `(m, aggregate)` rows.
pub fn fig5c(pw: &PerfWorld, scale: Scale) -> Vec<(usize, Aggregate)> {
    banner("Figure 5C: Average %SA, varying number of items");
    let items: &[usize] = match scale {
        Scale::Full => &[900, 1400, 1900, 2400, 2900, 3400, 3900],
        Scale::Quick => &[900, 1900],
    };
    sweep(pw, scale, items, |settings, &m| settings.num_items = m, "m")
}

fn sweep<T>(
    pw: &PerfWorld,
    scale: Scale,
    points: &[T],
    set: impl Fn(&mut PerfSettings, &T),
    label: &str,
) -> Vec<(usize, Aggregate)>
where
    T: std::fmt::Display + Copy + Into<usize>,
{
    let mut out = Vec::new();
    for p in points {
        let mut settings = PerfSettings {
            num_groups: scale.groups(),
            ..PerfSettings::default()
        };
        set(&mut settings, p);
        let agg = pw.average_sa_percent(&settings);
        println!("  {label} = {p:<6} %SA = {}", fmt_aggregate(&agg));
        out.push(((*p).into(), agg));
    }
    out
}

/// Figure 6: %SA (and absolute SAs) per query period — lists accumulate
/// with each period, the paper reports a roughly linear growth of
/// accesses. Returns `(period index, mean absolute SAs, mean %SA)`.
pub fn fig6(pw: &PerfWorld, scale: Scale) -> Vec<(usize, f64, f64)> {
    banner("Figure 6: Accesses per query period (discrete model)");
    let settings = PerfSettings {
        num_groups: scale.groups(),
        ..PerfSettings::default()
    };
    let cf = pw.cf();
    let groups = pw.random_groups(settings.num_groups, settings.group_size, settings.seed);
    let periods = pw.world().timeline.num_periods();
    let mut out = Vec::new();
    for p in 0..periods {
        let mut sas = Vec::new();
        let mut pcts = Vec::new();
        for g in &groups {
            let r = pw.prepare_group_at(&cf, g, &settings, p).run();
            sas.push(r.stats.sa as f64);
            pcts.push(r.stats.sa_percent());
        }
        let sa_mean = Aggregate::of(&sas).mean;
        let pct_mean = Aggregate::of(&pcts).mean;
        println!("  period {p}: mean #SA = {sa_mean:9.0}   mean %SA = {pct_mean:5.2}");
        out.push((p, sa_mean, pct_mean));
    }
    out
}

/// Figure 7: %SA for similar / dissimilar / high-affinity / low-affinity
/// groups. Returns the four aggregates in that order.
pub fn fig7(pw: &PerfWorld, scale: Scale) -> Vec<(&'static str, Aggregate)> {
    banner("Figure 7: Average %SA per group characteristic");
    let world = pw.world();
    let users: Vec<UserId> = world.study_users();
    let matrix = &world.movielens.matrix;
    let pop = &world.population;
    let p_idx = world.last_period();
    let similarity = |a: UserId, b: UserId| {
        greca_cf::user_similarity(matrix, a, b, greca_cf::Similarity::Pearson)
    };
    let affinity = |a: UserId, b: UserId| {
        pop.pair_of(a, b)
            .map(|pair| pop.affinity(pair, p_idx, AffinityMode::Discrete).min(1.0))
            .unwrap_or(0.0)
    };
    let builder = GroupBuilder::new(users, similarity, affinity).with_restarts(4);
    let n_groups = scale.groups().min(8);
    let cf = pw.cf();
    let mut out = Vec::new();
    let specs: [(&'static str, GroupSpec); 4] = [
        ("Sim", GroupSpec::of_size(6).cohesion(Cohesion::Similar)),
        ("Diss", GroupSpec::of_size(6).cohesion(Cohesion::Dissimilar)),
        (
            "High Aff",
            GroupSpec::of_size(6).affinity(AffinityLevel::High),
        ),
        (
            "Low Aff",
            GroupSpec::of_size(6).affinity(AffinityLevel::Low),
        ),
    ];
    for (label, base_spec) in specs {
        let mut samples = Vec::new();
        for i in 0..n_groups {
            let mut spec = base_spec;
            let group = loop {
                match builder.build(spec, 0xf167 + i as u64 * 31) {
                    Ok(g) => break g,
                    Err(_) if spec.affinity_threshold > 0.05 => {
                        spec.affinity_threshold /= 2.0;
                    }
                    Err(e) => panic!("group formation failed: {e}"),
                }
            };
            let settings = PerfSettings {
                num_groups: 1,
                ..PerfSettings::default()
            };
            let prepared = pw.prepare_group(&cf, &group, &settings);
            samples.push(pw.sa_percent(&prepared));
        }
        let agg = Aggregate::of(&samples);
        println!("  {label:<10} %SA = {}", fmt_aggregate(&agg));
        out.push((label, agg));
    }
    out
}

/// Figure 8: %SA per consensus function (AR=AP, MO, PD V1 w1=0.8,
/// PD V2 w1=0.2).
pub fn fig8(pw: &PerfWorld, scale: Scale) -> Vec<(String, Aggregate)> {
    banner("Figure 8: Average %SA per consensus function");
    let mut out = Vec::new();
    for consensus in ConsensusFunction::figure8_sweep() {
        let settings = PerfSettings {
            num_groups: scale.groups(),
            consensus,
            ..PerfSettings::default()
        };
        let agg = pw.average_sa_percent(&settings);
        println!("  {:<12} %SA = {}", consensus.label(), fmt_aggregate(&agg));
        out.push((consensus.label(), agg));
    }
    out
}

/// §4.2.4: continuous vs discrete time model %SA (paper: 16.32% vs
/// 16.6%). Returns `(discrete, continuous)`.
pub fn time_models(pw: &PerfWorld, scale: Scale) -> (Aggregate, Aggregate) {
    banner("Section 4.2.4: Time models (discrete vs continuous %SA)");
    let discrete = pw.average_sa_percent(&PerfSettings {
        num_groups: scale.groups(),
        mode: AffinityMode::Discrete,
        ..PerfSettings::default()
    });
    let continuous = pw.average_sa_percent(&PerfSettings {
        num_groups: scale.groups(),
        mode: AffinityMode::continuous(),
        ..PerfSettings::default()
    });
    print_row("discrete   (paper 16.60%)", fmt_aggregate(&discrete));
    print_row("continuous (paper 16.32%)", fmt_aggregate(&continuous));
    (discrete, continuous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_eval::WorldConfig;

    /// One shared quick world keeps the suite fast.
    fn quick_world() -> StudyWorld {
        WorldConfig::study_scale().build()
    }

    #[test]
    fn table5_quick_counts() {
        let s = table5(Scale::Quick);
        assert_eq!(s.num_users, 200);
        assert!(s.num_ratings > 0);
    }

    #[test]
    fn fig4_shape_matches_paper() {
        let w = quick_world();
        let rows = fig4(&w);
        assert_eq!(rows.len(), 5);
        // Non-emptiness grows with period length; period count shrinks.
        for win in rows.windows(2) {
            assert!(win[0].1 <= win[1].1 + 8.0, "non-emptiness roughly grows");
            assert!(win[0].2 >= win[1].2, "period count shrinks");
        }
        // Two-month sits in a sensible band (paper: 67.4%).
        let two_month = rows[2];
        assert!(two_month.1 > 30.0 && two_month.1 < 95.0);
    }

    #[test]
    fn quality_figures_run_quick() {
        let w = quick_world();
        let f1 = fig1(&w, Scale::Quick);
        assert_eq!(f1.len(), 6);
        let f2 = fig2(&w, Scale::Quick);
        assert_eq!(f2.len(), 6);
        for pcts in &f2 {
            let sum: f64 = pcts.iter().sum();
            assert!((sum - 100.0).abs() < 1.0);
        }
        let f3 = fig3(&w, Scale::Quick);
        assert_eq!(f3.len(), 3);
    }

    #[test]
    fn perf_figures_run_quick_on_small_world() {
        let pw = PerfWorld::build_small();
        let a = fig5a(&pw, Scale::Quick);
        assert_eq!(a.len(), 2);
        for (_, agg) in &a {
            assert!(agg.mean > 0.0 && agg.mean <= 100.0);
        }
        let b = fig5b(&pw, Scale::Quick);
        assert!(b[0].0 < b[1].0);
        let f8 = fig8(&pw, Scale::Quick);
        assert_eq!(f8.len(), 4);
        let (d, c) = time_models(&pw, Scale::Quick);
        assert!(d.mean > 0.0 && c.mean > 0.0);
    }
}
