//! Shared harness for the scalability experiments (§4.2).
//!
//! Default settings follow the paper: "we form 20 different random
//! groups by selecting a subset of users who participated in our quality
//! experiment. The default settings of the rest of the parameters are,
//! group size = 6, k = 10, number of items = 3900, consensus function =
//! AP. Unless otherwise stated, affinity is computed using the discrete
//! time model."
//!
//! The many-group sweeps go through [`greca_core::run_batch`]: one
//! [`GrecaEngine`] over the world's substrates, twenty prepared
//! [`greca_core::GroupQuery`]s executed in parallel, access statistics
//! aggregated — the serving shape the engine API exists for.

use greca_affinity::AffinityMode;
use greca_cf::{PreferenceProvider, UserCfModel};
use greca_consensus::ConsensusFunction;
use greca_core::{
    Aggregate, Algorithm, BatchResult, BuildOptions, CheckInterval, GrecaConfig, GrecaEngine,
    GrecaScratch, PreparedQuery, StoppingRule, Substrate, TaConfig,
};
use greca_dataset::{Group, GroupBuilder, ItemId, UserId};
use greca_eval::{StudyWorld, WorldConfig};
use std::time::Instant;

/// Default experiment settings (§4.2 "Experiment Settings").
#[derive(Debug, Clone, Copy)]
pub struct PerfSettings {
    /// Number of random groups to average over (paper: 20).
    pub num_groups: usize,
    /// Group size (paper default: 6).
    pub group_size: usize,
    /// Result size (paper default: 10).
    pub k: usize,
    /// Number of candidate items (paper default: 3,900).
    pub num_items: usize,
    /// Consensus function (paper default: AP).
    pub consensus: ConsensusFunction,
    /// Affinity model (paper default: discrete).
    pub mode: AffinityMode,
    /// Group-sampling seed.
    pub seed: u64,
}

impl Default for PerfSettings {
    fn default() -> Self {
        PerfSettings {
            num_groups: 20,
            group_size: 6,
            k: 10,
            num_items: 3_900,
            consensus: ConsensusFunction::average_preference(),
            mode: AffinityMode::Discrete,
            seed: 0xbe7c4,
        }
    }
}

impl PerfSettings {
    /// GRECA as the experiments run it: the buffer stopping rule with
    /// the adaptive check cadence.
    pub fn greca_algorithm(&self) -> Algorithm {
        Algorithm::Greca(
            GrecaConfig::top(self.k)
                .stopping(StoppingRule::Greca)
                .check_interval(CheckInterval::Adaptive),
        )
    }
}

/// A materialized world for the scalability experiments, with the CF
/// model fitted once and reused across runs.
pub struct PerfWorld {
    world: StudyWorld,
}

impl PerfWorld {
    /// Build the default scalability world (1,200 users × 3,900 items).
    pub fn build() -> Self {
        PerfWorld {
            world: WorldConfig::scalability_scale().build(),
        }
    }

    /// Build the (small) study world instead — used by tests.
    pub fn build_small() -> Self {
        PerfWorld {
            world: WorldConfig::study_scale().build(),
        }
    }

    /// The underlying study world.
    pub fn world(&self) -> &StudyWorld {
        &self.world
    }

    /// Fit the CF model for the study users (call once, reuse).
    pub fn cf(&self) -> UserCfModel<'_> {
        self.world.cf_model_for(&self.world.study_users())
    }

    /// Draw `n` random groups of `size` study users.
    pub fn random_groups(&self, n: usize, size: usize, seed: u64) -> Vec<Group> {
        let users: Vec<UserId> = self.world.study_users();
        let builder = GroupBuilder::new(users, |_, _| 0.0, |_, _| 0.0);
        builder
            .random_groups(n, size, seed)
            .expect("enough study users for random groups")
    }

    /// The first `n` items of the catalog (the paper varies the number of
    /// available items this way in Figure 5C).
    pub fn items(&self, n: usize) -> Vec<ItemId> {
        self.world
            .movielens
            .matrix
            .items()
            .take(n.min(self.world.movielens.matrix.num_items()))
            .collect()
    }

    /// Prepare one group's query at the last period.
    pub fn prepare_group(
        &self,
        cf: &UserCfModel<'_>,
        group: &Group,
        settings: &PerfSettings,
    ) -> PreparedQuery {
        self.prepare_group_at(cf, group, settings, self.world.last_period())
    }

    /// Prepare one group's query at an arbitrary query period.
    pub fn prepare_group_at(
        &self,
        cf: &UserCfModel<'_>,
        group: &Group,
        settings: &PerfSettings,
        period_idx: usize,
    ) -> PreparedQuery {
        let items = self.items(settings.num_items);
        GrecaEngine::new(cf, &self.world.population)
            .query(group)
            .items(&items)
            .period(period_idx)
            .affinity(settings.mode)
            .consensus(settings.consensus)
            // The scalability experiments use the paper's verbatim
            // (unnormalized) relative preference, as the quality study
            // does.
            .normalize_rpref(false)
            .top(settings.k)
            .algorithm(settings.greca_algorithm())
            .prepare()
            .expect("experiment settings form valid queries")
    }

    /// GRECA's `%SA` for one prepared group.
    pub fn sa_percent(&self, prepared: &PreparedQuery) -> f64 {
        prepared.run().stats.sa_percent()
    }

    /// A warm engine over the settings' itemset, with preference
    /// segments precomputed for the study users (the only users the
    /// experiments group). The returned engine borrows `cf` and the
    /// world's population index.
    pub fn warm_engine<'a>(
        &'a self,
        cf: &'a UserCfModel<'a>,
        settings: &PerfSettings,
    ) -> GrecaEngine<'a> {
        let items = self.items(settings.num_items);
        let study = self.world.study_users();
        GrecaEngine::warm_for(cf, &self.world.population, &items, &study)
            .expect("CF scores are finite")
    }

    /// Execute the settings' random-group sweep through the engine's
    /// parallel batch path (§4.2: 20 groups per data point).
    pub fn run_settings_batch(&self, settings: &PerfSettings) -> BatchResult {
        let cf = self.cf();
        let engine = GrecaEngine::new(&cf, &self.world.population);
        self.run_settings_batch_on(&engine, settings)
    }

    /// The batch sweep over a caller-supplied engine (cold or warm — a
    /// warm engine's workers all serve from one shared `Arc<Substrate>`).
    pub fn run_settings_batch_on(
        &self,
        engine: &GrecaEngine<'_>,
        settings: &PerfSettings,
    ) -> BatchResult {
        let groups = self.random_groups(settings.num_groups, settings.group_size, settings.seed);
        let items = self.items(settings.num_items);
        let queries: Vec<_> = groups
            .iter()
            .map(|g| {
                engine
                    .query(g)
                    .items(&items)
                    .period(self.world.last_period())
                    .affinity(settings.mode)
                    .consensus(settings.consensus)
                    .normalize_rpref(false)
                    .top(settings.k)
                    .algorithm(settings.greca_algorithm())
            })
            .collect();
        engine.run_batch(&queries)
    }

    /// Mean ± stderr of GRECA's `%SA` over the settings' random groups.
    pub fn average_sa_percent(&self, settings: &PerfSettings) -> Aggregate {
        self.run_settings_batch(settings).sa_percent_aggregate()
    }

    /// The GRECA / TA / naive comparison at the given settings: each
    /// algorithm runs over the *same* prepared inputs per group, and
    /// reports mean wall-clock latency plus the `%SA` aggregate — the
    /// `BENCH_engine.json` baseline rows.
    pub fn engine_baseline(&self, settings: &PerfSettings) -> Vec<BaselineRow> {
        let cf = self.cf();
        let groups = self.random_groups(settings.num_groups, settings.group_size, settings.seed);
        let prepared: Vec<PreparedQuery> = groups
            .iter()
            .map(|g| self.prepare_group(&cf, g, settings))
            .collect();
        let algorithms = [
            settings.greca_algorithm(),
            Algorithm::Ta(TaConfig::top(settings.k)),
            Algorithm::Naive,
        ];
        // One recycled kernel workspace across the whole sweep — the
        // serving shape (a `run_batch` worker reuses its scratch the
        // same way); results are bit-identical to fresh-scratch runs.
        let mut scratch = GrecaScratch::new();
        algorithms
            .iter()
            .map(|&algorithm| {
                let mut sa_pcts = Vec::with_capacity(prepared.len());
                let mut ra_total = 0u64;
                let start = Instant::now();
                for p in &prepared {
                    let r = p.run_algorithm_with(algorithm, &mut scratch);
                    sa_pcts.push(r.stats.sa_percent());
                    ra_total += r.stats.ra;
                }
                let elapsed = start.elapsed();
                BaselineRow {
                    algorithm: algorithm.label(),
                    mean_latency_ms: elapsed.as_secs_f64() * 1e3 / prepared.len() as f64,
                    sa_percent: Aggregate::of(&sa_pcts),
                    random_accesses: ra_total,
                }
            })
            .collect()
    }
}

/// Cold-vs-warm `prepare()` measurements at one settings point — the
/// substrate layer's headline numbers.
#[derive(Debug, Clone)]
pub struct PrepareSplit {
    /// One-off substrate construction cost (amortized across all
    /// subsequent queries of the engine's lifetime).
    pub substrate_build_ms: f64,
    /// Eager-segment construction via the pre-substrate baseline path
    /// (one `preference_list()` + full-column sort + fresh allocations
    /// per user, sequentially) — the single-threaded reference the
    /// sharded builder is compared against.
    pub build_ms_single: f64,
    /// The same segments through `Substrate::build_with`'s sharded
    /// builder (scratch reuse + zero-tail sort, `build_threads`
    /// workers). Bit-identical output to the baseline path.
    pub build_ms_parallel: f64,
    /// Worker threads the sharded build actually ran with on this host
    /// (`available_parallelism` clamped to the built user population).
    pub build_threads: usize,
    /// Mean per-query `prepare()` latency on a cold engine (provider
    /// calls + per-member sorts, every query).
    pub cold_prepare_ms: f64,
    /// Mean per-query `prepare()` latency on a warm engine (view
    /// selection; no per-user sort, no preference-entry clone).
    pub warm_prepare_ms: f64,
    /// `cold / warm`.
    pub speedup: f64,
    /// Whether cold and warm preparations produced bit-identical
    /// results (itemsets, bounds and access statistics) for every group.
    pub identical: bool,
}

impl PrepareSplit {
    /// The split as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"substrate_build_ms\":{:.4},\"build_ms_single\":{:.4},\"build_ms_parallel\":{:.4},\"build_threads\":{},\"cold_prepare_ms\":{:.4},\"warm_prepare_ms\":{:.4},\"speedup\":{:.2},\"identical\":{}}}",
            self.substrate_build_ms,
            self.build_ms_single,
            self.build_ms_parallel,
            self.build_threads,
            self.cold_prepare_ms,
            self.warm_prepare_ms,
            self.speedup,
            self.identical,
        )
    }
}

impl PerfWorld {
    /// Measure cold vs warm `prepare()` over the settings' random
    /// groups (several rounds each, means reported), and verify the two
    /// paths return bit-identical results.
    pub fn prepare_split(&self, settings: &PerfSettings) -> PrepareSplit {
        const ROUNDS: usize = 3;
        let cf = self.cf();
        let groups = self.random_groups(settings.num_groups, settings.group_size, settings.seed);
        let cold_engine = GrecaEngine::new(&cf, &self.world.population);

        let build_start = Instant::now();
        let warm_engine = self.warm_engine(&cf, settings);
        let substrate_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let items = self.items(settings.num_items);

        // Single-threaded baseline: the pre-substrate construction path —
        // one provider round-trip, a full-column sort and fresh
        // allocations per user, strictly sequentially, retaining every
        // column as the old builder did.
        let study = self.world.study_users();
        let single_start = Instant::now();
        let mut baseline: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(study.len());
        for &u in &study {
            let pl = cf.preference_list(u, &items).expect("CF scores are finite");
            baseline.push(pl.into_sorted_columns());
        }
        let build_ms_single = single_start.elapsed().as_secs_f64() * 1e3;
        drop(std::hint::black_box(baseline));

        // Sharded builder over the same users (scratch reuse + zero-tail
        // sort; bit-identity with the baseline is covered by core tests).
        // Threads default to `available_parallelism`; the reported
        // count is the workers the build *actually* ran with — the
        // resolved count clamped to the user population, so a small
        // world never reports phantom parallelism next to its
        // `build_ms_parallel` figure.
        let opts = BuildOptions {
            threads: BuildOptions::default().resolved_threads(),
            ..BuildOptions::default()
        };
        let build_threads = opts.workers_for(study.len());
        let parallel_start = Instant::now();
        std::hint::black_box(
            Substrate::build_with(&cf, &self.world.population, &items, &study, &[], opts)
                .expect("CF scores are finite"),
        );
        let build_ms_parallel = parallel_start.elapsed().as_secs_f64() * 1e3;
        let mk = |engine: &GrecaEngine<'_>, group: &Group| {
            engine
                .query(group)
                .items(&items)
                .period(self.world.last_period())
                .affinity(settings.mode)
                .consensus(settings.consensus)
                .normalize_rpref(false)
                .top(settings.k)
                .algorithm(settings.greca_algorithm())
                .prepare()
                .expect("experiment settings form valid queries")
        };

        let time_prepares = |engine: &GrecaEngine<'_>| {
            let start = Instant::now();
            for _ in 0..ROUNDS {
                for g in &groups {
                    std::hint::black_box(mk(engine, g));
                }
            }
            start.elapsed().as_secs_f64() * 1e3 / (ROUNDS * groups.len()) as f64
        };
        let cold_prepare_ms = time_prepares(&cold_engine);
        let warm_prepare_ms = time_prepares(&warm_engine);

        let identical = groups.iter().all(|g| {
            let cold = mk(&cold_engine, g);
            let warm = mk(&warm_engine, g);
            warm.is_warm() && cold.run() == warm.run() && cold.exact_scores() == warm.exact_scores()
        });

        PrepareSplit {
            substrate_build_ms,
            build_ms_single,
            build_ms_parallel,
            build_threads,
            cold_prepare_ms,
            warm_prepare_ms,
            speedup: cold_prepare_ms / warm_prepare_ms.max(1e-9),
            identical,
        }
    }
}

/// One `BENCH_engine.json` row: an algorithm at the paper defaults.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Algorithm label (`greca` / `ta` / `naive`).
    pub algorithm: &'static str,
    /// Mean per-query wall-clock latency in milliseconds.
    pub mean_latency_ms: f64,
    /// `%SA` aggregate over the groups.
    pub sa_percent: Aggregate,
    /// Total random accesses across the groups (nonzero only for TA).
    pub random_accesses: u64,
}

impl BaselineRow {
    /// The row as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"algorithm\":\"{}\",\"mean_latency_ms\":{:.4},\"sa_percent_mean\":{:.4},\"sa_percent_stderr\":{:.4},\"groups\":{},\"random_accesses\":{}}}",
            self.algorithm,
            self.mean_latency_ms,
            self.sa_percent.mean,
            self.sa_percent.std_err,
            self.sa_percent.n,
            self.random_accesses,
        )
    }
}

/// Print one aligned row of a harness table.
pub fn print_row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<28} {value}");
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Format an aggregate as `mean ± stderr`.
pub fn fmt_aggregate(a: &Aggregate) -> String {
    format!("{:6.2}% ± {:.2} (n={})", a.mean, a.std_err, a.n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_match_paper() {
        let s = PerfSettings::default();
        assert_eq!(s.num_groups, 20);
        assert_eq!(s.group_size, 6);
        assert_eq!(s.k, 10);
        assert_eq!(s.num_items, 3_900);
        assert_eq!(s.consensus.label(), "AP");
        assert_eq!(s.mode, AffinityMode::Discrete);
    }

    #[test]
    fn small_world_round_trip() {
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 2,
            group_size: 3,
            k: 3,
            num_items: 120,
            ..PerfSettings::default()
        };
        let agg = pw.average_sa_percent(&settings);
        assert_eq!(agg.n, 2);
        assert!(agg.mean > 0.0 && agg.mean <= 100.0, "%SA = {}", agg.mean);
    }

    #[test]
    fn batch_matches_sequential_runs() {
        // The parallel batch path must return exactly what running each
        // prepared query one-by-one returns.
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 4,
            group_size: 3,
            k: 5,
            num_items: 150,
            ..PerfSettings::default()
        };
        let batch = pw.run_settings_batch(&settings);
        assert_eq!(batch.results.len(), 4);
        let cf = pw.cf();
        let groups = pw.random_groups(settings.num_groups, settings.group_size, settings.seed);
        for (g, r) in groups.iter().zip(&batch.results) {
            let solo = pw.prepare_group(&cf, g, &settings).run();
            let batched = r.as_ref().expect("valid query");
            assert_eq!(solo.item_ids(), batched.item_ids());
            assert_eq!(solo.stats, batched.stats);
        }
        // The aggregate stats are the per-query sums.
        let sa_sum: u64 = batch.successes().map(|r| r.stats.sa).sum();
        assert_eq!(batch.stats.sa, sa_sum);
    }

    #[test]
    fn engine_baseline_compares_three_algorithms() {
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 2,
            group_size: 3,
            k: 5,
            num_items: 150,
            ..PerfSettings::default()
        };
        let rows = pw.engine_baseline(&settings);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].algorithm, "greca");
        assert_eq!(rows[2].algorithm, "naive");
        // The naive scan reads everything: its %SA is exactly 100.
        assert!((rows[2].sa_percent.mean - 100.0).abs() < 1e-9);
        // GRECA reads no more than naive and pays no random accesses.
        assert!(rows[0].sa_percent.mean <= rows[2].sa_percent.mean + 1e-9);
        assert_eq!(rows[0].random_accesses, 0);
        assert!(rows[1].random_accesses > 0, "TA must pay RAs");
        // JSON rows are well-formed enough to eyeball.
        assert!(rows[0].to_json().contains("\"algorithm\":\"greca\""));
    }

    #[test]
    fn prepare_split_is_identical_and_warm_is_not_slower_path() {
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 2,
            group_size: 3,
            k: 3,
            num_items: 150,
            ..PerfSettings::default()
        };
        let split = pw.prepare_split(&settings);
        assert!(split.identical, "cold and warm must agree bit-for-bit");
        assert!(split.substrate_build_ms >= 0.0);
        assert!(split.cold_prepare_ms > 0.0 && split.warm_prepare_ms > 0.0);
        assert!(split.build_ms_single > 0.0 && split.build_ms_parallel > 0.0);
        assert!(split.build_threads >= 1);
        // The reported count is what the build ran with, never phantom
        // parallelism beyond the built population.
        assert!(split.build_threads <= pw.world.study_users().len());
        assert!(split.to_json().contains("\"identical\":true"));
        assert!(split.to_json().contains("\"build_threads\":"));
    }

    #[test]
    fn warm_batch_equals_cold_batch() {
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 3,
            group_size: 3,
            k: 4,
            num_items: 120,
            ..PerfSettings::default()
        };
        let cold = pw.run_settings_batch(&settings);
        let cf = pw.cf();
        let warm_engine = pw.warm_engine(&cf, &settings);
        let warm = pw.run_settings_batch_on(&warm_engine, &settings);
        assert_eq!(cold.stats, warm.stats);
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert_eq!(
                c.as_ref().expect("valid"),
                w.as_ref().expect("valid"),
                "warm batch must be bit-identical to cold"
            );
        }
    }

    #[test]
    fn items_are_capped_by_catalog() {
        let pw = PerfWorld::build_small();
        let items = pw.items(10_000_000);
        assert_eq!(items.len(), pw.world().movielens.matrix.num_items());
    }
}
