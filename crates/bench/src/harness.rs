//! Shared harness for the scalability experiments (§4.2).
//!
//! Default settings follow the paper: "we form 20 different random
//! groups by selecting a subset of users who participated in our quality
//! experiment. The default settings of the rest of the parameters are,
//! group size = 6, k = 10, number of items = 3900, consensus function =
//! AP. Unless otherwise stated, affinity is computed using the discrete
//! time model."

use greca_affinity::AffinityMode;
use greca_cf::UserCfModel;
use greca_consensus::ConsensusFunction;
use greca_core::{
    prepare, Aggregate, CheckInterval, GrecaConfig, ListLayout, Prepared, StoppingRule,
};
use greca_dataset::{Group, GroupBuilder, ItemId, UserId};
use greca_eval::{StudyWorld, WorldConfig};

/// Default experiment settings (§4.2 "Experiment Settings").
#[derive(Debug, Clone, Copy)]
pub struct PerfSettings {
    /// Number of random groups to average over (paper: 20).
    pub num_groups: usize,
    /// Group size (paper default: 6).
    pub group_size: usize,
    /// Result size (paper default: 10).
    pub k: usize,
    /// Number of candidate items (paper default: 3,900).
    pub num_items: usize,
    /// Consensus function (paper default: AP).
    pub consensus: ConsensusFunction,
    /// Affinity model (paper default: discrete).
    pub mode: AffinityMode,
    /// Group-sampling seed.
    pub seed: u64,
}

impl Default for PerfSettings {
    fn default() -> Self {
        PerfSettings {
            num_groups: 20,
            group_size: 6,
            k: 10,
            num_items: 3_900,
            consensus: ConsensusFunction::average_preference(),
            mode: AffinityMode::Discrete,
            seed: 0xbe7c4,
        }
    }
}

/// A materialized world for the scalability experiments, with the CF
/// model fitted once and reused across runs.
pub struct PerfWorld {
    world: StudyWorld,
}

impl PerfWorld {
    /// Build the default scalability world (1,200 users × 3,900 items).
    pub fn build() -> Self {
        PerfWorld {
            world: WorldConfig::scalability_scale().build(),
        }
    }

    /// Build the (small) study world instead — used by tests.
    pub fn build_small() -> Self {
        PerfWorld {
            world: WorldConfig::study_scale().build(),
        }
    }

    /// The underlying study world.
    pub fn world(&self) -> &StudyWorld {
        &self.world
    }

    /// Fit the CF model for the study users (call once, reuse).
    pub fn cf(&self) -> UserCfModel<'_> {
        self.world.cf_model_for(&self.world.study_users())
    }

    /// Draw `n` random groups of `size` study users.
    pub fn random_groups(&self, n: usize, size: usize, seed: u64) -> Vec<Group> {
        let users: Vec<UserId> = self.world.study_users();
        let builder = GroupBuilder::new(users, |_, _| 0.0, |_, _| 0.0);
        builder
            .random_groups(n, size, seed)
            .expect("enough study users for random groups")
    }

    /// The first `n` items of the catalog (the paper varies the number of
    /// available items this way in Figure 5C).
    pub fn items(&self, n: usize) -> Vec<ItemId> {
        self.world
            .movielens
            .matrix
            .items()
            .take(n.min(self.world.movielens.matrix.num_items()))
            .collect()
    }

    /// Prepare one group's inputs at the last period.
    pub fn prepare_group(
        &self,
        cf: &UserCfModel<'_>,
        group: &Group,
        settings: &PerfSettings,
    ) -> Prepared {
        self.prepare_group_at(cf, group, settings, self.world.last_period())
    }

    /// Prepare one group's inputs at an arbitrary query period.
    pub fn prepare_group_at(
        &self,
        cf: &UserCfModel<'_>,
        group: &Group,
        settings: &PerfSettings,
        period_idx: usize,
    ) -> Prepared {
        let items = self.items(settings.num_items);
        prepare(
            cf,
            &self.world.population,
            group,
            &items,
            period_idx,
            settings.mode,
            ListLayout::Decomposed,
            // The scalability experiments use the paper's verbatim
            // (unnormalized) relative preference, as the quality study
            // does.
            false,
        )
    }

    /// GRECA's `%SA` for one prepared group.
    pub fn sa_percent(&self, prepared: &Prepared, settings: &PerfSettings) -> f64 {
        let config = GrecaConfig::top(settings.k)
            .stopping(StoppingRule::Greca)
            .check_interval(CheckInterval::Adaptive);
        prepared.greca(settings.consensus, config).stats.sa_percent()
    }

    /// Mean ± stderr of GRECA's `%SA` over the settings' random groups.
    pub fn average_sa_percent(&self, settings: &PerfSettings) -> Aggregate {
        let cf = self.cf();
        let groups = self.random_groups(settings.num_groups, settings.group_size, settings.seed);
        let samples: Vec<f64> = groups
            .iter()
            .map(|g| {
                let prepared = self.prepare_group(&cf, g, settings);
                self.sa_percent(&prepared, settings)
            })
            .collect();
        Aggregate::of(&samples)
    }
}

/// Print one aligned row of a harness table.
pub fn print_row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<28} {value}");
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Format an aggregate as `mean ± stderr`.
pub fn fmt_aggregate(a: &Aggregate) -> String {
    format!("{:6.2}% ± {:.2} (n={})", a.mean, a.std_err, a.n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_match_paper() {
        let s = PerfSettings::default();
        assert_eq!(s.num_groups, 20);
        assert_eq!(s.group_size, 6);
        assert_eq!(s.k, 10);
        assert_eq!(s.num_items, 3_900);
        assert_eq!(s.consensus.label(), "AP");
        assert_eq!(s.mode, AffinityMode::Discrete);
    }

    #[test]
    fn small_world_round_trip() {
        let pw = PerfWorld::build_small();
        let settings = PerfSettings {
            num_groups: 2,
            group_size: 3,
            k: 3,
            num_items: 120,
            ..PerfSettings::default()
        };
        let agg = pw.average_sa_percent(&settings);
        assert_eq!(agg.n, 2);
        assert!(agg.mean > 0.0 && agg.mean <= 100.0, "%SA = {}", agg.mean);
    }

    #[test]
    fn items_are_capped_by_catalog() {
        let pw = PerfWorld::build_small();
        let items = pw.items(10_000_000);
        assert_eq!(items.len(), pw.world().movielens.matrix.num_items());
    }
}
