//! Regenerates Table 5 (dataset statistics).
fn main() {
    greca_bench::experiments::table5(greca_bench::Scale::Full);
}
