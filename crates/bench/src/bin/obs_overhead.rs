//! `obs_overhead`: the observability layer's cost-and-correctness
//! gate, emitting `BENCH_obs.json`.
//!
//! Tracing is *always on* in production (the flight recorder has no
//! sampling switch), so its cost has to be provably negligible and its
//! presence provably inert. Three phases against one real server:
//!
//! 1. **Overhead** — a warm hot-group pool is queried in alternating
//!    blocks with the recorder disabled (`obs::set_enabled(false)`)
//!    and enabled, interleaved round-robin so machine drift hits both
//!    modes equally. The headline is warm-query (cache-hit) p50 per
//!    mode: the hit path is the cheapest request the server serves, so
//!    it bounds tracing overhead from above — every span open, phase
//!    stamp, and ring write lands on a request that does almost
//!    nothing else.
//! 2. **Identity** — fresh cold groups are queried over the wire with
//!    tracing ON (cache misses: each costs a real kernel run under
//!    full span/phase instrumentation) and compared bit for bit (item
//!    ids, lb/ub float bits, SA/RA counters, sweeps) against direct
//!    `PinnedEpoch::engine()` runs executed with tracing OFF.
//!    `identical` in the JSON is the AND over all of them: tracing
//!    must never perturb what the kernel computes.
//! 3. **Trace roundtrip** — one traced query's id, echoed in its
//!    response, must retrieve the span's end-to-end cost attribution
//!    (admit/cache/prepare/kernel/serialize plus SA/RA matching the
//!    response's own counts) via the `trace` verb.
//!
//! Gates asserted by the binary (always, including `--quick` — the CI
//! smoke): `identical == true`, a successful trace roundtrip, and
//! warm-query p50 overhead ≤ 5% (with a small absolute floor so the
//! gate measures tracing, not microsecond scheduler jitter on a
//! near-zero baseline).
//!
//! Run with: `cargo run -p greca-bench --release --bin obs_overhead`
//! (pass `--quick` for the small study world and shorter blocks, or
//! `--seed <u64>` to re-key the group draws).

use greca_bench::harness::{banner, print_row};
use greca_bench::{PerfSettings, PerfWorld};
use greca_core::{obs, LiveEngine, LiveModel};
use greca_dataset::Group;
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::io::Write as _;
use std::time::{Duration, Instant};

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sorted_ms(samples: &[Duration]) -> Vec<f64> {
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ms
}

fn member_ids(group: &Group) -> Vec<u32> {
    group.members().iter().map(|u| u.0).collect()
}

/// One measurement block: every hot group queried `rounds` times, all
/// answers expected warm (cache hits at the pinned epoch). Returns the
/// per-request latencies and how many were actually hits.
fn warm_block(
    client: &mut Client,
    hot: &[Vec<u32>],
    k: usize,
    rounds: usize,
) -> (Vec<Duration>, usize) {
    let mut latencies = Vec::with_capacity(hot.len() * rounds);
    let mut hits = 0usize;
    for _ in 0..rounds {
        for group in hot {
            let t0 = Instant::now();
            let response = client.query(group, None, Some(k)).expect("warm query");
            latencies.push(t0.elapsed());
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "warm query must succeed: {response:?}"
            );
            if response.get("cache").and_then(Json::as_str) == Some("hit") {
                hits += 1;
            }
        }
    }
    (latencies, hits)
}

/// Compare one served payload against a direct engine run, bit for bit.
fn payload_identical(response: &Json, direct: &greca_core::TopKResult) -> bool {
    let Some(items) = response.get("items").and_then(Json::as_array) else {
        return false;
    };
    if items.len() != direct.items.len() {
        return false;
    }
    let rows_match = items.iter().zip(&direct.items).all(|(got, want)| {
        got.get("item").and_then(Json::as_u64) == Some(u64::from(want.item.0))
            && got.get("lb").and_then(Json::as_f64).map(f64::to_bits) == Some(want.lb.to_bits())
            && got.get("ub").and_then(Json::as_f64).map(f64::to_bits) == Some(want.ub.to_bits())
    });
    rows_match
        && response.get("sa").and_then(Json::as_u64) == Some(direct.stats.sa)
        && response.get("ra").and_then(Json::as_u64) == Some(direct.stats.ra)
        && response.get("sweeps").and_then(Json::as_u64) == Some(direct.sweeps)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = args
        .windows(2)
        .find(|w| w[0] == "--seed")
        .map(|w| {
            w[1].parse()
                .unwrap_or_else(|_| panic!("--seed takes a u64, got '{}'", w[1]))
        })
        .unwrap_or(0);
    banner("obs_overhead: tracing cost and identity over greca-serve");
    let settings = if quick {
        PerfSettings {
            num_items: 600,
            ..PerfSettings::default()
        }
    } else {
        PerfSettings::default()
    };
    // Alternating off/on blocks per round; total warm samples per mode
    // is hot_pool × rounds_per_block × alternations.
    let (hot_pool, rounds_per_block, alternations, cold_n) =
        if quick { (6, 8, 4, 6) } else { (8, 24, 8, 16) };
    let (world, world_label) = if quick {
        (PerfWorld::build_small(), "study_scale")
    } else {
        (PerfWorld::build(), "scalability_scale")
    };
    let items = world.items(settings.num_items);
    let k = settings.k;
    let live = LiveEngine::new(
        &world.world().population,
        LiveModel::Raw,
        &world.world().movielens.matrix,
        &items,
    )
    .expect("finite ratings");

    let hot: Vec<Vec<u32>> = world
        .random_groups(hot_pool, settings.group_size, 0x0b5 ^ seed)
        .iter()
        .map(member_ids)
        .collect();
    let cold_groups = world.random_groups(cold_n, settings.group_size, 0xc01d ^ seed);
    print_row("world", world_label);
    print_row("seed", seed);
    print_row("items / k", format!("{} / {k}", items.len()));
    print_row(
        "hot pool × rounds × blocks",
        format!("{hot_pool} × {rounds_per_block} × {alternations} per mode"),
    );

    let server = GrecaServer::bind(
        &live,
        ServeConfig {
            world_label: world_label.to_string(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let handle = server.handle();

    let outcome = std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).expect("connect");

        // ── Phase 1: warm-query overhead, recorder off vs on ────────
        // Warm the pool with tracing on (its production state), then
        // alternate measured blocks so drift cancels across modes.
        obs::set_enabled(true);
        let (_, _) = warm_block(&mut client, &hot, k, 1);
        let mut off = Vec::new();
        let mut on = Vec::new();
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..alternations {
            obs::set_enabled(false);
            let (lat, h) = warm_block(&mut client, &hot, k, rounds_per_block);
            hits += h;
            total += lat.len();
            off.extend(lat);
            obs::set_enabled(true);
            let (lat, h) = warm_block(&mut client, &hot, k, rounds_per_block);
            hits += h;
            total += lat.len();
            on.extend(lat);
        }
        let warm_hit_rate = hits as f64 / total as f64;

        // ── Phase 2: traced kernel runs vs untraced direct runs ─────
        // Cold groups miss the cache: each served answer is a fresh
        // kernel run under full instrumentation. The direct baseline
        // runs with tracing disabled — any divergence would mean the
        // observability layer leaks into the computation.
        let pin = live.pin();
        let engine = pin.engine();
        let mut identical = true;
        for group in &cold_groups {
            obs::set_enabled(true);
            let served = client
                .query(&member_ids(group), None, Some(k))
                .expect("cold query");
            if served.get("epoch").and_then(Json::as_u64) != Some(pin.epoch()) {
                identical = false;
                continue;
            }
            obs::set_enabled(false);
            let direct = engine.query(group).top(k).run().expect("direct run");
            identical &= payload_identical(&served, &direct);
        }
        obs::set_enabled(true);

        // ── Phase 3: end-to-end trace roundtrip ─────────────────────
        const TRACE: u64 = 0x0b5_0b5_0b5;
        let fresh = world.random_groups(1, settings.group_size, 0x7ace ^ seed);
        let response = client
            .query_traced(&member_ids(&fresh[0]), None, Some(k), TRACE)
            .expect("traced query");
        let echoed = response.get("trace").and_then(Json::as_u64) == Some(TRACE);
        let dump = client.trace_dump(Some(TRACE), false).expect("trace dump");
        let span = dump
            .get("spans")
            .and_then(Json::as_array)
            .and_then(|s| s.first().cloned());
        let roundtrip = echoed
            && span.as_ref().is_some_and(|span| {
                let phases = span.get("phases");
                let phase_us = |name: &str| {
                    phases
                        .and_then(|p| p.get(name))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                };
                span.get("kind").and_then(Json::as_str) == Some("query")
                    && span.get("sa").and_then(Json::as_u64)
                        == response.get("sa").and_then(Json::as_u64)
                    && span.get("ra").and_then(Json::as_u64)
                        == response.get("ra").and_then(Json::as_u64)
                    && phase_us("kernel_us") > 0.0
                    && phase_us("serialize_us") > 0.0
            });
        handle.shutdown();
        (off, on, warm_hit_rate, identical, roundtrip)
    });
    let (off, on, warm_hit_rate, identical, roundtrip) = outcome;

    let off_ms = sorted_ms(&off);
    let on_ms = sorted_ms(&on);
    let off_p50 = percentile_ms(&off_ms, 0.5);
    let on_p50 = percentile_ms(&on_ms, 0.5);
    let delta_ms = on_p50 - off_p50;
    let overhead_pct = if off_p50 > 0.0 {
        delta_ms / off_p50 * 100.0
    } else {
        0.0
    };
    // The 5% gate, with an absolute floor: on a sub-100µs hit path a
    // few microseconds of scheduler jitter can masquerade as percents,
    // and tracing's real cost (one span open, a handful of phase
    // stamps, one seqlock ring write) is far below the floor.
    let overhead_ok = overhead_pct <= 5.0 || delta_ms <= 0.010;

    print_row(
        "warm p50 off / on",
        format!(
            "{off_p50:8.4} ms / {on_p50:8.4} ms  (n={} per mode)",
            off_ms.len()
        ),
    );
    print_row(
        "warm p99 off / on",
        format!(
            "{:8.4} ms / {:8.4} ms",
            percentile_ms(&off_ms, 0.99),
            percentile_ms(&on_ms, 0.99)
        ),
    );
    print_row(
        "tracing overhead",
        format!("{overhead_pct:+.2}%  ({:+.1} µs)", delta_ms * 1e3),
    );
    print_row("warm hit rate", format!("{:.1}%", warm_hit_rate * 100.0));
    print_row("identical (traced == untraced)", identical);
    print_row("trace roundtrip", roundtrip);

    let rec = obs::recorder();
    let totals = rec.totals();
    let spans_recorded: u64 = totals.spans.iter().sum();
    print_row(
        "spans recorded / slow",
        format!("{spans_recorded} / {}", totals.slow),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"world\": \"{world}\",\n",
            "  \"samples_per_mode\": {n},\n",
            "  \"warm_p50_off_ms\": {offp50:.5},\n",
            "  \"warm_p50_on_ms\": {onp50:.5},\n",
            "  \"warm_p99_off_ms\": {offp99:.5},\n",
            "  \"warm_p99_on_ms\": {onp99:.5},\n",
            "  \"warm_hit_rate\": {hitrate:.4},\n",
            "  \"overhead_pct\": {pct:.3},\n",
            "  \"overhead_delta_us\": {delta:.2},\n",
            "  \"overhead_ok\": {okflag},\n",
            "  \"cold_groups_verified\": {cold},\n",
            "  \"identical\": {identical},\n",
            "  \"trace_roundtrip\": {roundtrip},\n",
            "  \"spans_recorded\": {spans},\n",
            "  \"slow_spans\": {slow}\n",
            "}}\n",
        ),
        world = world_label,
        n = off_ms.len(),
        offp50 = off_p50,
        onp50 = on_p50,
        offp99 = percentile_ms(&off_ms, 0.99),
        onp99 = percentile_ms(&on_ms, 0.99),
        hitrate = warm_hit_rate,
        pct = overhead_pct,
        delta = delta_ms * 1e3,
        okflag = overhead_ok,
        cold = cold_n,
        identical = identical,
        roundtrip = roundtrip,
        spans = spans_recorded,
        slow = totals.slow,
    );
    let path = "BENCH_obs.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_obs.json");
    println!("\nwrote {path}");

    // The CI gates — every run, quick included.
    assert!(
        identical,
        "kernel results must be bit-identical with tracing on vs off"
    );
    assert!(
        roundtrip,
        "a traced query's attribution must be retrievable end-to-end via the trace verb"
    );
    assert!(
        overhead_ok,
        "tracing overhead {overhead_pct:+.2}% ({:+.1} µs) exceeds the 5% gate",
        delta_ms * 1e3
    );
}
