//! Regenerates Figure 6 (accesses per query period).
use greca_bench::{PerfWorld, Scale};
fn main() {
    let pw = PerfWorld::build();
    greca_bench::experiments::fig6(&pw, Scale::Full);
}
