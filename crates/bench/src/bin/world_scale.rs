//! `world_scale`: the substrate layer across worldgen scale tiers,
//! emitting `BENCH_scale.json` — one row per tier.
//!
//! Per tier the row reports:
//!
//! * **build** — eager segment construction through the single-threaded
//!   baseline path (one `preference_list()` + full-column sort + fresh
//!   allocations per user, sequentially) vs the sharded
//!   [`Substrate::build_with`] builder in its shipping configuration for
//!   scale tiers (sparse head assembly + quantized `u16` storage,
//!   `build_threads` workers). The dense `f64` build is timed too
//!   (`build_ms_dense`) — it orders identically and serves as the
//!   bit-identity reference;
//! * **bytes/user** — the dense `f64` representation vs the quantized
//!   `u16`-code representation, with the saving percentage and the
//!   dequantization error bound;
//! * **warm query p50** — µs per query over an overlapping-membership
//!   group workload against the quantized substrate;
//! * **ingest-to-visibility** — wall time for a post-horizon rating
//!   stream to be ingested *and published* by a [`LiveEngine`] (the
//!   epoch-swap pipeline end to end);
//! * **lazy residency** — materializations/evictions under the
//!   `materialize_budget` for tiers that leave non-cohort users lazy.
//!
//! Modes: `--quick` runs study + 10k (the CI smoke; < 60 s), the
//! default adds 100k, `--full` adds the 1M tier (lazy residency).
//!
//! Gates asserted by the binary:
//!
//! * quantized serving is **bit-identical** to dense at the study tier
//!   (exact-dictionary quantization, error bound 0);
//! * quantized storage is **≥ 40 % smaller** per user at every tier;
//! * the sharded (shipping-configuration) build is **≥ 2× faster** than
//!   the baseline path at the 100k tier (when that tier runs, i.e. not
//!   `--quick`).
//!
//! Run with: `cargo run -p greca-bench --release --bin world_scale`

use greca_bench::harness::{banner, print_row};
use greca_cf::PreferenceProvider;
use greca_core::{BuildOptions, GrecaEngine, LiveEngine, LiveModel, ScoreCompression, Substrate};
use greca_worldgen::{GenWorld, Tier, DEFAULT_SEED};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Materialization-cache budget for lazy tiers (bytes).
const MATERIALIZE_BUDGET: usize = 256 << 20;
/// Ratings per ingest-to-visibility batch.
const INGEST_BATCH: usize = 200;
/// Groups in the warm-query workload (2 passes are timed).
const QUERY_GROUPS: usize = 20;
/// Users sampled for the dense-vs-quantized identity check on tiers
/// where a full sweep would dominate the run (study sweeps everything).
const IDENTITY_SAMPLE: usize = 64;

/// One `BENCH_scale.json` row.
struct Row {
    tier: Tier,
    users: usize,
    items: usize,
    serving_items: usize,
    cohort: usize,
    eager_users: usize,
    lazy_users: usize,
    world_gen_ms: f64,
    build_ms_single: f64,
    build_ms_parallel: f64,
    build_ms_dense: f64,
    build_speedup: f64,
    bytes_per_user_f64: f64,
    bytes_per_user_quant: f64,
    quant_saving_pct: f64,
    quant_identical: bool,
    quant_error_bound: f64,
    warm_p50_us: f64,
    warm_queries: usize,
    ingest_to_visible_ms: f64,
    lazy_materializations: u64,
    lazy_evictions: u64,
    lazy_resident_bytes: usize,
    footprint_total_bytes: usize,
}

impl Row {
    /// The row as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tier\":\"{}\",\"users\":{},\"items\":{},\"serving_items\":{},",
                "\"cohort\":{},\"eager_users\":{},\"lazy_users\":{},",
                "\"world_gen_ms\":{:.2},",
                "\"build_ms_single\":{:.2},\"build_ms_parallel\":{:.2},",
                "\"build_ms_dense\":{:.2},\"build_speedup\":{:.2},",
                "\"bytes_per_user_f64\":{:.1},\"bytes_per_user_quant\":{:.1},",
                "\"quant_saving_pct\":{:.1},\"quant_identical\":{},",
                "\"quant_error_bound\":{:e},",
                "\"warm_p50_us\":{:.1},\"warm_queries\":{},",
                "\"ingest_to_visible_ms\":{:.2},",
                "\"lazy_materializations\":{},\"lazy_evictions\":{},",
                "\"lazy_resident_bytes\":{},\"footprint_total_bytes\":{}}}",
            ),
            self.tier.name(),
            self.users,
            self.items,
            self.serving_items,
            self.cohort,
            self.eager_users,
            self.lazy_users,
            self.world_gen_ms,
            self.build_ms_single,
            self.build_ms_parallel,
            self.build_ms_dense,
            self.build_speedup,
            self.bytes_per_user_f64,
            self.bytes_per_user_quant,
            self.quant_saving_pct,
            self.quant_identical,
            self.quant_error_bound,
            self.warm_p50_us,
            self.warm_queries,
            self.ingest_to_visible_ms,
            self.lazy_materializations,
            self.lazy_evictions,
            self.lazy_resident_bytes,
            self.footprint_total_bytes,
        )
    }
}

fn elapsed_ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Rank-based percentile over sorted samples.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn measure(tier: Tier) -> Row {
    banner(&format!("tier {tier}"));
    let t = Instant::now();
    let world = GenWorld::of_tier(tier);
    let world_gen_ms = elapsed_ms(t);
    let spec = world.spec;
    let items = world.serving_items();
    let provider = world.provider();
    let (eager, lazy) = world.substrate_users();
    print_row(
        "world",
        format!(
            "{} users × {} items ({} serving, cohort {}), gen {:.0} ms",
            spec.num_users, spec.num_items, spec.serving_items, spec.cohort, world_gen_ms
        ),
    );

    // ── Build: single-threaded baseline vs sharded builder ───────────
    // The baseline retains every column it builds, exactly like the
    // pre-substrate builder did (dropping them would hand the baseline
    // recycled allocations the real builder never sees).
    let t = Instant::now();
    let mut baseline: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(eager.len());
    for &u in &eager {
        let pl = provider
            .preference_list(u, &items)
            .expect("generated scores are finite");
        baseline.push(pl.into_sorted_columns());
    }
    let build_ms_single = elapsed_ms(t);
    drop(std::hint::black_box(baseline));

    // The headline "parallel" build is the substrate's shipping
    // configuration for scale tiers: sharded construction into the
    // quantized representation. The dense `f64` build is timed as a
    // reference — it orders identically and anchors the identity sweep.
    let opts = BuildOptions {
        materialize_budget: Some(MATERIALIZE_BUDGET),
        ..BuildOptions::default()
    };
    let t = Instant::now();
    let quant = Substrate::build_with(
        &provider,
        &world.population,
        &items,
        &eager,
        &lazy,
        BuildOptions {
            compression: ScoreCompression::Quantized,
            ..opts
        },
    )
    .expect("generated scores are finite");
    let build_ms_parallel = elapsed_ms(t);
    let build_speedup = build_ms_single / build_ms_parallel.max(1e-9);
    print_row(
        "build single vs sharded",
        format!(
            "{build_ms_single:9.1} ms vs {build_ms_parallel:9.1} ms  ({build_speedup:.1}×, {} thread(s))",
            opts.workers_for(eager.len())
        ),
    );

    let t = Instant::now();
    let dense = Substrate::build_with(&provider, &world.population, &items, &eager, &lazy, opts)
        .expect("generated scores are finite");
    let build_ms_dense = elapsed_ms(t);
    print_row("build dense reference", format!("{build_ms_dense:9.1} ms"));

    // ── Storage: bytes per eager user, dense vs quantized ────────────
    let bytes_per_user_f64 = dense.pref_bytes() as f64 / eager.len() as f64;
    let bytes_per_user_quant = quant.pref_bytes() as f64 / eager.len() as f64;
    let quant_saving_pct = 100.0 * (1.0 - bytes_per_user_quant / bytes_per_user_f64);
    print_row(
        "bytes/user f64 vs quant",
        format!(
            "{bytes_per_user_f64:9.0} vs {bytes_per_user_quant:9.0}  (−{quant_saving_pct:.1}%)"
        ),
    );

    // ── Identity: quantized serving vs dense, bit for bit ────────────
    let sweep = if tier == Tier::Study {
        eager.len()
    } else {
        eager.len().min(IDENTITY_SAMPLE)
    };
    let mut quant_identical = true;
    for idx in 0..sweep {
        let hd = dense.segment_handle(&provider, idx).expect("resident");
        let hq = quant.segment_handle(&provider, idx).expect("resident");
        quant_identical &= hd.ids() == hq.ids()
            && hd
                .scores()
                .iter()
                .zip(hq.scores())
                .all(|(a, b)| a.to_bits() == b.to_bits());
    }
    let quant_error_bound = quant.quant_error_bound();
    print_row(
        "quant identical / bound",
        format!("{quant_identical} (over {sweep} users) / {quant_error_bound:e}"),
    );

    // ── Warm query p50 over the quantized substrate ──────────────────
    let quant = Arc::new(quant);
    let engine = GrecaEngine::with_substrate(&provider, &world.population, Arc::clone(&quant));
    let groups = world.group_workload(QUERY_GROUPS, 6, 0.5, 0x9e);
    let last_period = spec.num_periods - 1;
    let mut lat_us: Vec<f64> = Vec::with_capacity(groups.len() * 2);
    for _pass in 0..2 {
        for g in &groups {
            let t = Instant::now();
            let top = engine
                .query(g)
                .items(&items)
                .period(last_period)
                .top(10)
                .run()
                .expect("workload groups are covered");
            std::hint::black_box(top);
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let warm_p50_us = percentile(&lat_us, 0.5);
    print_row(
        "warm query p50 / p99",
        format!(
            "{warm_p50_us:9.1} µs / {:9.1} µs  (n={})",
            percentile(&lat_us, 0.99),
            lat_us.len()
        ),
    );

    // ── Lazy residency: touch a slice of lazy users under budget ─────
    for &u in lazy.iter().take(200) {
        let idx = quant.user_index(u).expect("lazy users are in the universe");
        std::hint::black_box(quant.segment_handle(&provider, idx).expect("materializes"));
    }
    let lazy_stats = quant.lazy_stats();
    if !lazy.is_empty() {
        print_row(
            "lazy cache",
            format!(
                "{} materialized, {} evicted, {:.1} MiB resident (budget {} MiB)",
                lazy_stats.materializations,
                lazy_stats.evictions,
                lazy_stats.resident_bytes as f64 / (1 << 20) as f64,
                MATERIALIZE_BUDGET >> 20,
            ),
        );
    }

    // ── Ingest-to-visibility through the epoch-swap pipeline ────────
    let live = LiveEngine::new_with_options(
        &world.population,
        LiveModel::Raw,
        &world.matrix,
        &items,
        opts,
    )
    .expect("generated scores are finite");
    let stream = world.rating_stream(INGEST_BATCH, 0x51);
    let epoch_before = live.epoch();
    let t = Instant::now();
    live.ingest(&stream).expect("stream ratings are finite");
    let ingest_to_visible_ms = elapsed_ms(t);
    assert_eq!(live.epoch(), epoch_before + 1, "publish must swap an epoch");
    print_row(
        "ingest→visible",
        format!("{ingest_to_visible_ms:9.2} ms  ({INGEST_BATCH} ratings, 1 epoch)"),
    );

    Row {
        tier,
        users: spec.num_users,
        items: spec.num_items,
        serving_items: spec.serving_items,
        cohort: spec.cohort,
        eager_users: eager.len(),
        lazy_users: lazy.len(),
        world_gen_ms,
        build_ms_single,
        build_ms_parallel,
        build_ms_dense,
        build_speedup,
        bytes_per_user_f64,
        bytes_per_user_quant,
        quant_saving_pct,
        quant_identical,
        quant_error_bound,
        warm_p50_us,
        warm_queries: lat_us.len(),
        ingest_to_visible_ms,
        lazy_materializations: lazy_stats.materializations,
        lazy_evictions: lazy_stats.evictions,
        lazy_resident_bytes: lazy_stats.resident_bytes,
        footprint_total_bytes: quant.memory_footprint().total(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    assert!(
        !(quick && full),
        "--quick and --full are mutually exclusive"
    );
    let (mode, tiers): (&str, &[Tier]) = if quick {
        ("quick", &[Tier::Study, Tier::Users10k])
    } else if full {
        (
            "full",
            &[Tier::Study, Tier::Users10k, Tier::Users100k, Tier::Users1M],
        )
    } else {
        ("default", &[Tier::Study, Tier::Users10k, Tier::Users100k])
    };
    banner(&format!(
        "world_scale: substrate scaling over worldgen tiers ({mode})"
    ));

    let rows: Vec<Row> = tiers.iter().map(|&t| measure(t)).collect();

    // The gates (see the module docs).
    for row in &rows {
        assert!(
            row.quant_saving_pct >= 40.0,
            "tier {}: quantized storage must be ≥40% smaller (got {:.1}%)",
            row.tier,
            row.quant_saving_pct
        );
        if row.tier == Tier::Study {
            assert!(
                row.quant_identical && row.quant_error_bound == 0.0,
                "study tier must serve quantized results bit-identical to f64"
            );
        }
        if row.tier == Tier::Users100k {
            assert!(
                row.build_speedup >= 2.0,
                "100k tier: sharded build must be ≥2× the baseline path (got {:.2}×)",
                row.build_speedup
            );
        }
    }

    let json = format!(
        "{{\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"build_threads\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        DEFAULT_SEED,
        mode,
        BuildOptions::default().resolved_threads(),
        rows.iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = "BENCH_scale.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_scale.json");
    println!("\nwrote {path}");
}
