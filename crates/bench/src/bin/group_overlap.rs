//! `group_overlap`: the batch planner under overlapping-group waves,
//! emitting `BENCH_overlap.json` — one row per worldgen tier.
//!
//! Per tier the binary builds the quantized warm substrate, then times
//! two waves through [`greca_core::run_batch_with`], planner **off**
//! (the independent path) vs planner **on**:
//!
//! * **high overlap** — `WAVE_GROUPS` chained groups sharing ~80 % of
//!   consecutive membership, each repeated `REPEATS` times (the
//!   serving shape: the same group asks again, its neighbors overlap).
//!   Dedup collapses the repeats; the shared member arena collapses
//!   the overlap.
//! * **zero overlap** — member-disjoint groups, nothing shareable. The
//!   planner must detect this and fall back, so the wave's latency
//!   tracks the independent path.
//!
//! Queries run over a *subset* itemset (half the serving head), which
//! routes warm preparation through the per-member filter pass — the
//! work the arena exists to share across distinct groups.
//!
//! Gates asserted by the binary:
//!
//! * planned waves are **bit-identical** to independent execution at
//!   every tier (full `TopKResult` + summed-stats equality);
//! * the planned high-overlap wave is **≥ 1.5× faster** (min-of-rounds
//!   wall time; relaxed to "not slower" under `--quick`, where study-
//!   tier waves finish in microseconds and timer noise dominates);
//! * the planned zero-overlap wave regresses **≤ 5 %** plus a 0.25 ms
//!   absolute allowance — wave analysis is O(wave) and constant-tiny,
//!   but sub-2 ms waves put 5 % inside timer noise (≤ 25 % under
//!   `--quick`, same caveat).
//!
//! Modes: `--quick` runs the study tier (the CI smoke), the default
//! adds 10k, `--full` adds 100k.
//!
//! Run with: `cargo run -p greca-bench --release --bin group_overlap`

use greca_bench::harness::{banner, print_row};
use greca_core::{
    run_batch_with, BatchResult, BuildOptions, GrecaEngine, GroupQuery, PlanOptions,
    ScoreCompression, Substrate,
};
use greca_dataset::{Group, ItemId, UserId};
use greca_worldgen::{GenWorld, Tier, DEFAULT_SEED};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Materialization-cache budget (bytes) — matches `world_scale`.
const MATERIALIZE_BUDGET: usize = 256 << 20;
/// Distinct groups per wave.
const WAVE_GROUPS: usize = 12;
/// Members per group.
const GROUP_SIZE: usize = 6;
/// Times each distinct group repeats within the high-overlap wave.
const REPEATS: usize = 4;
/// Membership overlap between consecutive high-overlap groups.
const OVERLAP: f64 = 0.8;
/// Timed rounds per (wave, planner setting); min is reported.
const ROUNDS: usize = 5;

/// One `BENCH_overlap.json` row.
struct Row {
    tier: Tier,
    users: usize,
    wave: usize,
    unique_queries: usize,
    dedup_hits: usize,
    shared_member_ratio: f64,
    reused_prefix_items: u64,
    off_high_ms: f64,
    on_high_ms: f64,
    speedup_high: f64,
    off_zero_ms: f64,
    on_zero_ms: f64,
    ratio_zero: f64,
    identical: bool,
}

impl Row {
    /// The row as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tier\":\"{}\",\"users\":{},\"wave\":{},",
                "\"unique_queries\":{},\"dedup_hits\":{},",
                "\"shared_member_ratio\":{:.3},\"reused_prefix_items\":{},",
                "\"off_high_ms\":{:.3},\"on_high_ms\":{:.3},",
                "\"speedup_high\":{:.2},",
                "\"off_zero_ms\":{:.3},\"on_zero_ms\":{:.3},",
                "\"ratio_zero\":{:.3},\"identical\":{}}}",
            ),
            self.tier.name(),
            self.users,
            self.wave,
            self.unique_queries,
            self.dedup_hits,
            self.shared_member_ratio,
            self.reused_prefix_items,
            self.off_high_ms,
            self.on_high_ms,
            self.speedup_high,
            self.off_zero_ms,
            self.on_zero_ms,
            self.ratio_zero,
            self.identical,
        )
    }
}

/// Minimum wall time (ms) for the wave over [`ROUNDS`] rounds.
fn time_wave(queries: &[GroupQuery<'_>], opts: &PlanOptions) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let batch = run_batch_with(queries, opts);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(batch);
        best = best.min(ms);
    }
    best
}

/// Full wave equality: per-query results and summed stats.
fn waves_identical(off: &BatchResult, on: &BatchResult) -> bool {
    off.results == on.results && off.stats == on.stats
}

fn measure(tier: Tier) -> Row {
    banner(&format!("tier {tier}"));
    let world = GenWorld::of_tier(tier);
    let spec = world.spec;
    let items = world.serving_items();
    let provider = world.provider();
    let (eager, lazy) = world.substrate_users();
    let substrate = Arc::new(
        Substrate::build_with(
            &provider,
            &world.population,
            &items,
            &eager,
            &lazy,
            BuildOptions {
                compression: ScoreCompression::Quantized,
                materialize_budget: Some(MATERIALIZE_BUDGET),
                ..BuildOptions::default()
            },
        )
        .expect("generated scores are finite"),
    );
    let engine = GrecaEngine::with_substrate(&provider, &world.population, substrate);
    // Half the serving head: warm preparation takes the subset-filter
    // path, whose per-member pass is what the arena shares.
    let subset: Vec<ItemId> = items[..items.len() / 2].to_vec();
    let last_period = spec.num_periods - 1;

    // ── High-overlap wave: chained groups × repeats ──────────────────
    let groups = world.group_workload(WAVE_GROUPS, GROUP_SIZE, OVERLAP, 0xA11);
    let high: Vec<GroupQuery<'_>> = (0..REPEATS)
        .flat_map(|_| {
            groups
                .iter()
                .map(|g| engine.query(g).items(&subset).period(last_period).top(10))
        })
        .collect();

    // ── Zero-overlap wave: member-disjoint cohort chunks ─────────────
    let disjoint: Vec<Group> = (0..(spec.cohort / GROUP_SIZE).min(WAVE_GROUPS))
        .map(|g| {
            let base = (g * GROUP_SIZE) as u32;
            Group::new((base..base + GROUP_SIZE as u32).map(UserId).collect())
                .expect("distinct chunked members")
        })
        .collect();
    let zero: Vec<GroupQuery<'_>> = disjoint
        .iter()
        .map(|g| engine.query(g).items(&subset).period(last_period).top(10))
        .collect();

    let off = PlanOptions { enabled: false };
    let on = PlanOptions { enabled: true };

    // Identity first (also warms the substrate's lazy state so the
    // timed rounds compare steady-state execution).
    let high_off = run_batch_with(&high, &off);
    let high_on = run_batch_with(&high, &on);
    let zero_off = run_batch_with(&zero, &off);
    let zero_on = run_batch_with(&zero, &on);
    let identical = waves_identical(&high_off, &high_on) && waves_identical(&zero_off, &zero_on);
    let plan = high_on.plan.expect("analyzed wave reports stats");
    assert!(plan.executed_shared, "high-overlap wave must share");
    let zero_plan = zero_on.plan.expect("analyzed wave reports stats");
    assert!(
        !zero_plan.executed_shared,
        "zero-overlap wave must fall back to the independent path"
    );
    print_row(
        "wave shape",
        format!(
            "{} queries → {} unique ({} dedup hits), {:.0}% member slots shared",
            plan.wave,
            plan.unique_queries,
            plan.dedup_hits,
            100.0 * plan.shared_member_ratio()
        ),
    );

    let off_high_ms = time_wave(&high, &off);
    let on_high_ms = time_wave(&high, &on);
    let speedup_high = off_high_ms / on_high_ms.max(1e-9);
    print_row(
        "high overlap off vs on",
        format!("{off_high_ms:9.2} ms vs {on_high_ms:9.2} ms  ({speedup_high:.2}×)"),
    );

    let off_zero_ms = time_wave(&zero, &off);
    let on_zero_ms = time_wave(&zero, &on);
    let ratio_zero = on_zero_ms / off_zero_ms.max(1e-9);
    print_row(
        "zero overlap off vs on",
        format!("{off_zero_ms:9.2} ms vs {on_zero_ms:9.2} ms  ({ratio_zero:.2}× of baseline)"),
    );
    print_row("identical", format!("{identical}"));

    Row {
        tier,
        users: spec.num_users,
        wave: plan.wave,
        unique_queries: plan.unique_queries,
        dedup_hits: plan.dedup_hits,
        shared_member_ratio: plan.shared_member_ratio(),
        reused_prefix_items: plan.reused_prefix_items,
        off_high_ms,
        on_high_ms,
        speedup_high,
        off_zero_ms,
        on_zero_ms,
        ratio_zero,
        identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    assert!(
        !(quick && full),
        "--quick and --full are mutually exclusive"
    );
    let (mode, tiers): (&str, &[Tier]) = if quick {
        ("quick", &[Tier::Study])
    } else if full {
        ("full", &[Tier::Study, Tier::Users10k, Tier::Users100k])
    } else {
        ("default", &[Tier::Study, Tier::Users10k])
    };
    banner(&format!(
        "group_overlap: batch planner vs independent execution ({mode})"
    ));

    let rows: Vec<Row> = tiers.iter().map(|&t| measure(t)).collect();

    // The gates (see the module docs). Quick mode keeps the identity
    // gate absolute but loosens the timing gates: study-tier waves are
    // microsecond-scale and shared CI runners add noise.
    let (min_speedup, max_zero_ratio) = if quick { (1.0, 1.25) } else { (1.5, 1.05) };
    for row in &rows {
        assert!(
            row.identical,
            "tier {}: planned waves must be bit-identical to independent execution",
            row.tier
        );
        assert!(
            row.speedup_high >= min_speedup,
            "tier {}: high-overlap wave must be ≥{:.2}× faster planned (got {:.2}×)",
            row.tier,
            min_speedup,
            row.speedup_high
        );
        // Relative bound plus a small absolute allowance: planner
        // analysis on a shareless wave costs O(wave) key hashing —
        // far below 0.25 ms — while sub-2 ms waves put a bare 5 %
        // bound inside timer noise.
        let allowed_zero_ms = row.off_zero_ms * max_zero_ratio + 0.25;
        assert!(
            row.on_zero_ms <= allowed_zero_ms,
            "tier {}: zero-overlap wave must not regress beyond {:.2}×+0.25ms (got {:.3} ms vs {:.3} ms allowed)",
            row.tier,
            max_zero_ratio,
            row.on_zero_ms,
            allowed_zero_ms
        );
    }

    let json = format!(
        "{{\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"wave_groups\": {},\n  \"repeats\": {},\n  \"overlap\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        DEFAULT_SEED,
        mode,
        WAVE_GROUPS,
        REPEATS,
        OVERLAP,
        rows.iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = "BENCH_overlap.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_overlap.json");
    println!("\nwrote {path}");
}
