//! Engine baseline: GRECA vs TA vs naive at the paper's §4.2 defaults,
//! through the `GrecaEngine` / `run_batch` serving path, plus the
//! substrate layer's cold-vs-warm `prepare()` split.
//!
//! Emits `BENCH_engine.json` (mean per-query latency + `%SA` per
//! algorithm, and the prepare split) — the repository's performance
//! trajectory artifact; later PRs regenerate it to show movement.
//!
//! Run with: `cargo run -p greca-bench --release --bin engine_baseline`
//! (pass `--quick` for the small study world instead of the full
//! scalability world).

use greca_bench::harness::{banner, fmt_aggregate, print_row};
use greca_bench::{PerfSettings, PerfWorld};
use std::io::Write;

/// Bytes per mebibyte, for the human-readable footprint row.
const MIB: f64 = 1024.0 * 1024.0;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner("Engine baseline: GRECA vs TA vs naive (paper defaults, batch path)");
    let (pw, settings, world_label) = if quick {
        (
            PerfWorld::build_small(),
            PerfSettings {
                num_items: 600,
                ..PerfSettings::default()
            },
            "study_scale",
        )
    } else {
        (
            PerfWorld::build(),
            PerfSettings::default(),
            "scalability_scale",
        )
    };
    print_row("world", world_label);
    print_row("groups", settings.num_groups);
    print_row("group size", settings.group_size);
    print_row("k", settings.k);
    print_row("items", settings.num_items);

    // The warm batch path first: one Arc<Substrate> shared by all
    // workers, aggregated stats over the 20-group sweep.
    let cf = pw.cf();
    let warm = pw.warm_engine(&cf, &settings);
    let batch = pw.run_settings_batch_on(&warm, &settings);
    print_row(
        "batch %SA (GRECA, warm)",
        fmt_aggregate(&batch.sa_percent_aggregate()),
    );

    // The substrate's per-layer resident footprint — the serving
    // layer's capacity-planning number (also exposed live through
    // greca-serve's `stats` verb).
    let footprint = warm
        .substrate()
        .expect("warm engine has a substrate")
        .memory_footprint();
    print_row(
        "substrate memory",
        format!(
            "{:8.2} MiB  (universe {:.2} + prefs {:.2} + affinity {:.2})",
            footprint.total() as f64 / MIB,
            footprint.universe_bytes as f64 / MIB,
            footprint.pref_bytes as f64 / MIB,
            footprint.affinity_bytes as f64 / MIB,
        ),
    );

    // The substrate's headline: cold vs warm prepare latency, with the
    // bit-identical cross-check.
    let split = pw.prepare_split(&settings);
    print_row(
        "substrate build",
        format!("{:9.3} ms (once per engine)", split.substrate_build_ms),
    );
    print_row(
        "segment build single",
        format!("{:9.3} ms (baseline path, 1 thread)", split.build_ms_single),
    );
    print_row(
        "segment build sharded",
        format!(
            "{:9.3} ms ({} thread(s), {:.1}× vs baseline)",
            split.build_ms_parallel,
            split.build_threads,
            split.build_ms_single / split.build_ms_parallel.max(1e-9),
        ),
    );
    print_row(
        "prepare cold",
        format!("{:9.3} ms/query", split.cold_prepare_ms),
    );
    print_row(
        "prepare warm",
        format!("{:9.3} ms/query", split.warm_prepare_ms),
    );
    print_row(
        "warm speedup",
        format!(
            "{:.1}×  (results identical: {})",
            split.speedup, split.identical
        ),
    );
    assert!(
        split.identical,
        "cold and warm preparations must be bit-identical"
    );

    // Then the three-algorithm comparison over identical prepared inputs.
    let rows = pw.engine_baseline(&settings);
    for row in &rows {
        println!(
            "  {:<8} latency = {:9.3} ms/query   %SA = {}   RAs = {}",
            row.algorithm,
            row.mean_latency_ms,
            fmt_aggregate(&row.sa_percent),
            row.random_accesses,
        );
    }

    let json = format!(
        "{{\n  \"world\": \"{}\",\n  \"num_groups\": {},\n  \"group_size\": {},\n  \"k\": {},\n  \"num_items\": {},\n  \"memory\": {},\n  \"prepare\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        world_label,
        settings.num_groups,
        settings.group_size,
        settings.k,
        settings.num_items,
        footprint.to_json(),
        split.to_json(),
        rows.iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = "BENCH_engine.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_engine.json");
    println!("\nwrote {path}");
}
