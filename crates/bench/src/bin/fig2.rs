//! Regenerates Figure 2 (consensus-function preference).
use greca_eval::WorldConfig;
fn main() {
    let world = WorldConfig::study_scale().build();
    greca_bench::experiments::fig2(&world, greca_bench::Scale::Full);
}
