//! Regenerates Figure 7 (%SA per group characteristic).
use greca_bench::{PerfWorld, Scale};
fn main() {
    let pw = PerfWorld::build();
    greca_bench::experiments::fig7(&pw, Scale::Full);
}
