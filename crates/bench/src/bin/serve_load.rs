//! `serve_load`: a closed-loop, multi-client load harness for the
//! `greca-serve` front-end, emitting `BENCH_serve.json`.
//!
//! Five phases, all against real sockets on an ephemeral port:
//!
//! 1. **Mixed workload** — `CLIENTS` threads in closed loop, each
//!    request drawn per-client-deterministically: mostly queries over a
//!    small pool of *hot* groups (cache exercise), a slice of *cold*
//!    one-shot groups (guaranteed misses), and a trickle of single
//!    rating `ingest`s (epoch swaps that invalidate the cache
//!    mid-flight). Client-side latencies are recorded exactly and split
//!    by verb and by the server's reported cache disposition.
//! 2. **Identity verification** — after the workload quiesces, every
//!    hot group (and fresh cold groups) is asked once more over the
//!    wire and the payload is compared **bit for bit** (item ids, lb/ub
//!    float bits, SA/RA counters, sweeps) against a direct
//!    `PinnedEpoch::engine()` run at the same epoch. `identical` in the
//!    JSON is the AND over all of them.
//! 3. **Survival** — a fresh server warms a pool of overlapping
//!    groups, then one ingest publishes an epoch swap whose dirty set
//!    is *disjoint* from every warm footprint. Re-querying measures
//!    the post-swap hit rate twice: once under the default selective
//!    invalidation (disjoint entries survive, re-stamped to the new
//!    epoch) and once against a wholesale-invalidation baseline
//!    (`selective_invalidation: false`, everything dropped). Every
//!    surviving answer is bit-compared against a direct engine run at
//!    the new epoch.
//! 4. **Subscriptions** — a client `subscribe`s a continuous group
//!    query, then streams rating ingests that touch the group. The
//!    pushed delta frames must carry strictly increasing epochs (zero
//!    stale pushes) and the final pushed state must equal a direct
//!    engine run at the final epoch, bit for bit.
//! 5. **Overload** — a second server with deliberately tight admission
//!    (2 query workers, queue of 8) takes a burst of closed-loop
//!    clients issuing unique-group queries. The acceptance shape: a
//!    healthy overload response sheds (`overloaded` replies > 0) while
//!    the p99 of *accepted* requests stays bounded by queue depth ×
//!    service time — not by how much demand arrived.
//!
//! Gates asserted by the binary (always, including `--quick` — the CI
//! smoke): `identical == true`, zero protocol errors, survivor
//! identity (`survivors_identical == true`), post-swap hit rate ≥ 2×
//! the wholesale baseline, zero stale pushes and a convergent push
//! stream. The full run additionally gates cache-hit p50 ≥ 10× faster
//! than cache-miss p50 and a shedding, bounded-p99 overload phase.
//!
//! Run with: `cargo run -p greca-bench --release --bin serve_load`
//! (pass `--quick` for the small study world and a shorter workload, or
//! `--world <study|10k|100k|1m>` to front a generated worldgen tier
//! instead of the built-in study worlds). Pass `--overlap <frac>` to
//! draw chained groups sharing that fraction of consecutive membership
//! instead of independent random groups — cache-miss queries then
//! exercise the planner's epoch-scoped shared member arena (distinct
//! overlapping groups resolve each member's lists once per epoch).
//! Pass `--seed <u64>` to re-key every client RNG and group draw for a
//! reproducible-but-different CI smoke.

use greca_affinity::PopulationAffinity;
use greca_bench::harness::{banner, print_row};
use greca_bench::{PerfSettings, PerfWorld};
use greca_core::{LiveEngine, LiveModel};
use greca_dataset::{Group, ItemId, RatingMatrix, UserId};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use greca_worldgen::{GenWorld, Tier};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One recorded request from a workload client.
struct Sample {
    verb: &'static str,
    /// Cache disposition for queries (`hit`/`miss`/…), `-` otherwise.
    disposition: String,
    latency: Duration,
    ok: bool,
    shed: bool,
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sorted_ms(samples: impl Iterator<Item = Duration>) -> Vec<f64> {
    let mut ms: Vec<f64> = samples.map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ms
}

/// A query line over the provider's default candidate itemset — the
/// production shape: the client names a group, the server resolves
/// what is recommendable (catalog minus the group's rated items).
fn query_body(group: &Group, k: usize) -> Json {
    Json::obj(vec![
        ("verb", Json::str("query")),
        (
            "group",
            Json::Arr(group.members().iter().map(|u| Json::num(u.0)).collect()),
        ),
        ("k", Json::num(k as u32)),
    ])
}

/// Compare one served payload against a direct engine run, bit for bit.
fn payload_identical(response: &Json, direct: &greca_core::TopKResult) -> bool {
    let Some(items) = response.get("items").and_then(Json::as_array) else {
        return false;
    };
    if items.len() != direct.items.len() {
        return false;
    }
    let rows_match = items.iter().zip(&direct.items).all(|(got, want)| {
        got.get("item").and_then(Json::as_u64) == Some(u64::from(want.item.0))
            && got.get("lb").and_then(Json::as_f64).map(f64::to_bits) == Some(want.lb.to_bits())
            && got.get("ub").and_then(Json::as_f64).map(f64::to_bits) == Some(want.ub.to_bits())
    });
    rows_match
        && response.get("sa").and_then(Json::as_u64) == Some(direct.stats.sa)
        && response.get("ra").and_then(Json::as_u64) == Some(direct.stats.ra)
        && response.get("sweeps").and_then(Json::as_u64) == Some(direct.sweeps)
}

#[allow(clippy::too_many_arguments)]
fn mixed_workload(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    hot_groups: &[Group],
    cold_groups: &[Vec<Group>],
    items: &[ItemId],
    users: &[UserId],
    k: usize,
    seed: u64,
) -> Vec<Sample> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let cold = &cold_groups[c];
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rng = StdRng::seed_from_u64(0x10ad ^ seed ^ (c as u64) << 17);
                    let mut samples = Vec::with_capacity(requests);
                    let mut cold_iter = cold.iter().cycle();
                    for r in 0..requests {
                        let roll: f64 = rng.random();
                        let t0 = Instant::now();
                        let (verb, response) = if roll < 0.05 {
                            // A single-rating ingest: rotate through
                            // users × items × star values.
                            let u = users[rng.random_range(0..users.len())];
                            let i = items[rng.random_range(0..items.len())];
                            let value = (r % 5) as f32 + 1.0;
                            (
                                "ingest",
                                client.ingest(&[(u.0, i.0, value, (c * requests + r) as i64)]),
                            )
                        } else {
                            let group = if roll < 0.15 {
                                cold_iter.next().expect("cycle")
                            } else {
                                &hot_groups[rng.random_range(0..hot_groups.len())]
                            };
                            ("query", client.request(&query_body(group, k)))
                        };
                        let latency = t0.elapsed();
                        let response = response.expect("transport");
                        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
                        let code = response.get("code").and_then(Json::as_str).unwrap_or("");
                        samples.push(Sample {
                            verb,
                            disposition: response
                                .get("cache")
                                .and_then(Json::as_str)
                                .unwrap_or("-")
                                .to_string(),
                            latency,
                            ok,
                            shed: code == "overloaded",
                        });
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

/// The world behind the server: one of the built-in study worlds, or a
/// generated worldgen tier (`--world <tier>`). Everything downstream —
/// the live engine, the group workloads, the verification phase — goes
/// through this so the serving stack runs unchanged on either.
enum LoadWorld {
    Study(Box<PerfWorld>),
    Gen(Box<GenWorld>),
}

impl LoadWorld {
    fn population(&self) -> &PopulationAffinity {
        match self {
            LoadWorld::Study(pw) => &pw.world().population,
            LoadWorld::Gen(w) => &w.population,
        }
    }

    fn matrix(&self) -> &RatingMatrix {
        match self {
            LoadWorld::Study(pw) => &pw.world().movielens.matrix,
            LoadWorld::Gen(w) => &w.matrix,
        }
    }

    /// The substrate's itemset. For the study worlds this is the full
    /// catalog so every group's default candidate itemset (catalog
    /// minus rated) stays on the warm subset-filter path; generated
    /// worlds serve their Zipf-head serving slice.
    fn items(&self) -> Vec<ItemId> {
        match self {
            LoadWorld::Study(pw) => pw.items(usize::MAX),
            LoadWorld::Gen(w) => w.serving_items(),
        }
    }

    /// Draw `n` groups of `size` cohort users, deterministically in
    /// `seed`. With `overlap` unset, study worlds draw independent
    /// random groups and generated worlds use their overlapping
    /// workload at 0.5 (the cache-friendly sharing shape);
    /// `--overlap <frac>` forces chained membership at that fraction
    /// on either world.
    fn groups(&self, n: usize, size: usize, overlap: Option<f64>, seed: u64) -> Vec<Group> {
        match self {
            LoadWorld::Study(pw) => match overlap {
                Some(f) => {
                    let users = pw.world().study_users();
                    chained_groups(&users, n, size, f, seed)
                }
                None => pw.random_groups(n, size, seed),
            },
            LoadWorld::Gen(w) => w.group_workload(n, size, overlap.unwrap_or(0.5), seed),
        }
    }
}

/// Chained overlapping groups over `users`: consecutive groups keep
/// ~`overlap` of the previous membership (the same shape as worldgen's
/// `group_workload`, for worlds without one). Deterministic in `seed`.
fn chained_groups(users: &[UserId], n: usize, size: usize, overlap: f64, seed: u64) -> Vec<Group> {
    assert!((0.0..=1.0).contains(&overlap), "overlap is a fraction");
    assert!(size >= 2 && size <= users.len(), "group size within cohort");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0e11_a9ed);
    let keep = ((size as f64 * overlap).round() as usize).min(size - 1);
    let mut groups = Vec::with_capacity(n);
    let mut prev: Vec<UserId> = Vec::new();
    for _ in 0..n {
        let mut members: Vec<UserId> = prev.iter().copied().take(keep).collect();
        while members.len() < size {
            let cand = users[rng.random_range(0..users.len())];
            if !members.contains(&cand) {
                members.push(cand);
            }
        }
        prev = members.clone();
        groups.push(Group::new(members).expect("non-empty distinct members"));
    }
    groups
}

/// What one survival-phase run (one server, one invalidation policy)
/// measured.
struct SurvivalOutcome {
    /// Post-swap re-queries answered from cache.
    hits: usize,
    /// Re-queries issued (one per warm group).
    total: usize,
    /// `cache.survivors` as reported by the server's `stats` verb.
    survivors: u64,
    /// `cache.survival_rate` as reported by the server.
    survival_rate: f64,
    /// AND over bit-comparisons of every post-swap answer against a
    /// direct engine run at the new epoch.
    identical: bool,
}

impl SurvivalOutcome {
    fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Phase 3 (one policy): warm `groups` into a fresh server's cache,
/// publish one epoch swap whose dirty set is disjoint from every warm
/// footprint, and re-query. Under selective invalidation the warm
/// entries survive the swap as hits at the new epoch; the wholesale
/// baseline drops everything. Every post-swap answer is bit-compared
/// against direct engine execution at the new epoch.
fn survival_phase(
    live: &LiveEngine,
    groups: &[Group],
    disjoint_user: UserId,
    item: ItemId,
    k: usize,
    world_label: &str,
    selective: bool,
) -> SurvivalOutcome {
    let server = GrecaServer::bind(
        live,
        ServeConfig {
            selective_invalidation: selective,
            world_label: world_label.to_string(),
            ..ServeConfig::default()
        },
    )
    .expect("bind survival");
    let handle = server.handle();
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for group in groups {
            let warm = client.request(&query_body(group, k)).expect("warm query");
            assert_eq!(
                warm.get("ok").and_then(Json::as_bool),
                Some(true),
                "warm query must succeed"
            );
        }
        // One rating from a user outside every warm group: the
        // published dirty set is disjoint from every cached footprint.
        client
            .ingest(&[(disjoint_user.0, item.0, 3.5, 7)])
            .expect("swap ingest");
        let pin = live.pin();
        let engine = pin.engine();
        let (mut hits, mut identical) = (0usize, true);
        for group in groups {
            let served = client.request(&query_body(group, k)).expect("re-query");
            if served.get("cache").and_then(Json::as_str) == Some("hit") {
                hits += 1;
            }
            if served.get("epoch").and_then(Json::as_u64) != Some(pin.epoch()) {
                identical = false;
                continue;
            }
            let direct = engine.query(group).top(k).run().expect("direct run");
            identical &= payload_identical(&served, &direct);
        }
        let stats = client.stats().expect("stats");
        let cache = stats.get("cache").expect("stats.cache");
        let outcome = SurvivalOutcome {
            hits,
            total: groups.len(),
            survivors: cache.get("survivors").and_then(Json::as_u64).unwrap_or(0),
            survival_rate: cache
                .get("survival_rate")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            identical,
        };
        handle.shutdown();
        outcome
    })
}

/// What the subscription phase observed on the wire.
struct SubscriptionOutcome {
    /// Push frames received.
    pushes: usize,
    /// Frames whose epoch failed to strictly increase past the
    /// baseline and every earlier frame (must be 0).
    stale: usize,
    /// The last pushed state equals a direct engine run at the final
    /// epoch, bit for bit.
    convergent: bool,
}

/// Phase 4: subscribe a continuous group query over an explicit
/// itemset, stream rating ingests that touch the group, and audit the
/// pushed delta stream: strictly increasing epochs and bit-identical
/// convergence with direct execution at the final epoch.
fn subscription_phase(
    live: &LiveEngine,
    group: &Group,
    feed: &[ItemId],
    k: usize,
    world_label: &str,
    swaps: usize,
) -> SubscriptionOutcome {
    let server = GrecaServer::bind(
        live,
        ServeConfig {
            world_label: world_label.to_string(),
            ..ServeConfig::default()
        },
    )
    .expect("bind subscriptions");
    let handle = server.handle();
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let members: Vec<u32> = group.members().iter().map(|u| u.0).collect();
        let feed_ids: Vec<u32> = feed.iter().map(|i| i.0).collect();
        let baseline = client
            .subscribe(&members, Some(&feed_ids), Some(k))
            .expect("subscribe");
        assert_eq!(
            baseline.get("ok").and_then(Json::as_bool),
            Some(true),
            "subscribe must succeed"
        );
        let base_epoch = baseline
            .get("epoch")
            .and_then(Json::as_u64)
            .expect("baseline epoch");
        for r in 0..swaps {
            let u = members[r % members.len()];
            let i = feed_ids[r % feed_ids.len()];
            // Non-integral, varying values so consecutive swaps keep
            // moving the scores (and therefore keep producing pushes).
            let value = 1.05 + (r % 8) as f32 * 0.45;
            client.ingest(&[(u, i, value, r as i64)]).expect("ingest");
        }
        // Drain the push stream: the pump coalesces bursts, so wait
        // for silence rather than for one frame per publish.
        let mut frames: Vec<Json> = client.take_pushes();
        while let Some(frame) = client
            .poll_push(Duration::from_millis(400))
            .expect("poll push")
        {
            frames.push(frame);
        }
        let pin = live.pin();
        let direct = pin
            .engine()
            .query(group)
            .items(feed)
            .top(k)
            .run()
            .expect("direct run");
        let mut stale = 0usize;
        let mut prev = base_epoch;
        for frame in &frames {
            let epoch = frame
                .get("epoch")
                .and_then(Json::as_u64)
                .expect("push epoch");
            if epoch <= prev {
                stale += 1;
            }
            prev = epoch;
        }
        // If the last swap left the top-k bit-identical the pump
        // rightly stays quiet, so compare whatever state the client
        // last saw (baseline if nothing ever changed).
        let last_seen = frames.last().unwrap_or(&baseline);
        let outcome = SubscriptionOutcome {
            pushes: frames.len(),
            stale,
            convergent: payload_identical(last_seen, &direct),
        };
        handle.shutdown();
        outcome
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tier: Option<Tier> = args.windows(2).find(|w| w[0] == "--world").map(|w| {
        Tier::parse(&w[1])
            .unwrap_or_else(|| panic!("unknown tier '{}' (expected study/10k/100k/1m)", w[1]))
    });
    let overlap: Option<f64> = args.windows(2).find(|w| w[0] == "--overlap").map(|w| {
        let f: f64 = w[1]
            .parse()
            .unwrap_or_else(|_| panic!("--overlap takes a fraction, got '{}'", w[1]));
        assert!((0.0..=1.0).contains(&f), "--overlap must be in [0, 1]");
        f
    });
    let seed: u64 = args
        .windows(2)
        .find(|w| w[0] == "--seed")
        .map(|w| {
            w[1].parse()
                .unwrap_or_else(|_| panic!("--seed takes a u64, got '{}'", w[1]))
        })
        .unwrap_or(0);
    banner("serve_load: mixed-workload load harness over greca-serve");
    let (clients, requests, overload_clients) = if quick { (6, 50, 16) } else { (12, 200, 48) };
    let settings = if quick {
        PerfSettings {
            num_items: 600,
            ..PerfSettings::default()
        }
    } else {
        PerfSettings::default()
    };
    let (world, world_label) = match tier {
        Some(t) => (
            LoadWorld::Gen(Box::new(GenWorld::of_tier(t))),
            format!("worldgen:{}", t.name()),
        ),
        None if quick => (
            LoadWorld::Study(Box::new(PerfWorld::build_small())),
            "study_scale".to_string(),
        ),
        None => (
            LoadWorld::Study(Box::new(PerfWorld::build())),
            "scalability_scale".to_string(),
        ),
    };
    let items = world.items();
    let k = settings.k;

    let live = LiveEngine::new(world.population(), LiveModel::Raw, world.matrix(), &items)
        .expect("finite ratings");
    let users: Vec<UserId> = live.pin().substrate().users().to_vec();
    let hot_groups = world.groups(6, settings.group_size, overlap, 0xb07 ^ seed);
    let cold_groups: Vec<Vec<Group>> = (0..clients)
        .map(|c| world.groups(20, settings.group_size, overlap, (0xc01d + c as u64) ^ seed))
        .collect();
    print_row("world", &world_label);
    print_row("seed", seed);
    print_row(
        "overlap",
        overlap.map_or("default".to_string(), |f| format!("{f}")),
    );
    print_row("items", items.len());
    print_row("clients × requests", format!("{clients} × {requests}"));

    // ── Phase 1: mixed workload ──────────────────────────────────────
    let server = GrecaServer::bind(
        &live,
        ServeConfig {
            world_label: world_label.clone(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let handle = server.handle();
    let (samples, stats_line, verify_identical, protocol_errors) = std::thread::scope(|s| {
        s.spawn(|| server.run());
        let t0 = Instant::now();
        let samples = mixed_workload(
            handle.addr(),
            clients,
            requests,
            &hot_groups,
            &cold_groups,
            &items,
            &users,
            k,
            seed,
        );
        let wall = t0.elapsed();
        print_row(
            "workload wall / throughput",
            format!(
                "{:7.2} s / {:7.0} req/s",
                wall.as_secs_f64(),
                samples.len() as f64 / wall.as_secs_f64()
            ),
        );

        // ── Phase 2: identity verification at the quiesced epoch ────
        let mut client = Client::connect(handle.addr()).expect("connect");
        let verify_groups: Vec<Group> = hot_groups
            .iter()
            .cloned()
            .chain(world.groups(4, settings.group_size, overlap, 0x1d37 ^ seed))
            .collect();
        let pin = live.pin();
        let engine = pin.engine();
        let mut identical = true;
        for group in &verify_groups {
            let served = client.request(&query_body(group, k)).expect("verify query");
            if served.get("epoch").and_then(Json::as_u64) != Some(pin.epoch()) {
                identical = false;
                continue;
            }
            let direct = engine.query(group).top(k).run().expect("direct run");
            identical &= payload_identical(&served, &direct);
        }
        let stats = client.stats().expect("stats");
        let protocol_errors = server.metrics().protocol_errors.load(Ordering::Relaxed);
        handle.shutdown();
        (samples, stats, identical, protocol_errors)
    });

    let query_ms = sorted_ms(
        samples
            .iter()
            .filter(|s| s.verb == "query" && s.ok)
            .map(|s| s.latency),
    );
    let ingest_ms = sorted_ms(
        samples
            .iter()
            .filter(|s| s.verb == "ingest" && s.ok)
            .map(|s| s.latency),
    );
    let hit_ms = sorted_ms(
        samples
            .iter()
            .filter(|s| s.disposition == "hit")
            .map(|s| s.latency),
    );
    let miss_ms = sorted_ms(
        samples
            .iter()
            .filter(|s| s.disposition == "miss")
            .map(|s| s.latency),
    );
    let hit_p50 = percentile_ms(&hit_ms, 0.5);
    let miss_p50 = percentile_ms(&miss_ms, 0.5);
    let hit_speedup = if hit_p50 > 0.0 {
        miss_p50 / hit_p50
    } else {
        0.0
    };
    let cache_json = stats_line.get("cache").expect("stats.cache");
    let hit_rate = cache_json
        .get("hit_rate")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let publishes = stats_line
        .get("metrics")
        .and_then(|m| m.get("publishes_observed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let memory_total = stats_line
        .get("memory")
        .and_then(|m| m.get("total_bytes"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    print_row(
        "query p50 / p99",
        format!(
            "{:8.3} ms / {:8.3} ms  (n={})",
            percentile_ms(&query_ms, 0.5),
            percentile_ms(&query_ms, 0.99),
            query_ms.len()
        ),
    );
    print_row(
        "ingest p50 / p99",
        format!(
            "{:8.3} ms / {:8.3} ms  (n={})",
            percentile_ms(&ingest_ms, 0.5),
            percentile_ms(&ingest_ms, 0.99),
            ingest_ms.len()
        ),
    );
    print_row(
        "cache hit p50 vs miss p50",
        format!("{hit_p50:8.3} ms vs {miss_p50:8.3} ms  ({hit_speedup:.1}×)"),
    );
    print_row("cache hit rate", format!("{:.1}%", hit_rate * 100.0));
    print_row("epoch publishes observed", publishes);
    print_row(
        "substrate memory",
        format!("{:.1} MiB", memory_total as f64 / (1024.0 * 1024.0)),
    );
    print_row("identical (served == direct)", verify_identical);
    print_row("protocol errors", protocol_errors);

    // ── Phase 3: cache survival across a disjoint epoch swap ────────
    banner("survival: selective invalidation vs wholesale baseline");
    let survival_groups = world.groups(
        8,
        settings.group_size,
        Some(overlap.unwrap_or(0.5)),
        0x5afe ^ seed,
    );
    let member_union: std::collections::HashSet<UserId> = survival_groups
        .iter()
        .flat_map(|g| g.members().iter().copied())
        .collect();
    let disjoint_user = users
        .iter()
        .copied()
        .find(|u| !member_union.contains(u))
        .expect("a user outside every survival group");
    let surv_selective = survival_phase(
        &live,
        &survival_groups,
        disjoint_user,
        items[0],
        k,
        &world_label,
        true,
    );
    let surv_wholesale = survival_phase(
        &live,
        &survival_groups,
        disjoint_user,
        items[0],
        k,
        &world_label,
        false,
    );
    print_row(
        "post-swap hits (selective vs wholesale)",
        format!(
            "{}/{} vs {}/{}",
            surv_selective.hits, surv_selective.total, surv_wholesale.hits, surv_wholesale.total
        ),
    );
    print_row(
        "survivors / survival rate",
        format!(
            "{} / {:.1}%",
            surv_selective.survivors,
            surv_selective.survival_rate * 100.0
        ),
    );
    print_row("survivors identical", surv_selective.identical);

    // ── Phase 4: continuous queries over the push stream ────────────
    banner("subscriptions: push stream under streaming ingests");
    let sub_swaps = if quick { 8 } else { 24 };
    let feed: Vec<ItemId> = items.iter().copied().take(48).collect();
    let subs = subscription_phase(
        &live,
        &survival_groups[0],
        &feed,
        k.min(feed.len()),
        &world_label,
        sub_swaps,
    );
    print_row(
        "pushes / stale / convergent",
        format!("{} / {} / {}", subs.pushes, subs.stale, subs.convergent),
    );

    // ── Phase 5: overload ────────────────────────────────────────────
    banner("overload: tight admission, unique-group burst");
    let overload_config = ServeConfig {
        query_workers: 2,
        query_queue: 8,
        world_label: world_label.clone(),
        ..ServeConfig::default()
    };
    let (oq_workers, oq_queue) = (overload_config.query_workers, overload_config.query_queue);
    let over_server = GrecaServer::bind(&live, overload_config).expect("bind overload");
    let over_handle = over_server.handle();
    let over_requests = if quick { 10 } else { 25 };
    let over_cold: Vec<Vec<Group>> = (0..overload_clients)
        .map(|c| {
            world.groups(
                over_requests,
                settings.group_size,
                overlap,
                (0x0537 + c as u64) ^ seed,
            )
        })
        .collect();
    let over_samples = std::thread::scope(|s| {
        s.spawn(|| over_server.run());
        let samples = mixed_workload(
            over_handle.addr(),
            overload_clients,
            over_requests,
            // No hot pool: route every query cold so each accepted
            // request costs a kernel run.
            &over_cold[0],
            &over_cold,
            &items,
            &users,
            k,
            seed,
        );
        over_handle.shutdown();
        samples
    });
    let accepted_ms = sorted_ms(
        over_samples
            .iter()
            .filter(|s| s.verb == "query" && s.ok)
            .map(|s| s.latency),
    );
    let shed: usize = over_samples.iter().filter(|s| s.shed).count();
    let over_p50 = percentile_ms(&accepted_ms, 0.5);
    let over_p99 = percentile_ms(&accepted_ms, 0.99);
    // Bounded-p99 criterion: an accepted request can wait behind at
    // most (queue + workers) kernel runs, so p99 must track queue
    // depth × service time, not offered load. 8× headroom over that
    // product absorbs scheduler noise; the absolute floor keeps the
    // tiny quick world from gating on microsecond jitter.
    let p99_bound_ms = (8.0 * (oq_queue + oq_workers) as f64 * miss_p50.max(over_p50)).max(250.0);
    let bounded = over_p99 < p99_bound_ms;
    print_row(
        "overload clients / capacity",
        format!("{overload_clients} / queue {oq_queue} + {oq_workers} workers"),
    );
    print_row(
        "accepted p50 / p99",
        format!("{over_p50:8.3} ms / {over_p99:8.3} ms (bound {p99_bound_ms:.0} ms)"),
    );
    print_row(
        "shed (overloaded replies)",
        format!("{shed} of {}", over_samples.len()),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"world\": \"{world}\",\n",
            "  \"overlap\": {overlap},\n",
            "  \"clients\": {clients},\n",
            "  \"requests_per_client\": {requests},\n",
            "  \"verbs\": {{\n",
            "    \"query\": {{\"requests\": {qn}, \"p50_ms\": {qp50:.4}, \"p99_ms\": {qp99:.4}}},\n",
            "    \"ingest\": {{\"requests\": {inn}, \"p50_ms\": {ip50:.4}, \"p99_ms\": {ip99:.4}}}\n",
            "  }},\n",
            "  \"cache\": {{\"hit_rate\": {hit_rate:.4}, \"hit_p50_ms\": {hp50:.4}, \"miss_p50_ms\": {mp50:.4}, \"hit_speedup\": {speedup:.1}}},\n",
            "  \"survival\": {{\"groups\": {sgroups}, \"selective_hit_rate\": {srate:.4}, \"wholesale_hit_rate\": {wrate:.4}, \"survivors\": {survivors}, \"survival_rate\": {survrate:.4}, \"survivors_identical\": {sident}}},\n",
            "  \"subscriptions\": {{\"pushes\": {pushes}, \"stale_pushes\": {stale}, \"convergent\": {convergent}}},\n",
            "  \"epoch_publishes\": {publishes},\n",
            "  \"substrate_total_bytes\": {memory},\n",
            "  \"overload\": {{\"clients\": {oc}, \"queue\": {oq}, \"workers\": {ow}, \"accepted\": {oacc}, \"shed\": {shed}, \"p50_ms\": {op50:.4}, \"p99_ms\": {op99:.4}, \"p99_bound_ms\": {obound:.1}, \"bounded\": {bounded}}},\n",
            "  \"identical\": {identical},\n",
            "  \"protocol_errors\": {perr}\n",
            "}}\n",
        ),
        world = world_label,
        overlap = overlap.map_or("null".to_string(), |f| format!("{f}")),
        clients = clients,
        requests = requests,
        qn = query_ms.len(),
        qp50 = percentile_ms(&query_ms, 0.5),
        qp99 = percentile_ms(&query_ms, 0.99),
        inn = ingest_ms.len(),
        ip50 = percentile_ms(&ingest_ms, 0.5),
        ip99 = percentile_ms(&ingest_ms, 0.99),
        hit_rate = hit_rate,
        hp50 = hit_p50,
        mp50 = miss_p50,
        speedup = hit_speedup,
        sgroups = surv_selective.total,
        srate = surv_selective.hit_rate(),
        wrate = surv_wholesale.hit_rate(),
        survivors = surv_selective.survivors,
        survrate = surv_selective.survival_rate,
        sident = surv_selective.identical,
        pushes = subs.pushes,
        stale = subs.stale,
        convergent = subs.convergent,
        publishes = publishes,
        memory = memory_total,
        oc = overload_clients,
        oq = oq_queue,
        ow = oq_workers,
        oacc = accepted_ms.len(),
        shed = shed,
        op50 = over_p50,
        op99 = over_p99,
        obound = p99_bound_ms,
        bounded = bounded,
        identical = verify_identical,
        perr = protocol_errors,
    );
    let path = "BENCH_serve.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_serve.json");
    println!("\nwrote {path}");

    // The CI gates: every run (quick included) must serve bit-identical
    // results with a clean protocol; the full run additionally gates
    // the cache and overload headlines.
    assert!(
        verify_identical,
        "served results must equal direct engine execution"
    );
    assert_eq!(
        protocol_errors, 0,
        "no protocol errors under the mixed workload"
    );
    assert!(
        surv_selective.identical && surv_wholesale.identical,
        "post-swap answers (survivors included) must equal direct execution at the new epoch"
    );
    assert!(
        surv_selective.hits >= 1 && surv_selective.hits >= 2 * surv_wholesale.hits,
        "selective post-swap hit rate ({:.2}) must be at least 2x the wholesale baseline ({:.2})",
        surv_selective.hit_rate(),
        surv_wholesale.hit_rate()
    );
    assert_eq!(subs.stale, 0, "push epochs must strictly increase");
    assert!(
        subs.pushes >= 1,
        "streaming ingests that touch the subscribed group must push"
    );
    assert!(
        subs.convergent,
        "the last pushed state must equal direct execution at the final epoch"
    );
    // The performance headlines gate only the calibrated full study
    // run; `--world` tier runs are exploratory capacity probes.
    if !quick && tier.is_none() {
        assert!(
            hit_speedup >= 10.0,
            "cache-hit p50 ({hit_p50:.3} ms) must be ≥10× faster than miss p50 ({miss_p50:.3} ms)"
        );
        assert!(shed > 0, "the overload burst must shed");
        assert!(
            bounded,
            "overload p99 {over_p99:.1} ms exceeds bound {p99_bound_ms:.1} ms"
        );
    }
}
