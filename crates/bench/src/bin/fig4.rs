//! Regenerates Figure 4 (time-period granularity sweep).
use greca_eval::WorldConfig;
fn main() {
    let world = WorldConfig::study_scale().build();
    greca_bench::experiments::fig4(&world);
}
