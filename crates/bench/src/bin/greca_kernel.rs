//! GRECA kernel microbenchmark: per-`StoppingRule × CheckInterval`
//! latency of the allocation-free execution core, with the identity
//! gates CI relies on.
//!
//! Measures mean per-query kernel latency (preparation excluded — the
//! queries are prepared once) over the §4.2 random groups for a grid of
//! stopping rules and check cadences, reusing one [`GrecaScratch`]
//! across every run the way a serving worker does. Before timing, it
//! verifies:
//!
//! * **scratch identity** — every combo's result through a recycled
//!   scratch equals a fresh-scratch run bit-for-bit (workspace reuse
//!   cannot leak state);
//! * **truth identity** — every combo's returned itemset carries exact
//!   scores matching the `StoppingRule::Exhaustive` oracle's top-k.
//!
//! Emits `BENCH_greca_kernel.json` with an `identical` flag CI asserts,
//! plus a generous latency sanity budget in `--quick` mode (catching
//! kernel regressions without a flaky perf gate).
//!
//! Run with: `cargo run -p greca-bench --release --bin greca_kernel`
//! (pass `--quick` for the small study world).

use greca_bench::harness::{banner, print_row};
use greca_bench::{PerfSettings, PerfWorld};
use greca_core::{
    Algorithm, CheckInterval, GrecaConfig, GrecaScratch, PreparedQuery, StoppingRule,
};
use std::io::Write;
use std::time::Instant;

/// Latency budget (ms/query) for the default GRECA configuration in
/// `--quick` mode — several times the current measurement, so only a
/// real kernel regression trips it.
const QUICK_BUDGET_MS: f64 = 60.0;

const COMBOS: [(StoppingRule, &str, CheckInterval, &str); 6] = [
    (
        StoppingRule::Greca,
        "greca",
        CheckInterval::EverySweep,
        "every_sweep",
    ),
    (
        StoppingRule::Greca,
        "greca",
        CheckInterval::Sweeps(4),
        "sweeps_4",
    ),
    (
        StoppingRule::Greca,
        "greca",
        CheckInterval::Adaptive,
        "adaptive",
    ),
    (
        StoppingRule::ThresholdOnly,
        "threshold_only",
        CheckInterval::Adaptive,
        "adaptive",
    ),
    (
        StoppingRule::Exhaustive,
        "exhaustive",
        CheckInterval::EverySweep,
        "every_sweep",
    ),
    (
        StoppingRule::Greca,
        "greca",
        CheckInterval::Sweeps(1),
        "sweeps_1",
    ),
];

struct KernelRow {
    stopping: &'static str,
    check_interval: &'static str,
    mean_latency_ms: f64,
    sa_percent_mean: f64,
}

impl KernelRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"stopping\":\"{}\",\"check_interval\":\"{}\",\"mean_latency_ms\":{:.4},\"sa_percent_mean\":{:.4}}}",
            self.stopping, self.check_interval, self.mean_latency_ms, self.sa_percent_mean,
        )
    }
}

/// Whether the returned itemset's exact scores match the exhaustive
/// truth's top-k score multiset (ties may swap items; scores may not
/// differ).
fn matches_truth(p: &PreparedQuery, got: &greca_core::TopKResult, k: usize) -> bool {
    let exact = p.exact_scores();
    let want: Vec<f64> = exact.iter().take(k).map(|&(_, s)| s).collect();
    let mut have: Vec<f64> = got
        .items
        .iter()
        .map(|t| {
            exact
                .iter()
                .find(|&&(i, _)| i == t.item)
                .map(|&(_, s)| s)
                .unwrap_or(f64::NAN)
        })
        .collect();
    have.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    have.len() == want.len() && have.iter().zip(&want).all(|(h, w)| (h - w).abs() < 1e-6)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner("GRECA kernel: allocation-free execution core microbenchmark");
    let (pw, settings, world_label, rounds) = if quick {
        (
            PerfWorld::build_small(),
            PerfSettings {
                num_items: 600,
                ..PerfSettings::default()
            },
            "study_scale",
            2usize,
        )
    } else {
        (
            PerfWorld::build(),
            PerfSettings::default(),
            "scalability_scale",
            3usize,
        )
    };
    print_row("world", world_label);
    print_row("groups", settings.num_groups);
    print_row("k", settings.k);
    print_row("items", settings.num_items);

    let cf = pw.cf();
    let groups = pw.random_groups(settings.num_groups, settings.group_size, settings.seed);
    let prepared: Vec<PreparedQuery> = groups
        .iter()
        .map(|g| pw.prepare_group(&cf, g, &settings))
        .collect();
    let config_of = |stopping, check| {
        Algorithm::Greca(
            GrecaConfig::top(settings.k)
                .stopping(stopping)
                .check_interval(check),
        )
    };

    // Identity gates first (untimed): scratch reuse is bit-identical to
    // fresh scratches, and every combo's itemset matches the exhaustive
    // truth.
    let mut scratch = GrecaScratch::new();
    let mut identical = true;
    for p in &prepared {
        for (stopping, _, check, _) in COMBOS {
            let alg = config_of(stopping, check);
            let fresh = p.run_algorithm(alg);
            let reused = p.run_algorithm_with(alg, &mut scratch);
            identical &= fresh == reused;
            identical &= matches_truth(p, &reused, settings.k);
        }
    }
    print_row("identical", identical);

    // Latency rows: each combo over all groups × rounds, one recycled
    // scratch (the serving shape).
    let mut rows = Vec::new();
    for (stopping, s_label, check, c_label) in COMBOS {
        let alg = config_of(stopping, check);
        let mut sa_sum = 0.0;
        let start = Instant::now();
        for _ in 0..rounds {
            for p in &prepared {
                let r = p.run_algorithm_with(alg, &mut scratch);
                sa_sum += r.stats.sa_percent();
            }
        }
        let mean_latency_ms =
            start.elapsed().as_secs_f64() * 1e3 / (rounds * prepared.len()) as f64;
        let row = KernelRow {
            stopping: s_label,
            check_interval: c_label,
            mean_latency_ms,
            sa_percent_mean: sa_sum / (rounds * prepared.len()) as f64,
        };
        println!(
            "  {:<16} {:<12} latency = {:9.3} ms/query   %SA = {:6.2}",
            row.stopping, row.check_interval, row.mean_latency_ms, row.sa_percent_mean,
        );
        rows.push(row);
    }

    assert!(
        identical,
        "kernel outputs must be bit-identical across scratch reuse and match the exhaustive truth"
    );
    if quick {
        // The serving default, looked up by label so reordering or
        // extending COMBOS cannot silently gate the wrong combo.
        let default_row = rows
            .iter()
            .find(|r| r.stopping == "greca" && r.check_interval == "adaptive")
            .expect("the serving-default combo is benchmarked");
        assert!(
            default_row.mean_latency_ms <= QUICK_BUDGET_MS,
            "GRECA kernel regression: {:.3} ms/query exceeds the {} ms sanity budget",
            default_row.mean_latency_ms,
            QUICK_BUDGET_MS
        );
    }

    let json = format!(
        "{{\n  \"world\": \"{}\",\n  \"num_groups\": {},\n  \"group_size\": {},\n  \"k\": {},\n  \"num_items\": {},\n  \"identical\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        world_label,
        settings.num_groups,
        settings.group_size,
        settings.k,
        settings.num_items,
        identical,
        rows.iter()
            .map(KernelRow::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = "BENCH_greca_kernel.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_greca_kernel.json");
    println!("\nwrote {path}");
}
