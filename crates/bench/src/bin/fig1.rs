//! Regenerates Figure 1 (independent quality evaluation).
use greca_eval::WorldConfig;
fn main() {
    let world = WorldConfig::study_scale().build();
    greca_bench::experiments::fig1(&world, greca_bench::Scale::Full);
}
