//! `chaos`: a deterministic crash/fault/recovery harness for the full
//! serve stack, emitting `BENCH_chaos.json`.
//!
//! The harness runs N **cycles**. Each cycle recovers a [`LiveEngine`]
//! from the write-ahead log left by every previous cycle, fronts it
//! with a real [`GrecaServer`] on an ephemeral port, and drives keyed
//! ingests through a real client while a [`FaultPlan`] injects exactly
//! one scheduled WAL fault — a mid-frame [`IoFault::Crash`] (torn
//! bytes, every later write refused: a process death frozen in amber),
//! a transient `Fail`/`DiskFull`, or a short `Torn` write — at a
//! cycle-varying write-op index. The client keeps its own **ack log**:
//! a batch counts as committed iff its ingest response said `ok`.
//!
//! Because the schedule is deterministic and the client is sequential,
//! the harness *simulates* the fault plan client-side (which append
//! fails, whether the batch frame was already durable, when the WAL is
//! stalled) and cross-checks every single response against the
//! simulation — acked/refused, epoch numbers, `duplicate` flags,
//! degraded annotations. After each crash the cycle also issues reads,
//! which must be **answered** from the last healthy epoch with
//! `degraded: true` + `staleness_ms`, not shed.
//!
//! At every cycle boundary (and once more at the end) recovery is
//! verified two ways:
//!
//! * **zero committed loss** — the recovered epoch equals the last
//!   acked publish and the recovered matrix equals an independent
//!   replay of the ack log, rating by rating;
//! * **`recovered_identical`** — a group query served over the wire by
//!   the recovered server is bit-identical (item ids, lb/ub bits,
//!   SA/RA counters, sweeps) to a cold [`GrecaEngine`] refit on the
//!   ack-log state.
//!
//! Gates (asserted, `--quick` included): ≥ 20 fault-injected cycles,
//! `lost_committed == 0`, `recovered_identical == true`, every
//! degraded-window read answered (never shed) and annotated, zero
//! protocol errors, and the simulation never diverging from the wire.
//!
//! Run with: `cargo run -p greca-bench --release --bin chaos`
//! (`--quick` shrinks the world and per-cycle workload for CI;
//! `--cycles <n>` overrides the cycle count).

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_bench::harness::{banner, print_row};
use greca_cf::RawRatings;
use greca_core::{
    BuildOptions, FaultCtx, FaultPlan, GrecaEngine, IoFault, LiveEngine, LiveModel, TopKResult,
    Wal, WalOptions,
};
use greca_dataset::{
    Granularity, Group, ItemId, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};
use greca_serve::{Client, GrecaServer, Json, ServeConfig};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One upsert as the ack log stores it.
type Cell = (u32, u32);

/// The world: deterministic ratings and affinities, sized by `quick`.
struct ChaosWorld {
    users: u32,
    items_n: u32,
    initial: RatingMatrix,
    pop: PopulationAffinity,
    items: Vec<ItemId>,
}

fn build_world(quick: bool) -> ChaosWorld {
    let (users, items_n) = if quick {
        (16u32, 60u32)
    } else {
        (24u32, 120u32)
    };
    let mut b = RatingMatrixBuilder::new(users as usize, items_n as usize);
    for u in 0..users {
        for i in 0..items_n {
            if (u + i) % 3 == 0 {
                b.rate(UserId(u), ItemId(i), ((u * i) % 5 + 1) as f32, 0);
            }
        }
    }
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
    for u in 0..users {
        for v in (u + 1)..users {
            src.set_static(UserId(u), UserId(v), f64::from((u + v) % 10) / 10.0);
            src.set_periodic(
                UserId(u),
                UserId(v),
                tl.periods()[0].start,
                f64::from((u * v) % 10) / 10.0,
            );
        }
    }
    let cohort: Vec<UserId> = (0..users).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &cohort, &tl);
    ChaosWorld {
        users,
        items_n,
        initial: b.build(),
        pop,
        items: (0..items_n).map(ItemId).collect(),
    }
}

/// Replay the ack log into a fresh matrix (independent construction —
/// no `apply_deltas`).
fn matrix_of(log: &BTreeMap<Cell, f32>, n: usize, m: usize) -> RatingMatrix {
    let mut b = RatingMatrixBuilder::new(n, m);
    for (&(u, i), &v) in log {
        b.rate(UserId(u), ItemId(i), v, 0);
    }
    b.build()
}

/// Bit-compare one served payload against a direct engine run.
fn payload_identical(response: &Json, direct: &TopKResult) -> bool {
    let Some(items) = response.get("items").and_then(Json::as_array) else {
        return false;
    };
    if items.len() != direct.items.len() {
        return false;
    }
    let rows = items.iter().zip(&direct.items).all(|(got, want)| {
        got.get("item").and_then(Json::as_u64) == Some(u64::from(want.item.0))
            && got.get("lb").and_then(Json::as_f64).map(f64::to_bits) == Some(want.lb.to_bits())
            && got.get("ub").and_then(Json::as_f64).map(f64::to_bits) == Some(want.ub.to_bits())
    });
    rows && response.get("sa").and_then(Json::as_u64) == Some(direct.stats.sa)
        && response.get("ra").and_then(Json::as_u64) == Some(direct.stats.ra)
        && response.get("sweeps").and_then(Json::as_u64) == Some(direct.sweeps)
}

/// Client-side mirror of the cycle's single scheduled WAL fault: which
/// append fails, whether the refused batch was already durable, and
/// when the engine is stalled (degraded). The server ingest path
/// consumes one WAL write op for the batch append and — only if that
/// succeeded — one for the publish commit marker.
struct FaultSim {
    fault_op: u64,
    /// A crash latches: every WAL write after the fault op fails too.
    latches: bool,
    op: u64,
    crashed: bool,
    /// The WAL is stalled (degraded mode) after any append failure,
    /// until the next successful publish.
    stalled: bool,
}

/// What the simulator predicts for one ingest attempt.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Predicted {
    /// Both appends land: the batch (and any durable tail) commits.
    Acked,
    /// The batch append fails: refused, nothing durable.
    RefusedDropped,
    /// The commit append fails: refused, but the batch frame is
    /// durable and will fold into the next successful publish.
    RefusedDurable,
}

impl FaultSim {
    fn new(fault_op: u64, latches: bool) -> FaultSim {
        FaultSim {
            fault_op,
            latches,
            op: 0,
            crashed: false,
            stalled: false,
        }
    }

    fn write_fails(&mut self) -> bool {
        let fires = self.op == self.fault_op;
        self.op += 1;
        if fires && self.latches {
            self.crashed = true;
        }
        self.crashed || fires
    }

    fn ingest(&mut self) -> Predicted {
        if self.write_fails() {
            self.stalled = true;
            return Predicted::RefusedDropped;
        }
        if self.write_fails() {
            self.stalled = true;
            return Predicted::RefusedDurable;
        }
        self.stalled = false;
        Predicted::Acked
    }
}

/// Per-cycle fault rotation: mostly crashes at varying torn-frame
/// fractions, plus the transient single-op failures.
fn fault_of(cycle: usize) -> IoFault {
    match cycle % 6 {
        0 => IoFault::Crash { keep_permille: 750 },
        1 => IoFault::Fail,
        2 => IoFault::Crash { keep_permille: 250 },
        3 => IoFault::DiskFull,
        4 => IoFault::Crash { keep_permille: 0 },
        _ => IoFault::Torn { keep_permille: 500 },
    }
}

struct CycleOutcome {
    injected: usize,
    acked: usize,
    refused: usize,
    degraded_reads: usize,
    degraded_answered: usize,
    recovery: std::time::Duration,
    records_replayed: usize,
    identical: bool,
    lost: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cycles: usize = args
        .windows(2)
        .find(|w| w[0] == "--cycles")
        .map(|w| w[1].parse().expect("--cycles takes a usize"))
        .unwrap_or(24);
    let ingests_per_cycle: u64 = if quick { 6 } else { 8 };
    banner("chaos: deterministic crash/fault injection over the serve stack");

    let world = build_world(quick);
    let k = 5usize;
    let dir: PathBuf = std::env::temp_dir().join(format!("greca-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Small segments so the accumulated log rotates and recovery scans
    // a multi-segment history.
    let wal_tuning = |fault: Option<Arc<FaultPlan>>| WalOptions {
        segment_bytes: 4096,
        fault,
        ..WalOptions::default()
    };

    print_row(
        "world",
        format!("{} users × {} items", world.users, world.items_n),
    );
    print_row(
        "cycles × ingests",
        format!("{cycles} × {ingests_per_cycle}"),
    );
    print_row("wal dir", dir.display());

    // The ack log: committed state, the durable-but-unpublished tail,
    // and the acked epoch — maintained purely from wire responses plus
    // the deterministic fault schedule.
    let mut committed: BTreeMap<Cell, f32> = BTreeMap::new();
    for u in 0..world.users {
        for i in 0..world.items_n {
            if (u + i) % 3 == 0 {
                committed.insert((u, i), ((u * i) % 5 + 1) as f32);
            }
        }
    }
    let mut tail: Vec<(Cell, f32)> = Vec::new();
    let mut acked_epoch = 0u64;
    let mut next_key = 1u64;
    let mut outcomes: Vec<CycleOutcome> = Vec::new();

    for cycle in 0..cycles {
        let fault = fault_of(cycle);
        let latches = matches!(fault, IoFault::Crash { .. });
        // Any op below `ingests_per_cycle` is guaranteed to be reached:
        // every ingest attempt consumes at least the batch-append op.
        let fault_op = (cycle as u64 * 5 + 1) % ingests_per_cycle;
        let plan =
            Arc::new(FaultPlan::new(cycle as u64).schedule(FaultCtx::WalWrite, fault_op, fault));
        let mut sim = FaultSim::new(fault_op, latches);

        // ── Recover from everything previous cycles left behind ──────
        let t0 = Instant::now();
        let (live, report) = if cycle == 0 {
            let wal = Wal::create(&dir, wal_tuning(Some(Arc::clone(&plan)))).expect("create WAL");
            let live = LiveEngine::new(&world.pop, LiveModel::Raw, &world.initial, &world.items)
                .expect("epoch 0")
                .with_wal(wal);
            (live, None)
        } else {
            let (live, report) = LiveEngine::recover(
                &world.pop,
                LiveModel::Raw,
                &world.initial,
                &world.items,
                BuildOptions::default(),
                &dir,
                wal_tuning(Some(Arc::clone(&plan))),
            )
            .expect("recover");
            (live, Some(report))
        };
        let recovery = t0.elapsed();
        assert_eq!(
            live.epoch(),
            acked_epoch,
            "cycle {cycle}: recovered epoch must be the last acked publish"
        );

        // Zero committed loss, checked against the independent replay.
        let expected = matrix_of(&committed, world.users as usize, world.items_n as usize);
        let mut lost = 0usize;
        {
            let pin = live.pin();
            for u in 0..world.users {
                if pin.matrix().user_ratings(UserId(u)) != expected.user_ratings(UserId(u)) {
                    lost += 1;
                }
            }
        }

        // ── Serve the cycle under the fault schedule ─────────────────
        let server = GrecaServer::bind(
            &live,
            ServeConfig {
                fault_plan: None,
                world_label: format!("chaos:{cycle}"),
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let handle = server.handle();
        let group_ids: Vec<u32> = (0..3).map(|j| (cycle as u32 + j) % world.users).collect();
        let group = Group::new(group_ids.iter().copied().map(UserId).collect()).expect("group");
        let item_ids: Vec<u32> = world.items.iter().map(|i| i.0).collect();

        let outcome = std::thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = Client::connect(handle.addr()).expect("connect");

            // Post-recovery identity over the wire: served == cold refit
            // on the ack log, bit for bit.
            let served = client
                .query(&group_ids, Some(&item_ids), Some(k))
                .expect("identity query");
            assert_eq!(served.get("ok").and_then(Json::as_bool), Some(true));
            let provider = RawRatings(&expected);
            let cold = GrecaEngine::new(&provider, &world.pop);
            let direct = cold
                .query(&group)
                .items(&world.items)
                .top(k)
                .run()
                .expect("cold run");
            let identical = payload_identical(&served, &direct);
            assert!(
                served.get("degraded").is_none(),
                "cycle {cycle}: fresh recovery must not be degraded"
            );

            let (mut acked, mut refused) = (0usize, 0usize);
            let (mut degraded_reads, mut degraded_answered) = (0usize, 0usize);
            for j in 0..ingests_per_cycle {
                let key = next_key;
                next_key += 1;
                let u = (cycle as u32 + j as u32 * 5) % world.users;
                let i = (cycle as u32 * 3 + j as u32 * 7) % world.items_n;
                let value = ((cycle as u64 * ingests_per_cycle + j) % 9) as f32 * 0.5 + 0.5;
                let predicted = sim.ingest();
                let r = client
                    .ingest_keyed(key, &[(u, i, value, 0)])
                    .expect("ingest transport");
                let ok = r.get("ok").and_then(Json::as_bool) == Some(true);
                match predicted {
                    Predicted::Acked => {
                        assert!(
                            ok,
                            "cycle {cycle} ingest {j}: sim says acked, wire says {r:?}"
                        );
                        assert_eq!(
                            r.get("duplicate").and_then(Json::as_bool),
                            Some(false),
                            "fresh keys are not duplicates"
                        );
                        acked_epoch += 1;
                        assert_eq!(
                            r.get("epoch").and_then(Json::as_u64),
                            Some(acked_epoch),
                            "cycle {cycle} ingest {j}: epoch mismatch"
                        );
                        // The durable tail folds in *before* this batch.
                        for (cell, v) in tail.drain(..) {
                            committed.insert(cell, v);
                        }
                        committed.insert((u, i), value);
                        acked += 1;
                    }
                    Predicted::RefusedDropped | Predicted::RefusedDurable => {
                        assert!(
                            !ok,
                            "cycle {cycle} ingest {j}: sim says refused, wire says ok"
                        );
                        assert_eq!(
                            r.get("code").and_then(Json::as_str),
                            Some("degraded"),
                            "WAL failures are the typed degraded code: {r:?}"
                        );
                        if predicted == Predicted::RefusedDurable {
                            tail.push(((u, i), value));
                        }
                        refused += 1;
                    }
                }

                // While stalled, reads must be *answered* from the last
                // healthy epoch and annotated — never shed.
                if sim.stalled {
                    degraded_reads += 1;
                    let read = client
                        .query(&group_ids, Some(&item_ids), Some(k))
                        .expect("degraded read");
                    let answered = read.get("ok").and_then(Json::as_bool) == Some(true)
                        && read.get("degraded").and_then(Json::as_bool) == Some(true)
                        && read.get("staleness_ms").and_then(Json::as_u64).is_some()
                        && read.get("epoch").and_then(Json::as_u64) == Some(acked_epoch);
                    if answered {
                        degraded_answered += 1;
                    }
                    let h = client.health().expect("health");
                    assert_eq!(h.get("degraded").and_then(Json::as_bool), Some(true));
                }
            }

            let protocol_errors = server.metrics().protocol_errors.load(Ordering::Relaxed);
            assert_eq!(protocol_errors, 0, "cycle {cycle}: protocol errors");
            handle.shutdown();
            CycleOutcome {
                injected: plan.injected().len(),
                acked,
                refused,
                degraded_reads,
                degraded_answered,
                recovery,
                records_replayed: report.map_or(0, |r| r.batches_replayed + r.publishes_replayed),
                identical,
                lost,
            }
        });
        assert!(
            outcome.injected >= 1,
            "cycle {cycle}: the scheduled fault must fire"
        );
        outcomes.push(outcome);
        drop(live);
    }

    // ── Final recovery with a clean plan: the survivor the log owes ──
    banner("final recovery: clean replay of the whole history");
    let t0 = Instant::now();
    let (live, report) = LiveEngine::recover(
        &world.pop,
        LiveModel::Raw,
        &world.initial,
        &world.items,
        BuildOptions::default(),
        &dir,
        wal_tuning(None),
    )
    .expect("final recover");
    let final_wall = t0.elapsed();
    assert_eq!(
        live.epoch(),
        acked_epoch,
        "final epoch != last acked publish"
    );
    let expected = matrix_of(&committed, world.users as usize, world.items_n as usize);
    let mut final_lost = 0usize;
    {
        let pin = live.pin();
        for u in 0..world.users {
            if pin.matrix().user_ratings(UserId(u)) != expected.user_ratings(UserId(u)) {
                final_lost += 1;
            }
        }
    }
    let final_group = Group::new(vec![UserId(0), UserId(1), UserId(2)]).expect("group");
    let provider = RawRatings(&expected);
    let cold = GrecaEngine::new(&provider, &world.pop);
    let direct = cold
        .query(&final_group)
        .items(&world.items)
        .top(k)
        .run()
        .expect("cold run");
    let warm = live
        .pin()
        .engine()
        .query(&final_group)
        .items(&world.items)
        .top(k)
        .run()
        .expect("warm run");
    let final_identical = warm == direct;

    let faults_injected: usize = outcomes.iter().map(|o| o.injected).sum();
    let injected_cycles = outcomes.iter().filter(|o| o.injected >= 1).count();
    let total_acked: usize = outcomes.iter().map(|o| o.acked).sum();
    let total_refused: usize = outcomes.iter().map(|o| o.refused).sum();
    let degraded_reads: usize = outcomes.iter().map(|o| o.degraded_reads).sum();
    let degraded_answered: usize = outcomes.iter().map(|o| o.degraded_answered).sum();
    let lost_committed: usize = outcomes.iter().map(|o| o.lost).sum::<usize>() + final_lost;
    let recovered_identical =
        outcomes.iter().all(|o| o.identical) && final_identical && acked_epoch == live.epoch();
    let cycle_replayed: usize = outcomes.iter().map(|o| o.records_replayed).sum();
    let mut recovery_ms: Vec<f64> = outcomes
        .iter()
        .skip(1) // cycle 0 is a create, not a recovery
        .map(|o| o.recovery.as_secs_f64() * 1e3)
        .collect();
    recovery_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let recovery_p50 = recovery_ms
        .get(recovery_ms.len() / 2)
        .copied()
        .unwrap_or(0.0);
    let recovery_max = recovery_ms.last().copied().unwrap_or(0.0);
    let replay_records = report.batches_replayed + report.publishes_replayed;
    let replay_per_s = if final_wall.as_secs_f64() > 0.0 {
        replay_records as f64 / final_wall.as_secs_f64()
    } else {
        0.0
    };

    print_row(
        "fault-injected cycles",
        format!("{injected_cycles} of {cycles}"),
    );
    print_row("faults injected (total)", faults_injected);
    print_row(
        "ingests acked / refused",
        format!("{total_acked} / {total_refused}"),
    );
    print_row(
        "degraded reads answered",
        format!("{degraded_answered} of {degraded_reads}"),
    );
    print_row("lost committed batches", lost_committed);
    print_row("recovered identical", recovered_identical);
    print_row("final epoch", acked_epoch);
    print_row(
        "wal history",
        format!(
            "{} records / {} segments / {} bytes",
            report.wal.records, report.wal.segments, report.wal.bytes_scanned
        ),
    );
    print_row(
        "final replay",
        format!(
            "{replay_records} records in {:.1} ms ({replay_per_s:.0} rec/s)",
            final_wall.as_secs_f64() * 1e3
        ),
    );
    print_row(
        "recovery p50 / max",
        format!("{recovery_p50:.1} ms / {recovery_max:.1} ms"),
    );
    print_row("records replayed (all cycles)", cycle_replayed);

    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"cycles\": {cycles},\n",
            "  \"injected_cycles\": {injected_cycles},\n",
            "  \"faults_injected\": {faults},\n",
            "  \"ingests\": {{\"acked\": {acked}, \"refused\": {refused}}},\n",
            "  \"lost_committed\": {lost},\n",
            "  \"recovered_identical\": {ident},\n",
            "  \"degraded_reads\": {{\"issued\": {dreads}, \"answered\": {danswered}}},\n",
            "  \"final_epoch\": {epoch},\n",
            "  \"wal\": {{\"records\": {wrecords}, \"segments\": {wsegments}, \"bytes\": {wbytes}, \"torn_tail_truncations\": {wtorn}}},\n",
            "  \"replay\": {{\"records\": {rrecords}, \"wall_ms\": {rwall:.3}, \"records_per_s\": {rps:.0}}},\n",
            "  \"recovery_ms\": {{\"p50\": {rp50:.3}, \"max\": {rmax:.3}}}\n",
            "}}\n",
        ),
        quick = quick,
        cycles = cycles,
        injected_cycles = injected_cycles,
        faults = faults_injected,
        acked = total_acked,
        refused = total_refused,
        lost = lost_committed,
        ident = recovered_identical,
        dreads = degraded_reads,
        danswered = degraded_answered,
        epoch = acked_epoch,
        wrecords = report.wal.records,
        wsegments = report.wal.segments,
        wbytes = report.wal.bytes_scanned,
        wtorn = report.wal.torn_tail as u8,
        rrecords = replay_records,
        rwall = final_wall.as_secs_f64() * 1e3,
        rps = replay_per_s,
        rp50 = recovery_p50,
        rmax = recovery_max,
    );
    let path = "BENCH_chaos.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_chaos.json");
    println!("\nwrote {path}");
    let _ = std::fs::remove_dir_all(&dir);

    // ── Gates (every run, --quick included) ──────────────────────────
    assert!(
        injected_cycles >= 20,
        "need ≥ 20 fault-injected cycles, got {injected_cycles}"
    );
    assert_eq!(lost_committed, 0, "committed batches were lost");
    assert!(
        recovered_identical,
        "recovered state must equal the ack-log replay bit for bit"
    );
    assert!(
        degraded_reads >= 1,
        "the schedule must open degraded windows"
    );
    assert_eq!(
        degraded_answered, degraded_reads,
        "every degraded-window read must be answered and annotated"
    );
    assert!(
        total_acked >= 1 && total_refused >= 1,
        "the workload must see both acks and refusals"
    );
}
