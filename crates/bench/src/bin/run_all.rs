//! Runs every table/figure reproduction in sequence (the full §4 suite).
use greca_bench::{experiments, PerfWorld, Scale};
use greca_eval::WorldConfig;

fn main() {
    experiments::table5(Scale::Full);
    let study_world = WorldConfig::study_scale().build();
    experiments::fig1(&study_world, Scale::Full);
    experiments::fig2(&study_world, Scale::Full);
    experiments::fig3(&study_world, Scale::Full);
    experiments::fig4(&study_world);
    let pw = PerfWorld::build();
    experiments::fig5a(&pw, Scale::Full);
    experiments::fig5b(&pw, Scale::Full);
    experiments::fig5c(&pw, Scale::Full);
    experiments::fig6(&pw, Scale::Full);
    experiments::fig7(&pw, Scale::Full);
    experiments::fig8(&pw, Scale::Full);
    experiments::time_models(&pw, Scale::Full);
    println!();
    println!("All experiments complete. See EXPERIMENTS.md for the paper-vs-measured index.");
}
