//! Regenerates Figure 5 A–C (%SA vs k, group size, number of items).
use greca_bench::{PerfWorld, Scale};
fn main() {
    let pw = PerfWorld::build();
    greca_bench::experiments::fig5a(&pw, Scale::Full);
    greca_bench::experiments::fig5b(&pw, Scale::Full);
    greca_bench::experiments::fig5c(&pw, Scale::Full);
}
