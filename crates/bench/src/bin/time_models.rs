//! Regenerates §4.2.4 (continuous vs discrete time-model %SA).
use greca_bench::{PerfWorld, Scale};
fn main() {
    let pw = PerfWorld::build();
    greca_bench::experiments::time_models(&pw, Scale::Full);
}
