//! Regenerates Figure 3 (comparative quality evaluation).
use greca_eval::WorldConfig;
fn main() {
    let world = WorldConfig::study_scale().build();
    greca_bench::experiments::fig3(&world, greca_bench::Scale::Full);
}
