//! Live-ingestion throughput: incremental epoch publishing vs full
//! substrate rebuild.
//!
//! Streams single-user rating batches into a [`LiveEngine`] (the raw
//! and user-CF models) and measures, per model:
//!
//! * **updates/s** — published single-rating batches per second through
//!   the dirty-set + `Substrate::rebuild_dirty` + epoch-swap path;
//! * **staleness-to-visibility** — wall time from the `ingest()` call
//!   to the new epoch being pinnable (mean and max);
//! * **full-rebuild comparison** — what the pre-live alternative cost:
//!   refit the model and rebuild the whole substrate from the same
//!   post-batch ratings (the "construct a whole new engine" path);
//! * **identical** — a pinned-epoch query after the stream equals a
//!   cold engine fully refit on the final ratings, bit-for-bit.
//!
//! Emits `BENCH_ingest.json`. The acceptance bar asserted here:
//! incremental publishing is ≥ 10× faster than the full rebuild for
//! single-user delta batches under the row-only model, whose dirty set
//! is exactly one segment.
//!
//! The user-CF row is reported without a bar, and its number is worth
//! understanding: *exact* CF invalidation must dirty every co-rater of
//! the batch user (any edit to a user's vector moves their cosine
//! similarity to every co-rater), and the study cohort is dense — every
//! study user co-rates with every other — so the dirty set degenerates
//! to the whole cohort. Historically that made "incremental" publishing
//! a net *regression* (0.9× vs a full rebuild); the engine now detects
//! degenerate coverage (`LiveEngine::with_full_rebuild_fraction`) and
//! rebuilds wholesale instead — `full_rebuild_fallbacks` in the JSON
//! counts how often. Sparse populations and row-local providers are
//! where incremental epochs shine (`rebuilt_segments_mean` makes the
//! fan-out visible).
//!
//! Run with: `cargo run -p greca-bench --release --bin ingest_throughput`
//! (pass `--quick` for the small study world).

use greca_bench::harness::{banner, print_row};
use greca_bench::{PerfSettings, PerfWorld};
use greca_cf::{PreferenceProvider, RawRatings, UserCfModel};
use greca_core::{GrecaEngine, LiveEngine, LiveModel};
use greca_dataset::{Group, ItemId, Rating, UserId};
use std::io::Write;
use std::time::Instant;

struct IngestRow {
    model: &'static str,
    batches: usize,
    incremental_ms_mean: f64,
    incremental_ms_max: f64,
    updates_per_s: f64,
    full_rebuild_ms: f64,
    speedup: f64,
    rebuilt_segments_mean: f64,
    full_rebuild_fallbacks: usize,
    identical: bool,
}

impl IngestRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"model\":\"{}\",\"batch_size\":1,\"batches\":{},\"incremental_ms_mean\":{:.4},\"incremental_ms_max\":{:.4},\"updates_per_s\":{:.1},\"full_rebuild_ms\":{:.4},\"speedup\":{:.1},\"rebuilt_segments_mean\":{:.1},\"full_rebuild_fallbacks\":{},\"identical\":{}}}",
            self.model,
            self.batches,
            self.incremental_ms_mean,
            self.incremental_ms_max,
            self.updates_per_s,
            self.full_rebuild_ms,
            self.speedup,
            self.rebuilt_segments_mean,
            self.full_rebuild_fallbacks,
            self.identical,
        )
    }
}

fn measure(pw: &PerfWorld, settings: &PerfSettings, model: LiveModel, batches: usize) -> IngestRow {
    let world = pw.world();
    let items: Vec<ItemId> = pw.items(settings.num_items);
    let live = LiveEngine::new(&world.population, model, &world.movielens.matrix, &items)
        .expect("finite CF scores");
    let users: Vec<UserId> = live.pin().substrate().users().to_vec();

    // One untimed warmup publish: the first fit + substrate build after
    // engine construction runs measurably slower (cold caches and
    // allocator) and would bias the incremental mean against the
    // comparator, which is measured later on a warm process.
    let warmup = Rating {
        user: users[users.len() - 1],
        item: items[items.len() - 1],
        value: 3.0,
        ts: -1,
    };
    live.ingest(&[warmup]).expect("finite rating");

    // Single-user batches: rotate the rating user, walk the catalog,
    // cycle the star value (every batch dirties at least one segment).
    let mut publish_ms: Vec<f64> = Vec::with_capacity(batches);
    let mut rebuilt = 0usize;
    let mut fallbacks = 0usize;
    for b in 0..batches {
        let rating = Rating {
            user: users[(b * 7) % users.len()],
            item: items[(b * 13) % items.len()],
            value: (b % 5) as f32 + 1.0,
            ts: b as i64,
        };
        let start = Instant::now();
        let report = live.ingest(&[rating]).expect("finite rating");
        publish_ms.push(start.elapsed().as_secs_f64() * 1e3);
        rebuilt += report.rebuilt_segments;
        fallbacks += report.full_rebuild as usize;
    }
    let total_s: f64 = publish_ms.iter().sum::<f64>() / 1e3;
    let mean = publish_ms.iter().sum::<f64>() / batches as f64;
    let max = publish_ms.iter().copied().fold(0.0, f64::max);

    // The alternative a serving deployment had before the live layer:
    // rebuild model + substrate wholesale from the final ratings.
    // Averaged over a few rounds (a single sample of a multi-second
    // build is too noisy to serve as the speedup denominator); the
    // process is already warm from the publish stream, matching the
    // warmed-up incremental measurements.
    const REBUILD_ROUNDS: usize = 3;
    let pin = live.pin();
    let final_matrix = pin.matrix().clone();
    let mut rebuild_s = 0.0f64;
    let mut full = None;
    for _ in 0..REBUILD_ROUNDS {
        let start = Instant::now();
        let engine = LiveEngine::new(&world.population, model, &final_matrix, &items)
            .expect("finite CF scores");
        rebuild_s += start.elapsed().as_secs_f64();
        // Dropping the previous round's engine happens here, outside
        // the timed section — deallocation is not rebuild cost.
        full = Some(engine);
    }
    let full = full.expect("at least one round");
    let full_rebuild_ms = rebuild_s * 1e3 / REBUILD_ROUNDS as f64;

    // Spot-check the headline contract: the streamed engine's pinned
    // epoch equals a cold full refit, bit-for-bit.
    let provider: Box<dyn PreferenceProvider + Sync> = match model {
        LiveModel::Raw => Box::new(RawRatings(&final_matrix)),
        LiveModel::UserCf(cfg) => Box::new(UserCfModel::fit(&final_matrix, cfg)),
    };
    let cold = GrecaEngine::new(provider.as_ref(), &world.population);
    let identical = pw
        .random_groups(4, settings.group_size, settings.seed)
        .iter()
        .all(|g: &Group| {
            let mk = |e: &GrecaEngine<'_>| {
                e.query(g)
                    .items(&items)
                    .top(settings.k)
                    .run()
                    .expect("valid query")
            };
            mk(&cold) == mk(&pin.engine()) && mk(&cold) == mk(&full.pin().engine())
        });

    IngestRow {
        model: match model {
            LiveModel::Raw => "raw",
            _ => "user_cf",
        },
        batches,
        incremental_ms_mean: mean,
        incremental_ms_max: max,
        updates_per_s: batches as f64 / total_s,
        full_rebuild_ms,
        speedup: full_rebuild_ms / mean,
        rebuilt_segments_mean: rebuilt as f64 / batches as f64,
        full_rebuild_fallbacks: fallbacks,
        identical,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner("Live ingestion: incremental epoch publish vs full substrate rebuild");
    let (pw, settings, world_label, batches) = if quick {
        (
            PerfWorld::build_small(),
            PerfSettings {
                num_items: 600,
                ..PerfSettings::default()
            },
            "study_scale",
            30,
        )
    } else {
        (
            PerfWorld::build(),
            PerfSettings::default(),
            "scalability_scale",
            30,
        )
    };
    let world = pw.world();
    print_row("world", world_label);
    print_row("universe users", world.population.universe().len());
    print_row("items", settings.num_items);
    print_row("single-rating batches", batches);

    let models = [
        ("raw", LiveModel::Raw, batches),
        // Exact CF invalidation over the dense study cohort rebuilds
        // every segment per batch (see the module docs); a few batches
        // measure that honestly without dominating the wall clock.
        (
            "user_cf",
            LiveModel::UserCf(world.config.cf),
            batches.min(10),
        ),
    ];
    let mut rows = Vec::new();
    for (label, model, batches) in models {
        let row = measure(&pw, &settings, model, batches);
        println!(
            "  {:<8} publish = {:7.3} ms mean / {:7.3} ms max   {:>9.1} updates/s   full rebuild = {:9.3} ms   speedup = {:6.1}×   dirty segments/batch = {:.1}   wholesale fallbacks = {}   identical = {}",
            label,
            row.incremental_ms_mean,
            row.incremental_ms_max,
            row.updates_per_s,
            row.full_rebuild_ms,
            row.speedup,
            row.rebuilt_segments_mean,
            row.full_rebuild_fallbacks,
            row.identical,
        );
        assert!(row.identical, "pinned epoch must equal a cold full refit");
        rows.push(row);
    }
    assert!(
        rows[0].speedup >= 10.0,
        "single-user incremental publish must be ≥ 10× faster than a full rebuild (got {:.1}×)",
        rows[0].speedup
    );

    let json = format!(
        "{{\n  \"world\": \"{}\",\n  \"universe_users\": {},\n  \"num_items\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        world_label,
        world.population.universe().len(),
        settings.num_items,
        rows.iter()
            .map(IngestRow::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = "BENCH_ingest.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_ingest.json");
    println!("\nwrote {path}");
}
