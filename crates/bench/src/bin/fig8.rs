//! Regenerates Figure 8 (%SA per consensus function).
use greca_bench::{PerfWorld, Scale};
fn main() {
    let pw = PerfWorld::build();
    greca_bench::experiments::fig8(&pw, Scale::Full);
}
