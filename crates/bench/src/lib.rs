//! # greca-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§4), plus Criterion micro-benchmarks and the ablation
//! studies called out in `DESIGN.md` §6.
//!
//! | binary        | artifact      | what it regenerates                          |
//! |---------------|---------------|----------------------------------------------|
//! | `table5`      | Table 5       | dataset statistics                           |
//! | `fig1`        | Figure 1 A–F  | independent quality evaluation               |
//! | `fig2`        | Figure 2      | AP/MO/PD three-way preference                |
//! | `fig3`        | Figure 3 A–C  | comparative quality evaluation               |
//! | `fig4`        | Figure 4      | period-granularity sweep                     |
//! | `fig5`        | Figure 5 A–C  | %SA vs k, group size, #items                 |
//! | `fig6`        | Figure 6      | %SA per query period                         |
//! | `fig7`        | Figure 7      | %SA per group characteristic                 |
//! | `fig8`        | Figure 8      | %SA per consensus function                   |
//! | `time_models` | §4.2.4        | continuous vs discrete %SA                   |
//! | `engine_baseline` | `BENCH_engine.json` | GRECA/TA/naive latency + prepare split |
//! | `greca_kernel` | `BENCH_greca_kernel.json` | kernel latency per stopping × cadence |
//! | `ingest_throughput` | `BENCH_ingest.json` | live-epoch publish vs full rebuild  |
//! | `run_all`     | everything    | runs the full suite in sequence              |
//!
//! Run any of them with
//! `cargo run -p greca-bench --release --bin <name>`.

pub mod experiments;
pub mod harness;

pub use experiments::Scale;
pub use harness::{BaselineRow, PerfSettings, PerfWorld};
