//! Small statistics helpers shared by the study protocols.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// `100 · num / den`; 0 when `den == 0`.
pub fn percent(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percent_handles_zero_denominator() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(3, 4), 75.0);
    }
}
