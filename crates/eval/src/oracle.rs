//! The satisfaction oracle: the reproduction's stand-in for human raters.
//!
//! **What the paper had:** 72 people scoring "how satisfied she is with
//! watching those movies with other group members" (0–5), and picking
//! between lists.
//!
//! **What we build:** a ground-truth utility
//!
//! ```text
//! truth(u, i, G, p) = latent(u, i)
//!                   + w · Σ_{v≠u} affᵗ(u,v,p)·latent(v, i)
//!                   − β · spread(i, G)
//! ```
//!
//! where `latent` is the generator's noise-free appreciation (hidden
//! from the recommenders, which only see quantized ratings), `affᵗ` is
//! the *true* temporal affinity from the full social history, and
//! `spread` is the standard deviation of the group's latent appreciation
//! of `i` (shared experiences suffer when tastes split — the
//! behavioural finding behind disagreement-aware consensus [20, 22]).
//!
//! **Why the substitution preserves behaviour:** the paper's premise is
//! that real users value company and its temporal evolution; encoding
//! exactly that premise as ground truth lets us verify which *recommender
//! variants* recover the signal — the same directional question Figures
//! 1–3 answer. A variant can only score well by actually modelling
//! affinity/time/disagreement; ablated variants lose precisely what the
//! ablation removes.

use crate::world::StudyWorld;
use greca_dataset::{Group, ItemId, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Oracle parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Weight of the company term relative to own taste.
    pub company_weight: f64,
    /// Disagreement penalty β.
    pub disagreement_penalty: f64,
    /// Std-dev of the judgment noise added per (user, list) evaluation.
    pub judgment_noise: f64,
    /// Seed for the judgment noise.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            company_weight: 0.9,
            disagreement_penalty: 0.35,
            judgment_noise: 0.08,
            seed: 0x04ac1e,
        }
    }
}

/// The oracle over one study world.
pub struct SatisfactionOracle<'a> {
    world: &'a StudyWorld,
    config: OracleConfig,
}

impl<'a> SatisfactionOracle<'a> {
    /// Create an oracle.
    pub fn new(world: &'a StudyWorld, config: OracleConfig) -> Self {
        SatisfactionOracle { world, config }
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// Ground-truth appreciation of `item` by `user` within `group` at
    /// period `p_idx` (see module docs).
    ///
    /// The company term weights companions by the *true* discrete
    /// temporal affinity under the same §4.1.2 group normalization the
    /// paper applies ("we normalize all static affinity values in a
    /// group by the maximum pair-wise value in the group") — group
    /// membership changes how much each companion matters, exactly the
    /// premise the study tests. Recommenders still only see CF-predicted
    /// preferences, so the oracle is not an answer key: a variant scores
    /// well only by modelling the affinity/temporal structure.
    pub fn truth(&self, user: UserId, item: ItemId, group: &Group, p_idx: usize) -> f64 {
        let ml = &self.world.movielens;
        let own = ml.latent_utility(user, item);
        let members = group.members();
        if members.len() < 2 {
            return own;
        }
        let pop = &self.world.population;
        // §4.1.2 group renormalization of static affinity.
        let gmax = pop.group_static_max(group);
        let mut company = 0.0;
        for &v in members {
            if v == user {
                continue;
            }
            let pair = pop
                .pair_of(user, v)
                .expect("study users are in the affinity universe");
            let static_c = if gmax > 0.0 {
                pop.static_raw_of(pair) / gmax
            } else {
                0.0
            };
            let aff = (static_c + pop.aff_v_discrete(pair, p_idx)).clamp(0.0, 2.0);
            company += aff * ml.latent_utility(v, item);
        }
        // The paper's relative-preference premise is an *unnormalized*
        // sum over companions (§2.2) — company matters more in larger
        // groups; the oracle mirrors that.
        // Spread of the group's latent appreciation.
        let utils: Vec<f64> = members
            .iter()
            .map(|&m| ml.latent_utility(m, item))
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        let spread =
            (utils.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / utils.len() as f64).sqrt();
        own + self.config.company_weight * company - self.config.disagreement_penalty * spread
    }

    /// Mean ground truth of a list for one user.
    pub fn list_truth(&self, user: UserId, list: &[ItemId], group: &Group, p_idx: usize) -> f64 {
        if list.is_empty() {
            return 0.0;
        }
        list.iter()
            .map(|&i| self.truth(user, i, group, p_idx))
            .sum::<f64>()
            / list.len() as f64
    }

    /// Independent-evaluation satisfaction (0–100%): how `user` rates the
    /// list against the best and worst lists of the same length she could
    /// have been shown (computed over `candidates`), plus judgment noise.
    pub fn satisfaction_percent(
        &self,
        user: UserId,
        list: &[ItemId],
        candidates: &[ItemId],
        group: &Group,
        p_idx: usize,
        rng: &mut StdRng,
    ) -> f64 {
        assert!(!list.is_empty(), "cannot judge an empty list");
        // Two blended judgments, both in [0, 1]:
        // (a) value: mean truth of the list between the worst and best
        //     same-length lists the user could have been shown;
        // (b) rank quality: nDCG of the list against the user's oracle
        //     ranking of the candidates (humans notice *which* items
        //     made the list, not only their average quality — this is
        //     what separates lists whose averages are close).
        let mut truths: Vec<f64> = candidates
            .iter()
            .map(|&i| self.truth(user, i, group, p_idx))
            .collect();
        truths.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let n = list.len().min(truths.len());
        let best: f64 = truths[..n].iter().sum::<f64>() / n as f64;
        let worst: f64 = truths[truths.len() - n..].iter().sum::<f64>() / n as f64;
        let got = self.list_truth(user, list, group, p_idx);
        let value = if best > worst {
            ((got - worst) / (best - worst)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        // nDCG with graded gains: shift truths so the minimum is 0.
        let floor = truths.last().copied().unwrap_or(0.0);
        let dcg: f64 = list
            .iter()
            .enumerate()
            .map(|(rank, &i)| {
                (self.truth(user, i, group, p_idx) - floor) / ((rank + 2) as f64).log2()
            })
            .sum();
        let idcg: f64 = truths[..n]
            .iter()
            .enumerate()
            .map(|(rank, &t)| (t - floor) / ((rank + 2) as f64).log2())
            .sum();
        let ndcg = if idcg > 0.0 {
            (dcg / idcg).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let frac = 0.5 * value + 0.5 * ndcg;
        let noisy = frac + self.config.judgment_noise * (rng.random::<f64>() - 0.5) * 2.0;
        100.0 * noisy.clamp(0.0, 1.0)
    }

    /// Comparative pick: does `user` prefer `l1` over `l2`? (Closed-world:
    /// exactly one is chosen, §4.1.4.)
    pub fn prefers(
        &self,
        user: UserId,
        l1: &[ItemId],
        l2: &[ItemId],
        group: &Group,
        p_idx: usize,
        rng: &mut StdRng,
    ) -> bool {
        let t1 = self.list_truth(user, l1, group, p_idx);
        let t2 = self.list_truth(user, l2, group, p_idx);
        let noise = self.config.judgment_noise * (rng.random::<f64>() - 0.5) * 2.0;
        t1 + noise >= t2
    }

    /// Three-way pick (Figure 2): index of the preferred list.
    pub fn pick_of_three(
        &self,
        user: UserId,
        lists: [&[ItemId]; 3],
        group: &Group,
        p_idx: usize,
        rng: &mut StdRng,
    ) -> usize {
        let mut best = 0;
        let mut best_t = f64::NEG_INFINITY;
        for (idx, l) in lists.iter().enumerate() {
            let t = self.list_truth(user, l, group, p_idx)
                + self.config.judgment_noise * (rng.random::<f64>() - 0.5) * 2.0;
            if t > best_t {
                best_t = t;
                best = idx;
            }
        }
        best
    }

    /// A deterministic RNG for judgment noise.
    pub fn judgment_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.config.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> StudyWorld {
        WorldConfig::study_scale().build()
    }

    #[test]
    fn truth_includes_company() {
        let w = world();
        let oracle = SatisfactionOracle::new(&w, OracleConfig::default());
        let users = w.study_users();
        let g = Group::new(vec![users[0], users[1], users[2]]).unwrap();
        let p = w.last_period();
        let item = ItemId(0);
        let single = Group::new(vec![users[0]]).unwrap();
        let alone = oracle.truth(users[0], item, &single, p);
        let together = oracle.truth(users[0], item, &g, p);
        // Company and spread shift the value; they rarely cancel exactly.
        assert!(alone.is_finite() && together.is_finite());
        assert_ne!(alone, together);
    }

    #[test]
    fn satisfaction_is_bounded_and_monotone_in_list_quality() {
        let w = world();
        let oracle = SatisfactionOracle::new(
            &w,
            OracleConfig {
                judgment_noise: 0.0,
                ..OracleConfig::default()
            },
        );
        let users = w.study_users();
        let g = Group::new(vec![users[0], users[1], users[2]]).unwrap();
        let p = w.last_period();
        let candidates: Vec<ItemId> = (0..60).map(ItemId).collect();
        // Oracle-best list vs oracle-worst list for user 0.
        let mut ranked = candidates.clone();
        ranked.sort_by(|&a, &b| {
            oracle
                .truth(users[0], b, &g, p)
                .partial_cmp(&oracle.truth(users[0], a, &g, p))
                .unwrap()
        });
        let best: Vec<ItemId> = ranked[..5].to_vec();
        let worst: Vec<ItemId> = ranked[ranked.len() - 5..].to_vec();
        let mut rng = oracle.judgment_rng();
        let s_best = oracle.satisfaction_percent(users[0], &best, &candidates, &g, p, &mut rng);
        let s_worst = oracle.satisfaction_percent(users[0], &worst, &candidates, &g, p, &mut rng);
        assert!((0.0..=100.0).contains(&s_best));
        assert!((0.0..=100.0).contains(&s_worst));
        assert!(s_best > s_worst);
        assert!(s_best > 85.0, "best list scores near 100% (got {s_best})");
        assert!(s_worst < 15.0, "worst list scores near 0% (got {s_worst})");
    }

    #[test]
    fn prefers_is_consistent_without_noise() {
        let w = world();
        let oracle = SatisfactionOracle::new(
            &w,
            OracleConfig {
                judgment_noise: 0.0,
                ..OracleConfig::default()
            },
        );
        let users = w.study_users();
        let g = Group::new(vec![users[0], users[3]]).unwrap();
        let p = w.last_period();
        let l1 = vec![ItemId(0), ItemId(1)];
        let l2 = vec![ItemId(2), ItemId(3)];
        let mut rng = oracle.judgment_rng();
        let pick12 = oracle.prefers(users[0], &l1, &l2, &g, p, &mut rng);
        let t1 = oracle.list_truth(users[0], &l1, &g, p);
        let t2 = oracle.list_truth(users[0], &l2, &g, p);
        assert_eq!(pick12, t1 >= t2);
    }

    #[test]
    fn pick_of_three_selects_truth_maximizer_without_noise() {
        let w = world();
        let oracle = SatisfactionOracle::new(
            &w,
            OracleConfig {
                judgment_noise: 0.0,
                ..OracleConfig::default()
            },
        );
        let users = w.study_users();
        let g = Group::new(vec![users[0], users[1]]).unwrap();
        let p = w.last_period();
        let lists = [
            vec![ItemId(0), ItemId(1)],
            vec![ItemId(2), ItemId(3)],
            vec![ItemId(4), ItemId(5)],
        ];
        let mut rng = oracle.judgment_rng();
        let pick =
            oracle.pick_of_three(users[0], [&lists[0], &lists[1], &lists[2]], &g, p, &mut rng);
        let truths: Vec<f64> = lists
            .iter()
            .map(|l| oracle.list_truth(users[0], l, &g, p))
            .collect();
        let argmax = truths
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(pick, argmax);
    }
}
