//! The study world: ratings + social signals + CF + affinity index.
//!
//! Mirrors the paper's setup (§4.1): a MovieLens-like rating matrix for
//! individual preferences (via user-based cosine CF), a social network
//! for affinities (friendships → static, page-likes → periodic), one
//! year of history at two-month granularity, and the social users as the
//! study population.
//!
//! Social users are identified with the first `num_users` rows of the
//! rating matrix — the paper likewise merged its participants' ratings
//! into the MovieLens matrix before running CF.

use greca_affinity::{PopulationAffinity, SocialAffinitySource};
use greca_cf::{CfConfig, UserCfModel};
use greca_dataset::{
    Granularity, MovieLens, MovieLensConfig, SocialConfig, SocialNetwork, Timeline, UserId,
};
use serde::{Deserialize, Serialize};

/// Configuration for building a [`StudyWorld`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Rating world configuration.
    pub movielens: MovieLensConfig,
    /// Social world configuration.
    pub social: SocialConfig,
    /// Period granularity (paper default: two-month).
    pub granularity: Granularity,
    /// CF configuration.
    pub cf: CfConfig,
}

impl WorldConfig {
    /// The paper's study scale: 72-ish participants over a small
    /// MovieLens world (fast enough for tests).
    ///
    /// The rating world is tuned toward *taste-differentiated* items
    /// (higher taste gain, lower shared item-quality bias): group
    /// recommendation variants can only differ on items the members
    /// disagree about, and the study's whole purpose is to expose those
    /// differences (the paper's similar/dissimilar axis presumes them).
    pub fn study_scale() -> Self {
        let movielens = MovieLensConfig {
            num_users: 400,
            num_items: 900,
            target_ratings: 40_000,
            num_archetypes: 6,
            taste_gain: 4.5,
            item_bias_std: 0.10,
            noise_std: 0.35,
            ..MovieLensConfig::small()
        };
        WorldConfig {
            movielens,
            social: SocialConfig::paper_scale(),
            granularity: Granularity::TwoMonth,
            // Pearson + a tight neighbourhood: the study world's rating
            // pool is three orders of magnitude smaller than MovieLens
            // 1M, so raw-cosine neighbourhoods (the paper's choice at
            // full scale) degenerate to the global average here; centred
            // similarity restores the taste signal the full-size matrix
            // would carry.
            cf: CfConfig {
                similarity: greca_cf::Similarity::Pearson,
                top_n: 15,
                ..CfConfig::default()
            },
        }
    }

    /// Scalability-experiment scale: the full MovieLens-1M fingerprint
    /// (6,040 users × 3,952 items × ~1M ratings, §4.2's item range tops
    /// out at 3,900). CF neighbourhoods are fitted per group member via
    /// [`StudyWorld::cf_model_for`]; fitting all 6,040 users is neither
    /// needed nor what the paper's ad-hoc-group setting implies.
    pub fn scalability_scale() -> Self {
        WorldConfig {
            movielens: MovieLensConfig::paper_scale(),
            social: SocialConfig::paper_scale(),
            granularity: Granularity::TwoMonth,
            // ~5% of the population as neighbourhood: at 6,040 users the
            // default 40 neighbours see too few co-ratings per candidate
            // item and predictions collapse to per-user means, which
            // destroys the shared list heads the pruning experiments
            // exercise.
            cf: CfConfig {
                top_n: 300,
                ..CfConfig::default()
            },
        }
    }

    /// Build the world.
    pub fn build(self) -> StudyWorld {
        StudyWorld::build(self)
    }
}

/// A fully materialized study world.
pub struct StudyWorld {
    /// The rating world (with its latent ground truth).
    pub movielens: MovieLens,
    /// The social world.
    pub social: SocialNetwork,
    /// The discretized year.
    pub timeline: Timeline,
    /// The population affinity index over the study users.
    pub population: PopulationAffinity,
    /// The configuration used.
    pub config: WorldConfig,
}

impl StudyWorld {
    /// Build everything from a configuration.
    pub fn build(config: WorldConfig) -> Self {
        let mut movielens = config.movielens.generate();
        let social = config.social.generate();
        assert!(
            social.num_users() <= movielens.matrix.num_users(),
            "every study user needs a rating-matrix row ({} social vs {} matrix)",
            social.num_users(),
            movielens.matrix.num_users()
        );
        inject_participant_ratings(&mut movielens, &social);
        let timeline =
            Timeline::discretize(0, social.horizon(), config.granularity).expect("valid horizon");
        let universe: Vec<UserId> = social.users().collect();
        let population =
            PopulationAffinity::build(&SocialAffinitySource::new(&social), &universe, &timeline);
        StudyWorld {
            movielens,
            social,
            timeline,
            population,
            config: config_owned(config),
        }
    }

    /// The study participants (social users).
    pub fn study_users(&self) -> Vec<UserId> {
        self.social.users().collect()
    }

    /// Fit the CF model for every user (borrowing the matrix).
    pub fn cf_model(&self) -> UserCfModel<'_> {
        UserCfModel::fit(&self.movielens.matrix, self.config.cf)
    }

    /// Fit the CF model for the given users only — the scalable path for
    /// large matrices (see [`WorldConfig::scalability_scale`]).
    pub fn cf_model_for(&self, users: &[UserId]) -> UserCfModel<'_> {
        UserCfModel::fit_for(&self.movielens.matrix, self.config.cf, users)
    }

    /// Index of the last period — the study's query period.
    pub fn last_period(&self) -> usize {
        self.timeline.num_periods() - 1
    }
}

fn config_owned(c: WorldConfig) -> WorldConfig {
    c
}

/// Reproduce the user-collection protocol of §4.1.1: every study
/// participant rates ≥30 movies from a pre-computed set — either the
/// **Similar Set** (the 50 most popular movies) or the **Dissimilar Set**
/// (the top-25 popular movies plus the 25 highest rating-variance movies
/// ranked in the top-200 by popularity).
///
/// This is load-bearing for both experiment families: it gives study
/// users a strongly co-rated pool, so they become each other's CF
/// neighbours and their preference lists correlate — the structure the
/// similar/dissimilar formation (§4.1.3) and GRECA's early termination
/// (§4.2) both exploit, exactly as in the paper's study.
fn inject_participant_ratings(ml: &mut MovieLens, social: &SocialNetwork) {
    use greca_dataset::{ItemId, Rating, RatingMatrixBuilder};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let matrix = &ml.matrix;
    let by_pop = matrix.items_by_popularity();
    let popular_set: Vec<ItemId> = by_pop.iter().take(50).copied().collect();
    // Diversity set: highest rating variance among the top-200 popular.
    let mut top200: Vec<ItemId> = by_pop.iter().take(200).copied().collect();
    top200.sort_by(|&a, &b| {
        let va = matrix.item_rating_variance(a).unwrap_or(0.0);
        let vb = matrix.item_rating_variance(b).unwrap_or(0.0);
        vb.partial_cmp(&va).expect("finite").then_with(|| a.cmp(&b))
    });
    let diversity_set: Vec<ItemId> = top200.iter().take(25).copied().collect();
    let mut dissimilar_set: Vec<ItemId> = popular_set.iter().take(25).copied().collect();
    dissimilar_set.extend(diversity_set.iter().copied());
    dissimilar_set.sort_unstable();
    dissimilar_set.dedup();

    let mut rng = StdRng::seed_from_u64(0x9a17_1c1a);
    let mut builder = RatingMatrixBuilder::new(matrix.num_users(), matrix.num_items());
    for u in matrix.users() {
        for &(i, v) in matrix.user_ratings(u) {
            builder.rate(u, i, v, 0);
        }
    }
    for u in social.users() {
        // Alternate clusters between the two rating sets, mirroring the
        // study's assignment of participants to one of two pre-computed
        // sets.
        let set: &[ItemId] = if social.cluster_of(u) % 2 == 0 {
            &popular_set
        } else {
            &dissimilar_set
        };
        let want = rng.random_range(30..=set.len().min(45));
        let mut pool = set.to_vec();
        for slot in 0..want {
            let j = rng.random_range(slot..pool.len());
            pool.swap(slot, j);
            let item = pool[slot];
            let noisy = ml.latent_utility(u, item)
                + greca_dataset::randx::normal(&mut rng, 0.0, ml.config.noise_std);
            builder.push(Rating {
                user: u,
                item,
                value: greca_dataset::randx::to_star_rating(noisy),
                ts: rng.random_range(0..social.horizon().max(1)),
            });
        }
    }
    ml.matrix = builder.build();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_world_builds_consistently() {
        let w = WorldConfig::study_scale().build();
        assert!(w.study_users().len() >= 65);
        assert_eq!(
            w.population.num_periods(),
            w.timeline.num_periods(),
            "one index slice per period"
        );
        assert!(w.last_period() >= 5, "two-month periods over a year");
    }

    #[test]
    fn cf_model_predicts_for_study_users() {
        let w = WorldConfig::study_scale().build();
        let cf = w.cf_model();
        for &u in w.study_users().iter().take(5) {
            let p = cf.predict(u, greca_dataset::ItemId(0));
            assert!(p.is_finite() && (0.0..=5.0).contains(&p));
        }
    }
}
