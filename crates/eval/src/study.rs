//! The two-phase quality study (§4.1.3–§4.1.4).
//!
//! Groups are formed along the paper's three axes — size (small 3 /
//! large 6), cohesiveness (similar / dissimilar in rating taste) and
//! affinity strength (every pair ≥ 0.4 / not) — giving the 8 study
//! groups. Each protocol then reports preference/satisfaction
//! percentages per group characteristic, exactly the x-axis of Figures
//! 1–3.

use crate::metrics::{mean, percent};
use crate::oracle::{OracleConfig, SatisfactionOracle};
use crate::variants::RecVariant;
use crate::world::StudyWorld;
use greca_affinity::AffinityMode;
use greca_cf::{candidate_items, user_similarity, Similarity, UserCfModel};
use greca_core::GrecaEngine;
use greca_dataset::{AffinityLevel, Cohesion, Group, GroupBuilder, GroupSpec, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// The group-characteristic buckets on the figures' x-axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupCharacteristic {
    /// Similar rating tastes.
    Sim,
    /// Dissimilar rating tastes.
    Diss,
    /// Small groups (3 members).
    Small,
    /// Large groups (6 members).
    Large,
    /// High pairwise affinity (≥ 0.4).
    HighAff,
    /// Low pairwise affinity.
    LowAff,
}

impl GroupCharacteristic {
    /// Figure order: Sim, Diss, Small, Large, High Aff, Low Aff.
    pub fn all() -> [GroupCharacteristic; 6] {
        [
            GroupCharacteristic::Sim,
            GroupCharacteristic::Diss,
            GroupCharacteristic::Small,
            GroupCharacteristic::Large,
            GroupCharacteristic::HighAff,
            GroupCharacteristic::LowAff,
        ]
    }

    /// Axis label as printed in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            GroupCharacteristic::Sim => "Sim",
            GroupCharacteristic::Diss => "Diss",
            GroupCharacteristic::Small => "Small",
            GroupCharacteristic::Large => "Large",
            GroupCharacteristic::HighAff => "High Aff",
            GroupCharacteristic::LowAff => "Low Aff",
        }
    }
}

/// One formed study group with its labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyGroup {
    /// The group.
    pub group: Group,
    /// Cohesion label.
    pub cohesion: Cohesion,
    /// Affinity label.
    pub affinity: AffinityLevel,
    /// Whether this is a small (3) or large (6) group.
    pub small: bool,
}

impl StudyGroup {
    /// The characteristics this group contributes to.
    pub fn characteristics(&self) -> Vec<GroupCharacteristic> {
        let mut out = Vec::with_capacity(3);
        match self.cohesion {
            Cohesion::Similar => out.push(GroupCharacteristic::Sim),
            Cohesion::Dissimilar => out.push(GroupCharacteristic::Diss),
            Cohesion::Any => {}
        }
        out.push(if self.small {
            GroupCharacteristic::Small
        } else {
            GroupCharacteristic::Large
        });
        match self.affinity {
            AffinityLevel::High => out.push(GroupCharacteristic::HighAff),
            AffinityLevel::Low => out.push(GroupCharacteristic::LowAff),
            AffinityLevel::Any => {}
        }
        out
    }
}

/// Study parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Small group size (paper: 3).
    pub small_size: usize,
    /// Large group size (paper: 6).
    pub large_size: usize,
    /// Recommendation list length.
    pub k: usize,
    /// Cap on candidate items per group (speed knob; the oracle ranks
    /// all candidates for its best/worst reference lists).
    pub max_candidates: usize,
    /// Affinity threshold for "high affinity" (paper: 0.4).
    pub affinity_threshold: f64,
    /// Oracle parameters.
    pub oracle: OracleConfig,
    /// Group-formation seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            small_size: 3,
            large_size: 6,
            k: 10,
            max_candidates: 160,
            affinity_threshold: 0.4,
            oracle: OracleConfig::default(),
            seed: 0x57edu64,
        }
    }
}

/// Per-characteristic percentages of one protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndependentOutcome {
    /// The evaluated variant.
    pub variant: RecVariant,
    /// `(characteristic, mean satisfaction %)` in figure order.
    pub rows: Vec<(GroupCharacteristic, f64)>,
}

/// Per-characteristic preference of list 1 over list 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparativeOutcome {
    /// The preferred-variant candidate (`l1`).
    pub variant_a: RecVariant,
    /// The alternative (`l2`).
    pub variant_b: RecVariant,
    /// `(characteristic, % of picks for l1)` in figure order.
    pub rows: Vec<(GroupCharacteristic, f64)>,
}

/// The assembled study: world + 8 groups + oracle.
pub struct Study<'a> {
    world: &'a StudyWorld,
    cf: UserCfModel<'a>,
    config: StudyConfig,
    groups: Vec<StudyGroup>,
}

impl<'a> Study<'a> {
    /// Form the 8 study groups over the world's social users.
    pub fn new(world: &'a StudyWorld, config: StudyConfig) -> Self {
        let cf = world.cf_model();
        let users: Vec<UserId> = world.study_users();
        let matrix = &world.movielens.matrix;
        let pop = &world.population;
        let p_idx = world.last_period();
        // Cohesion is measured with *mean-centred* (Pearson) similarity:
        // raw cosine over all-positive star ratings is close to 1 for
        // every pair and cannot separate tastes. The paper achieved the
        // same separation by having participants rate a purpose-built
        // "Dissimilar Set" of high-variance movies (§4.1.1); centring is
        // the equivalent statistical control on a fixed rating pool.
        let similarity = |a: UserId, b: UserId| user_similarity(matrix, a, b, Similarity::Pearson);
        let affinity = |a: UserId, b: UserId| {
            pop.pair_of(a, b)
                .map(|pair| pop.affinity(pair, p_idx, AffinityMode::Discrete).min(1.0))
                .unwrap_or(0.0)
        };
        let builder = GroupBuilder::new(users, similarity, affinity).with_restarts(6);
        let mut groups = Vec::with_capacity(8);
        let mut seed = config.seed;
        for &cohesion in &[Cohesion::Similar, Cohesion::Dissimilar] {
            for &small in &[true, false] {
                for &aff in &[AffinityLevel::High, AffinityLevel::Low] {
                    let size = if small {
                        config.small_size
                    } else {
                        config.large_size
                    };
                    let mut spec = GroupSpec::of_size(size).cohesion(cohesion).affinity(aff);
                    spec.affinity_threshold = config.affinity_threshold;
                    seed = seed.wrapping_add(0x9e37_79b9);
                    // High-affinity large groups may be infeasible in a
                    // sparse social world; progressively relax the
                    // threshold rather than abort the study.
                    let group = loop {
                        match builder.build(spec, seed) {
                            Ok(g) => break g,
                            Err(_) if spec.affinity_threshold > 0.05 => {
                                spec.affinity_threshold /= 2.0;
                            }
                            Err(e) => panic!("group formation failed: {e}"),
                        }
                    };
                    groups.push(StudyGroup {
                        group,
                        cohesion,
                        affinity: aff,
                        small,
                    });
                }
            }
        }
        Study {
            world,
            cf,
            config,
            groups,
        }
    }

    /// The formed groups.
    pub fn groups(&self) -> &[StudyGroup] {
        &self.groups
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Candidate items for a group (not yet rated by any member, capped).
    pub fn candidates(&self, group: &Group) -> Vec<ItemId> {
        let mut items = candidate_items(&self.world.movielens.matrix, group);
        items.truncate(self.config.max_candidates);
        items
    }

    /// The top-k list a variant recommends to a group.
    pub fn recommend(&self, group: &Group, variant: RecVariant) -> Vec<ItemId> {
        let items = self.candidates(group);
        let prepared = GrecaEngine::new(&self.cf, &self.world.population)
            .query(group)
            .items(&items)
            .period(self.world.last_period())
            .affinity(variant.mode())
            .consensus(variant.consensus())
            // The paper's rpref is an unnormalized sum over companions
            // (§2.2); the study uses the verbatim formula.
            .normalize_rpref(false)
            .top(self.config.k)
            .prepare()
            .expect("study groups and candidate sets are valid queries");
        prepared
            .exact_scores()
            .into_iter()
            .take(self.config.k)
            .map(|(i, _)| i)
            .collect()
    }

    /// Independent evaluation (Figure 1): per-characteristic mean
    /// satisfaction with `variant`'s lists.
    pub fn independent(&self, variant: RecVariant) -> IndependentOutcome {
        let oracle = SatisfactionOracle::new(self.world, self.config.oracle);
        let mut rng = oracle.judgment_rng();
        let p_idx = self.world.last_period();
        let mut per_char: std::collections::HashMap<GroupCharacteristic, Vec<f64>> =
            std::collections::HashMap::new();
        for sg in &self.groups {
            let list = self.recommend(&sg.group, variant);
            let candidates = self.candidates(&sg.group);
            let sats: Vec<f64> = sg
                .group
                .members()
                .iter()
                .map(|&u| {
                    oracle.satisfaction_percent(u, &list, &candidates, &sg.group, p_idx, &mut rng)
                })
                .collect();
            let group_sat = mean(&sats);
            for c in sg.characteristics() {
                per_char.entry(c).or_default().push(group_sat);
            }
        }
        IndependentOutcome {
            variant,
            rows: GroupCharacteristic::all()
                .iter()
                .map(|&c| (c, mean(per_char.get(&c).map_or(&[][..], |v| v))))
                .collect(),
        }
    }

    /// Comparative evaluation (Figure 3): % of member picks preferring
    /// `variant_a`'s list over `variant_b`'s.
    pub fn comparative(&self, variant_a: RecVariant, variant_b: RecVariant) -> ComparativeOutcome {
        let oracle = SatisfactionOracle::new(self.world, self.config.oracle);
        let mut rng = oracle.judgment_rng();
        let p_idx = self.world.last_period();
        let mut wins: std::collections::HashMap<GroupCharacteristic, (usize, usize)> =
            std::collections::HashMap::new();
        for sg in &self.groups {
            let la = self.recommend(&sg.group, variant_a);
            let lb = self.recommend(&sg.group, variant_b);
            for &u in sg.group.members() {
                let prefers_a = oracle.prefers(u, &la, &lb, &sg.group, p_idx, &mut rng);
                for c in sg.characteristics() {
                    let e = wins.entry(c).or_default();
                    e.1 += 1;
                    if prefers_a {
                        e.0 += 1;
                    }
                }
            }
        }
        ComparativeOutcome {
            variant_a,
            variant_b,
            rows: GroupCharacteristic::all()
                .iter()
                .map(|&c| {
                    let (w, t) = wins.get(&c).copied().unwrap_or((0, 0));
                    (c, percent(w, t))
                })
                .collect(),
        }
    }

    /// Figure 2: three-way AP vs MO vs PD pick percentages per
    /// characteristic. Returns rows of `(characteristic, [AP%, MO%, PD%])`.
    pub fn consensus_threeway(&self) -> Vec<(GroupCharacteristic, [f64; 3])> {
        let oracle = SatisfactionOracle::new(self.world, self.config.oracle);
        let mut rng = oracle.judgment_rng();
        let p_idx = self.world.last_period();
        let variants = [
            RecVariant::Default,
            RecVariant::LeastMisery,
            RecVariant::PairwiseDisagreement,
        ];
        let mut counts: std::collections::HashMap<GroupCharacteristic, [usize; 4]> =
            std::collections::HashMap::new();
        for sg in &self.groups {
            let lists: Vec<Vec<ItemId>> = variants
                .iter()
                .map(|&v| self.recommend(&sg.group, v))
                .collect();
            for &u in sg.group.members() {
                let pick = oracle.pick_of_three(
                    u,
                    [&lists[0], &lists[1], &lists[2]],
                    &sg.group,
                    p_idx,
                    &mut rng,
                );
                for c in sg.characteristics() {
                    let e = counts.entry(c).or_default();
                    e[pick] += 1;
                    e[3] += 1;
                }
            }
        }
        GroupCharacteristic::all()
            .iter()
            .map(|&c| {
                let e = counts.get(&c).copied().unwrap_or([0, 0, 0, 0]);
                (
                    c,
                    [
                        percent(e[0], e[3]),
                        percent(e[1], e[3]),
                        percent(e[2], e[3]),
                    ],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn quick_config() -> StudyConfig {
        StudyConfig {
            k: 5,
            max_candidates: 60,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_forms_eight_labeled_groups() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        assert_eq!(study.groups().len(), 8);
        let smalls = study.groups().iter().filter(|g| g.small).count();
        assert_eq!(smalls, 4);
        for sg in study.groups() {
            let expect = if sg.small { 3 } else { 6 };
            assert_eq!(sg.group.len(), expect);
            assert_eq!(sg.characteristics().len(), 3);
        }
    }

    #[test]
    fn similar_groups_have_higher_pairwise_similarity() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        let matrix = &w.movielens.matrix;
        // Cohesion is formed (and therefore measured) with Pearson
        // similarity; see Study::new.
        let avg_sim = |g: &Group| {
            let sims: Vec<f64> = g
                .pairs()
                .map(|(a, b)| user_similarity(matrix, a, b, Similarity::Pearson))
                .collect();
            mean(&sims)
        };
        let sim_groups: Vec<f64> = study
            .groups()
            .iter()
            .filter(|g| g.cohesion == Cohesion::Similar)
            .map(|g| avg_sim(&g.group))
            .collect();
        let diss_groups: Vec<f64> = study
            .groups()
            .iter()
            .filter(|g| g.cohesion == Cohesion::Dissimilar)
            .map(|g| avg_sim(&g.group))
            .collect();
        assert!(
            mean(&sim_groups) > mean(&diss_groups),
            "similar {} vs dissimilar {}",
            mean(&sim_groups),
            mean(&diss_groups)
        );
    }

    #[test]
    fn recommendations_are_k_distinct_unrated_items() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        let sg = &study.groups()[0];
        let list = study.recommend(&sg.group, RecVariant::Default);
        assert_eq!(list.len(), 5);
        let set: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), 5);
        for &i in &list {
            for &u in sg.group.members() {
                assert!(!w.movielens.matrix.has_rated(u, i));
            }
        }
    }

    #[test]
    fn independent_covers_all_characteristics() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        let out = study.independent(RecVariant::Default);
        assert_eq!(out.rows.len(), 6);
        for &(_, pct) in &out.rows {
            assert!((0.0..=100.0).contains(&pct));
        }
    }

    #[test]
    fn time_aware_beats_time_agnostic_satisfaction() {
        // Figure 1 C vs A: dropping the temporal component costs
        // satisfaction across the board.
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, StudyConfig::default());
        let def = study.independent(RecVariant::Default);
        let tag = study.independent(RecVariant::TimeAgnostic);
        let avg =
            |o: &IndependentOutcome| mean(&o.rows.iter().map(|&(_, p)| p).collect::<Vec<_>>());
        assert!(
            avg(&def) > avg(&tag),
            "default {} vs time-agnostic {}",
            avg(&def),
            avg(&tag)
        );
    }

    #[test]
    fn comparative_headlines_hold() {
        // Figure 3's directional claims, re-anchored to what an 8-group
        // simulated study can resolve. The §4.1.4 closed-world pick
        // degenerates to a judgment-noise coin flip whenever two
        // variants produce the *same* list — and at this scale most
        // head-to-heads are ties — so the protocol percentages only
        // support a sampling band around 50%. The directional content is
        // asserted on the noise-free observable instead: each member's
        // ground-truth value of the two lists (the quantity the paper's
        // raters estimated). The paper's Figure 3C sub-claim (dissimilar
        // and large groups *prefer* the continuous model) is not
        // resolvable against this oracle, whose truth follows the
        // discrete model; its §4.2.4 cost-similarity counterpart is
        // asserted in `tests/paper_claims.rs`.
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, StudyConfig::default());
        let oracle = SatisfactionOracle::new(
            &w,
            OracleConfig {
                judgment_noise: 0.0,
                ..Default::default()
            },
        );
        let p_idx = w.last_period();
        // Per-member strict (win, tie, loss) counts of a's list vs b's,
        // by ground-truth list value.
        let duel = |a: RecVariant, b: RecVariant| {
            let mut counts = (0u32, 0u32, 0u32);
            for sg in study.groups() {
                let la = study.recommend(&sg.group, a);
                let lb = study.recommend(&sg.group, b);
                for &u in sg.group.members() {
                    let ta = oracle.list_truth(u, &la, &sg.group, p_idx);
                    let tb = oracle.list_truth(u, &lb, &sg.group, p_idx);
                    if (ta - tb).abs() < 1e-12 {
                        counts.1 += 1;
                    } else if ta > tb {
                        counts.0 += 1;
                    } else {
                        counts.2 += 1;
                    }
                }
            }
            counts
        };

        // (B) Time-aware vs time-agnostic: modelling temporal drift
        // strictly helps some members and never loses overall.
        let (wins, _ties, losses) = duel(RecVariant::Default, RecVariant::TimeAgnostic);
        assert!(
            wins > losses,
            "time-aware must win the truth-level duel ({wins} wins vs {losses} losses)"
        );

        // (A) Affinity-aware vs affinity-agnostic: affinity genuinely
        // changes recommendations, strictly improves ground truth for
        // some members, and the noisy protocol does not collapse below
        // its tie-dominated sampling floor (an upper bound would
        // penalize genuine improvement, so there is none).
        let (a_wins, _a_ties, _a_losses) = duel(RecVariant::Default, RecVariant::AffinityAgnostic);
        assert!(
            a_wins > 0,
            "affinity-awareness must strictly help some members"
        );
        let lists_differ = study.groups().iter().any(|sg| {
            study.recommend(&sg.group, RecVariant::Default)
                != study.recommend(&sg.group, RecVariant::AffinityAgnostic)
        });
        assert!(
            lists_differ,
            "affinity must change at least one group's list"
        );
        let overall =
            |o: &ComparativeOutcome| mean(&o.rows.iter().map(|&(_, p)| p).collect::<Vec<_>>());
        let aff = study.comparative(RecVariant::Default, RecVariant::AffinityAgnostic);
        assert!(
            overall(&aff) >= 40.0,
            "affinity head-to-head below the sampling floor: {}",
            overall(&aff)
        );

        // (C) Continuous vs discrete time model: "very similar" (§4.2.4)
        // — ties dominate and neither side wins decisively.
        let (c_wins, c_ties, c_losses) = duel(RecVariant::ContinuousTime, RecVariant::Default);
        let picks = c_wins + c_ties + c_losses;
        assert!(
            c_ties * 2 >= picks,
            "continuous and discrete should mostly tie ({c_ties}/{picks})"
        );
        assert!(
            c_wins.abs_diff(c_losses) * 4 <= picks,
            "neither time model should dominate ({c_wins} vs {c_losses} of {picks})"
        );
    }

    #[test]
    fn comparative_percentages_are_bounded() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        let out = study.comparative(RecVariant::Default, RecVariant::AffinityAgnostic);
        for &(_, pct) in &out.rows {
            assert!((0.0..=100.0).contains(&pct));
        }
    }

    #[test]
    fn threeway_percentages_sum_to_100() {
        let w = WorldConfig::study_scale().build();
        let study = Study::new(&w, quick_config());
        for (c, pcts) in study.consensus_threeway() {
            let sum: f64 = pcts.iter().sum();
            assert!(
                (sum - 100.0).abs() < 1e-6,
                "{}: {pcts:?} sums to {sum}",
                c.label()
            );
        }
    }
}
