//! The recommendation variants compared in Figures 1–3.
//!
//! Figure 1's charts A–F each change one parameter against the default
//! (affinity-aware, discrete time model, time-aware, AP consensus):
//!
//! * **A Default** — discrete temporal affinity + AP;
//! * **B Affinity-agnostic** — no affinity at all;
//! * **C Time-agnostic** — static affinity only;
//! * **D Continuous time model** — continuous instead of discrete;
//! * **E MO** — least-misery consensus;
//! * **F PD** — pairwise-disagreement consensus.

use greca_affinity::AffinityMode;
use greca_consensus::ConsensusFunction;
use serde::{Deserialize, Serialize};

/// A recommendation variant: an affinity mode plus a consensus function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecVariant {
    /// Chart A: discrete temporal affinity, AP.
    Default,
    /// Chart B: affinity-agnostic, AP.
    AffinityAgnostic,
    /// Chart C: time-agnostic (static affinity only), AP.
    TimeAgnostic,
    /// Chart D: continuous temporal affinity, AP.
    ContinuousTime,
    /// Chart E: discrete temporal affinity, least-misery.
    LeastMisery,
    /// Chart F: discrete temporal affinity, pairwise disagreement.
    PairwiseDisagreement,
}

impl RecVariant {
    /// All six variants in Figure 1 order.
    pub fn figure1_sweep() -> [RecVariant; 6] {
        [
            RecVariant::Default,
            RecVariant::AffinityAgnostic,
            RecVariant::TimeAgnostic,
            RecVariant::ContinuousTime,
            RecVariant::LeastMisery,
            RecVariant::PairwiseDisagreement,
        ]
    }

    /// The affinity mode this variant recommends with.
    pub fn mode(&self) -> AffinityMode {
        match self {
            RecVariant::AffinityAgnostic => AffinityMode::None,
            RecVariant::TimeAgnostic => AffinityMode::StaticOnly,
            RecVariant::ContinuousTime => AffinityMode::continuous(),
            _ => AffinityMode::Discrete,
        }
    }

    /// The consensus function this variant recommends with.
    pub fn consensus(&self) -> ConsensusFunction {
        match self {
            RecVariant::LeastMisery => ConsensusFunction::least_misery(),
            RecVariant::PairwiseDisagreement => ConsensusFunction::pairwise_disagreement(0.8),
            _ => ConsensusFunction::average_preference(),
        }
    }

    /// Chart label used in Figure 1.
    pub fn label(&self) -> &'static str {
        match self {
            RecVariant::Default => "(A) Default",
            RecVariant::AffinityAgnostic => "(B) Affinity-agnostic",
            RecVariant::TimeAgnostic => "(C) Time-agnostic",
            RecVariant::ContinuousTime => "(D) Continuous Time Model",
            RecVariant::LeastMisery => "(E) MO Consensus Function",
            RecVariant::PairwiseDisagreement => "(F) PD Consensus Function",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_six_charts() {
        let v = RecVariant::figure1_sweep();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], RecVariant::Default);
    }

    #[test]
    fn modes_match_chart_semantics() {
        assert_eq!(RecVariant::Default.mode(), AffinityMode::Discrete);
        assert_eq!(RecVariant::AffinityAgnostic.mode(), AffinityMode::None);
        assert_eq!(RecVariant::TimeAgnostic.mode(), AffinityMode::StaticOnly);
        assert!(matches!(
            RecVariant::ContinuousTime.mode(),
            AffinityMode::Continuous { .. }
        ));
    }

    #[test]
    fn consensus_matches_chart_semantics() {
        assert_eq!(RecVariant::Default.consensus().label(), "AP");
        assert_eq!(RecVariant::LeastMisery.consensus().label(), "MO");
        assert!(RecVariant::PairwiseDisagreement
            .consensus()
            .label()
            .starts_with("PD"));
    }
}
