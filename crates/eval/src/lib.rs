//! # greca-eval
//!
//! Quality-study simulator reproducing §4.1 of the paper.
//!
//! The paper recruited 72 Facebook users who (1) rated ≥30 MovieLens
//! movies, then (2) judged group recommendation lists in two protocols:
//! *independent* (score one list 0–5) and *comparative* (pick one of two
//! or three lists). Humans are not available to a reproduction, so this
//! crate substitutes a **satisfaction oracle** (see [`oracle`]) whose
//! ground truth deliberately contains the affinity and temporal signals
//! the paper's models compete to capture:
//!
//! * a user's true appreciation of an item in a group blends her latent
//!   taste with her companions' tastes, weighted by *true* temporal
//!   affinity (the paper's core conjecture, §1);
//! * enjoying an item together is dampened by how much the group's
//!   tastes spread on it (the behavioural basis for disagreement-aware
//!   consensus [20, 22]).
//!
//! Under this oracle the reproduction asks the same *directional*
//! questions as Figures 1–3: does including affinity/time/consensus
//! machinery recover satisfaction that ablated variants leave behind?
//! Absolute percentages are not comparable to the human study; the win
//! ordering is (see EXPERIMENTS.md).

pub mod metrics;
pub mod oracle;
pub mod study;
pub mod variants;
pub mod world;

pub use metrics::{mean, percent};
pub use oracle::{OracleConfig, SatisfactionOracle};
pub use study::{
    ComparativeOutcome, GroupCharacteristic, IndependentOutcome, Study, StudyConfig, StudyGroup,
};
pub use variants::RecVariant;
pub use world::{StudyWorld, WorldConfig};
