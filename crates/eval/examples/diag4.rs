use greca_eval::*;

fn main() {
    let w = WorldConfig::study_scale().build();
    let study = Study::new(
        &w,
        StudyConfig {
            k: 10,
            max_candidates: 160,
            ..Default::default()
        },
    );
    for v in RecVariant::figure1_sweep() {
        let out = study.independent(v);
        let row: Vec<String> = out
            .rows
            .iter()
            .map(|(c, p)| format!("{}={:.1}", c.label(), p))
            .collect();
        println!("{:28} {}", v.label(), row.join("  "));
    }
    println!();
    for (a, b, name) in [
        (
            RecVariant::Default,
            RecVariant::AffinityAgnostic,
            "aff vs agnostic",
        ),
        (
            RecVariant::Default,
            RecVariant::TimeAgnostic,
            "time vs agnostic",
        ),
        (
            RecVariant::ContinuousTime,
            RecVariant::Default,
            "cont vs discrete",
        ),
    ] {
        let out = study.comparative(a, b);
        let row: Vec<String> = out
            .rows
            .iter()
            .map(|(c, p)| format!("{}={:.0}", c.label(), p))
            .collect();
        println!("{:18} {}", name, row.join("  "));
    }
    println!();
    for (c, pcts) in study.consensus_threeway() {
        println!(
            "fig2 {:9} AP={:.0} MO={:.0} PD={:.0}",
            c.label(),
            pcts[0],
            pcts[1],
            pcts[2]
        );
    }
}
