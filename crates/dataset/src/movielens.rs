//! Synthetic MovieLens-1M-like rating dataset.
//!
//! The paper evaluates on MovieLens 1M (Table 5: 6,040 users, 3,952
//! movies, 1,000,209 ratings, 1–5 stars). The raw file is not
//! redistributable, so this module generates a dataset with the same
//! statistical fingerprint (see `DESIGN.md` §3):
//!
//! * **item popularity** follows a Zipf-like law (a few blockbusters, a
//!   long tail), which drives the skew of preference-list scores that the
//!   top-k algorithms exploit;
//! * **user activity** is log-normal (MovieLens users rate 20–2,000+
//!   movies);
//! * **rating values** come from a latent genre-factor model
//!   `r = μ + b_u + q_i + γ·(taste_u · genres_i) + ε` quantized to 1–5
//!   stars with a global mean near MovieLens' 3.58;
//! * **taste clustering**: users sample their taste from a small number of
//!   archetypes, giving the similar/dissimilar structure the group
//!   formation procedure (§4.1.3) needs.

use crate::randx::{self, CumTable};
use crate::ratings::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder, UserId};
use crate::time::{Timestamp, YEAR};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic MovieLens generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovieLensConfig {
    /// Number of users (paper: 6,040).
    pub num_users: usize,
    /// Number of items (paper: 3,952).
    pub num_items: usize,
    /// Target number of ratings (paper: 1,000,209). The generator lands
    /// within a few percent of this.
    pub target_ratings: usize,
    /// Number of latent genres (MovieLens has 18).
    pub num_genres: usize,
    /// Number of user taste archetypes (controls similarity clustering).
    pub num_archetypes: usize,
    /// Zipf exponent for item popularity.
    pub popularity_skew: f64,
    /// Strength of the taste·genre interaction term.
    pub taste_gain: f64,
    /// Std-dev of the rating noise ε.
    pub noise_std: f64,
    /// Std-dev of the per-item quality bias `q_i` (how much "everyone
    /// agrees this movie is good" dominates taste).
    pub item_bias_std: f64,
    /// Std-dev of the per-user rating bias `b_u`.
    pub user_bias_std: f64,
    /// Global rating intercept μ (MovieLens 1M mean ≈ 3.58).
    pub mean_rating: f64,
    /// Rating timestamps are drawn uniformly from `[0, horizon)`.
    pub horizon: Timestamp,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl MovieLensConfig {
    /// Full paper-scale configuration (Table 5), with effect sizes
    /// calibrated to MovieLens 1M itself: the per-item quality effect
    /// (item-mean std ≈ 0.78 stars) dominates the per-user taste
    /// interaction, and residual noise is large (≈ 0.8 stars). This
    /// quality-dominated structure is what makes different users' CF
    /// preference lists share their heads — the property the top-k
    /// pruning results of §4.2 rest on.
    pub fn paper_scale() -> Self {
        MovieLensConfig {
            num_users: 6_040,
            num_items: 3_952,
            target_ratings: 1_000_209,
            item_bias_std: 0.75,
            taste_gain: 1.0,
            noise_std: 0.95,
            ..MovieLensConfig::small()
        }
    }

    /// A small world for tests and examples (200 users × 400 items).
    pub fn small() -> Self {
        MovieLensConfig {
            num_users: 200,
            num_items: 400,
            target_ratings: 12_000,
            num_genres: 18,
            num_archetypes: 8,
            popularity_skew: 0.9,
            taste_gain: 2.2,
            noise_std: 0.55,
            item_bias_std: 0.45,
            user_bias_std: 0.35,
            mean_rating: 3.58,
            horizon: YEAR,
            seed: 0x5eed,
        }
    }

    /// A medium world (the scalability experiments' item range tops out at
    /// 3,900 items, §4.2.2 Figure 5C).
    pub fn scalability_scale() -> Self {
        MovieLensConfig {
            num_users: 1_200,
            num_items: 3_900,
            target_ratings: 180_000,
            ..MovieLensConfig::small()
        }
    }

    /// Override the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the item count, keeping everything else.
    pub fn with_items(mut self, num_items: usize) -> Self {
        self.num_items = num_items;
        self
    }

    /// Generate the dataset.
    pub fn generate(&self) -> MovieLens {
        generate(self)
    }
}

/// The generated synthetic dataset: the rating matrix plus the latent
/// structure (kept so evaluation code can build ground-truth oracles).
#[derive(Debug, Clone)]
pub struct MovieLens {
    /// The observable rating matrix.
    pub matrix: RatingMatrix,
    /// Per-item genre mixture vectors (rows sum to 1).
    pub item_genres: Vec<Vec<f64>>,
    /// Per-user taste vectors over genres (rows sum to 1).
    pub user_tastes: Vec<Vec<f64>>,
    /// Per-user rating bias `b_u`.
    pub user_bias: Vec<f64>,
    /// Per-item quality bias `q_i`.
    pub item_bias: Vec<f64>,
    /// Archetype index each user's taste was drawn from.
    pub user_archetype: Vec<usize>,
    /// The configuration that produced this dataset.
    pub config: MovieLensConfig,
}

impl MovieLens {
    /// The latent (noise-free, unquantized) appreciation of `user` for
    /// `item`: the ground truth behind the observed star ratings. Used by
    /// the evaluation crate's satisfaction oracle.
    pub fn latent_utility(&self, user: UserId, item: ItemId) -> f64 {
        let c = &self.config;
        let taste = &self.user_tastes[user.idx()];
        let genres = &self.item_genres[item.idx()];
        let dot: f64 = taste.iter().zip(genres).map(|(a, b)| a * b).sum();
        let centered = dot - 1.0 / c.num_genres as f64;
        c.mean_rating
            + self.user_bias[user.idx()]
            + self.item_bias[item.idx()]
            + c.taste_gain * centered * c.num_genres as f64 / 4.0
    }

    /// Dataset statistics in the shape of the paper's Table 5.
    pub fn stats(&self) -> MovieLensStats {
        MovieLensStats {
            num_users: self.matrix.num_users(),
            num_items: self.matrix.num_items(),
            num_ratings: self.matrix.num_ratings(),
            mean_rating: self.matrix.global_mean().unwrap_or(0.0),
            density: self.matrix.density(),
        }
    }
}

/// Summary statistics (Table 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovieLensStats {
    /// `# users`.
    pub num_users: usize,
    /// `# movies`.
    pub num_items: usize,
    /// `# ratings`.
    pub num_ratings: usize,
    /// Mean star rating.
    pub mean_rating: f64,
    /// Matrix density.
    pub density: f64,
}

fn dirichlet_like<R: RngExt + ?Sized>(rng: &mut R, n: usize, concentration: f64) -> Vec<f64> {
    // Approximate Dirichlet sampling: exponentiated normals normalized.
    // Smaller `concentration` → sparser vectors.
    let mut v: Vec<f64> = (0..n)
        .map(|_| randx::normal(rng, 0.0, 1.0 / concentration).exp())
        .collect();
    let sum: f64 = v.iter().sum();
    for x in &mut v {
        *x /= sum;
    }
    v
}

fn generate(cfg: &MovieLensConfig) -> MovieLens {
    assert!(cfg.num_users > 0 && cfg.num_items > 0, "empty world");
    assert!(
        cfg.num_genres > 0 && cfg.num_archetypes > 0,
        "need latent structure"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Latent item structure -------------------------------------------
    let mut item_genres = Vec::with_capacity(cfg.num_items);
    let mut item_bias = Vec::with_capacity(cfg.num_items);
    for _ in 0..cfg.num_items {
        // Movies have 1–3 dominant genres.
        let dominant = rng.random_range(1..=3usize);
        let mut g = vec![0.015 / cfg.num_genres as f64; cfg.num_genres];
        for _ in 0..dominant {
            let gi = rng.random_range(0..cfg.num_genres);
            g[gi] += 1.0 / dominant as f64;
        }
        let sum: f64 = g.iter().sum();
        for x in &mut g {
            *x /= sum;
        }
        item_genres.push(g);
        item_bias.push(randx::normal(&mut rng, 0.0, cfg.item_bias_std));
    }

    // --- Latent user structure -------------------------------------------
    let archetypes: Vec<Vec<f64>> = (0..cfg.num_archetypes)
        .map(|_| dirichlet_like(&mut rng, cfg.num_genres, 0.45))
        .collect();
    let mut user_tastes = Vec::with_capacity(cfg.num_users);
    let mut user_bias = Vec::with_capacity(cfg.num_users);
    let mut user_archetype = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let a = rng.random_range(0..cfg.num_archetypes);
        user_archetype.push(a);
        // Taste = archetype plus personal perturbation, renormalized.
        let mut t: Vec<f64> = archetypes[a]
            .iter()
            .map(|&x| (x + 0.03 * rng.random::<f64>()).max(1e-9))
            .collect();
        let sum: f64 = t.iter().sum();
        for x in &mut t {
            *x /= sum;
        }
        user_tastes.push(t);
        user_bias.push(randx::normal(&mut rng, 0.0, cfg.user_bias_std));
    }

    // --- Popularity + activity -------------------------------------------
    let pop = CumTable::new(&randx::zipf_weights(cfg.num_items, cfg.popularity_skew));
    // Log-normal activity normalized to hit the target rating count.
    let raw_activity: Vec<f64> = (0..cfg.num_users)
        .map(|_| randx::log_normal(&mut rng, 0.0, 0.9))
        .collect();
    let act_sum: f64 = raw_activity.iter().sum();
    let scale = cfg.target_ratings as f64 / act_sum;

    // --- Emit ratings ------------------------------------------------------
    let mut builder = RatingMatrixBuilder::new(cfg.num_users, cfg.num_items);
    let mut tastes_cache = MovieLens {
        matrix: RatingMatrixBuilder::new(0, 0).build(),
        item_genres,
        user_tastes,
        user_bias,
        item_bias,
        user_archetype,
        config: cfg.clone(),
    };
    for (u, &activity) in raw_activity.iter().enumerate() {
        let want = ((activity * scale).round() as usize).clamp(1, cfg.num_items);
        let picks = randx::sample_distinct(&mut rng, &pop, want);
        for idx in picks {
            let item = ItemId(idx as u32);
            let user = UserId(u as u32);
            let util = tastes_cache.latent_utility(user, item);
            let noisy = util + randx::normal(&mut rng, 0.0, cfg.noise_std);
            let value = randx::to_star_rating(noisy);
            let ts: Timestamp = rng.random_range(0..cfg.horizon.max(1));
            builder.push(Rating {
                user,
                item,
                value,
                ts,
            });
        }
    }
    tastes_cache.matrix = builder.build();
    tastes_cache
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_matches_config_counts() {
        let ml = MovieLensConfig::small().generate();
        let s = ml.stats();
        assert_eq!(s.num_users, 200);
        assert_eq!(s.num_items, 400);
        // Within 10% of target (dedup / clamping cause slight shortfall).
        let target = 12_000f64;
        assert!(
            (s.num_ratings as f64 - target).abs() / target < 0.10,
            "got {} ratings",
            s.num_ratings
        );
    }

    #[test]
    fn ratings_are_integer_stars_in_range() {
        let ml = MovieLensConfig::small().generate();
        for u in ml.matrix.users() {
            for &(_, v) in ml.matrix.user_ratings(u) {
                assert!((1.0..=5.0).contains(&v));
                assert_eq!(v, v.round());
            }
        }
    }

    #[test]
    fn mean_rating_is_near_movielens() {
        let ml = MovieLensConfig::small().generate();
        let mean = ml.matrix.global_mean().unwrap();
        assert!((3.1..=4.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn popularity_is_skewed() {
        let ml = MovieLensConfig::small().generate();
        let ranked = ml.matrix.items_by_popularity();
        let top = ml.matrix.item_popularity(ranked[0]);
        let median = ml.matrix.item_popularity(ranked[ranked.len() / 2]);
        assert!(
            top as f64 >= 4.0 * (median.max(1)) as f64,
            "top {top} vs median {median}: popularity should be heavy-tailed"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = MovieLensConfig::small().generate();
        let b = MovieLensConfig::small().generate();
        assert_eq!(a.matrix.num_ratings(), b.matrix.num_ratings());
        for u in a.matrix.users() {
            assert_eq!(a.matrix.user_ratings(u), b.matrix.user_ratings(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MovieLensConfig::small().generate();
        let b = MovieLensConfig::small().with_seed(99).generate();
        let same = a
            .matrix
            .users()
            .all(|u| a.matrix.user_ratings(u) == b.matrix.user_ratings(u));
        assert!(!same);
    }

    #[test]
    fn archetype_users_agree_more_than_cross_archetype() {
        // The taste clustering must be recoverable from the latent utility:
        // same-archetype users should have more correlated utilities.
        let ml = MovieLensConfig::small().generate();
        let users: Vec<UserId> = ml.matrix.users().collect();
        let items: Vec<ItemId> = (0..50).map(ItemId).collect();
        let utility_vec =
            |u: UserId| -> Vec<f64> { items.iter().map(|&i| ml.latent_utility(u, i)).collect() };
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let ma = a.iter().sum::<f64>() / n;
            let mb = b.iter().sum::<f64>() / n;
            let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
            let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
            cov / (va.sqrt() * vb.sqrt()).max(1e-12)
        };
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for (ai, &a) in users.iter().enumerate().take(40) {
            for &b in users.iter().skip(ai + 1).take(40) {
                let c = corr(&utility_vec(a), &utility_vec(b));
                if ml.user_archetype[a.idx()] == ml.user_archetype[b.idx()] {
                    same.push(c);
                } else {
                    cross.push(c);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&same) > mean(&cross) + 0.1,
            "same-archetype corr {} should exceed cross {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn timestamps_within_horizon() {
        let cfg = MovieLensConfig::small();
        let _ml = cfg.generate();
        // Timestamps are internal to the builder; validated via generation
        // not panicking and horizon being positive.
        assert!(cfg.horizon > 0);
    }
}
