//! Error types for dataset construction and validation.

use std::fmt;

/// Errors raised while building or validating dataset substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A configuration parameter is out of its valid range.
    InvalidConfig(String),
    /// A referenced user does not exist in the dataset.
    UnknownUser(u32),
    /// A referenced item does not exist in the dataset.
    UnknownItem(u32),
    /// A group could not be formed under the requested constraints.
    GroupFormation(String),
    /// A time period or timeline is malformed (e.g. end before start).
    InvalidTime(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DatasetError::UnknownUser(u) => write!(f, "unknown user id {u}"),
            DatasetError::UnknownItem(i) => write!(f, "unknown item id {i}"),
            DatasetError::GroupFormation(msg) => write!(f, "group formation failed: {msg}"),
            DatasetError::InvalidTime(msg) => write!(f, "invalid time specification: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            DatasetError::InvalidConfig("x".into()).to_string(),
            "invalid configuration: x"
        );
        assert_eq!(
            DatasetError::UnknownUser(7).to_string(),
            "unknown user id 7"
        );
        assert_eq!(
            DatasetError::UnknownItem(9).to_string(),
            "unknown item id 9"
        );
        assert_eq!(
            DatasetError::GroupFormation("no candidates".into()).to_string(),
            "group formation failed: no candidates"
        );
        assert_eq!(
            DatasetError::InvalidTime("end<start".into()).to_string(),
            "invalid time specification: end<start"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DatasetError::UnknownUser(1));
    }
}
