//! Time model: timestamps, periods and timeline discretization.
//!
//! The paper (§2) treats time as "a set of consecutive timestamps that form
//! periods"; each period `p = [s, f]` is an interval with a starting and an
//! ending timestamp, periods need not have equal lengths, and the experiment
//! section (§4.2.1) discretizes one year of history at five granularities:
//! week, month, two-month, season and half-year.
//!
//! We model timestamps as seconds relative to a simulation epoch, and
//! periods as half-open `[start, end)` intervals, which removes boundary
//! double-counting while preserving the paper's semantics.

use crate::error::DatasetError;
use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since the simulation epoch.
pub type Timestamp = i64;

/// Seconds in one day.
pub const DAY: i64 = 86_400;
/// Seconds in one (non-leap) year; the paper's studies span one year.
pub const YEAR: i64 = 365 * DAY;

/// A half-open time interval `[start, end)`.
///
/// Corresponds to the paper's period `p = [s, f]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Period {
    /// Inclusive start timestamp (`s` in the paper).
    pub start: Timestamp,
    /// Exclusive end timestamp (`f` in the paper).
    pub end: Timestamp,
}

impl Period {
    /// Create a period, validating `start < end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, DatasetError> {
        if start >= end {
            return Err(DatasetError::InvalidTime(format!(
                "period start {start} must precede end {end}"
            )));
        }
        Ok(Period { start, end })
    }

    /// Length of the period in seconds (`f - s`).
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the period has zero length (never true for validated periods).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `ts` falls inside `[start, end)`.
    pub fn contains(&self, ts: Timestamp) -> bool {
        ts >= self.start && ts < self.end
    }

    /// The paper's precedence relation `p_i ⪯ p_j`
    /// (`s_i ≤ s_j` and `f_i ≤ f_j`).
    pub fn precedes(&self, other: &Period) -> bool {
        self.start <= other.start && self.end <= other.end
    }
}

/// Discretization granularities used in §4.2.1 (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// 7-day periods (53 per year).
    Week,
    /// 30-day periods (~12 per year).
    Month,
    /// 60-day periods (~6 per year); the paper's default.
    TwoMonth,
    /// 91-day periods (~4 per year).
    Season,
    /// 182-day periods (~2 per year).
    HalfYear,
    /// Arbitrary period length in seconds.
    Custom(i64),
}

impl Granularity {
    /// Period length in seconds.
    pub fn seconds(&self) -> i64 {
        match self {
            Granularity::Week => 7 * DAY,
            Granularity::Month => 30 * DAY,
            Granularity::TwoMonth => 60 * DAY,
            Granularity::Season => 91 * DAY,
            Granularity::HalfYear => 182 * DAY,
            Granularity::Custom(s) => *s,
        }
    }

    /// Human-readable label matching Figure 4's x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            Granularity::Week => "Week",
            Granularity::Month => "Month",
            Granularity::TwoMonth => "Two-Month",
            Granularity::Season => "Season",
            Granularity::HalfYear => "Half-Year",
            Granularity::Custom(_) => "Custom",
        }
    }

    /// The five named granularities in the order Figure 4 presents them.
    pub fn figure4_sweep() -> [Granularity; 5] {
        [
            Granularity::Week,
            Granularity::Month,
            Granularity::TwoMonth,
            Granularity::Season,
            Granularity::HalfYear,
        ]
    }
}

/// A sequence of consecutive periods starting at the beginning of time `s0`.
///
/// The paper's dynamic-affinity drift (Eq. 1) aggregates over "all time
/// periods included in the interval `[s0, f]`"; `Timeline` is the canonical
/// owner of that period sequence. Periods are consecutive but may have
/// different lengths (§2.1 allows varying lengths).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    origin: Timestamp,
    periods: Vec<Period>,
}

impl Timeline {
    /// Build a timeline from explicit, already-consecutive periods.
    ///
    /// Validates that periods are non-empty, consecutive and start at the
    /// first period's start (which becomes `s0`).
    pub fn from_periods(periods: Vec<Period>) -> Result<Self, DatasetError> {
        if periods.is_empty() {
            return Err(DatasetError::InvalidTime("timeline needs ≥1 period".into()));
        }
        for w in periods.windows(2) {
            if w[0].end != w[1].start {
                return Err(DatasetError::InvalidTime(format!(
                    "periods must be consecutive: [{},{}) then [{},{})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                )));
            }
        }
        for p in &periods {
            if p.is_empty() {
                return Err(DatasetError::InvalidTime("empty period in timeline".into()));
            }
        }
        Ok(Timeline {
            origin: periods[0].start,
            periods,
        })
    }

    /// Discretize `[origin, horizon)` into equal-length periods of the given
    /// granularity; the final period is truncated at `horizon` (periods may
    /// have varying lengths, as §2.1 allows).
    pub fn discretize(
        origin: Timestamp,
        horizon: Timestamp,
        granularity: Granularity,
    ) -> Result<Self, DatasetError> {
        if horizon <= origin {
            return Err(DatasetError::InvalidTime(format!(
                "horizon {horizon} must be after origin {origin}"
            )));
        }
        let step = granularity.seconds();
        if step <= 0 {
            return Err(DatasetError::InvalidTime(
                "granularity must be positive".into(),
            ));
        }
        let mut periods = Vec::with_capacity(((horizon - origin) / step + 1) as usize);
        let mut s = origin;
        while s < horizon {
            let e = (s + step).min(horizon);
            periods.push(Period { start: s, end: e });
            s = e;
        }
        Ok(Timeline { origin, periods })
    }

    /// One year of two-month periods starting at the epoch: the paper's
    /// default discretization (6 periods, §4.2.1).
    pub fn paper_default() -> Self {
        Timeline::discretize(0, YEAR, Granularity::TwoMonth).expect("static parameters are valid")
    }

    /// The beginning of time `s0`.
    pub fn origin(&self) -> Timestamp {
        self.origin
    }

    /// End of the last period.
    pub fn horizon(&self) -> Timestamp {
        self.periods.last().expect("timeline is non-empty").end
    }

    /// All periods in chronological order.
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// Number of periods.
    pub fn num_periods(&self) -> usize {
        self.periods.len()
    }

    /// The period with the given index.
    pub fn period(&self, idx: usize) -> Option<Period> {
        self.periods.get(idx).copied()
    }

    /// Index of the period containing `ts`, if any.
    pub fn period_index(&self, ts: Timestamp) -> Option<usize> {
        if ts < self.origin || ts >= self.horizon() {
            return None;
        }
        // Binary search over period starts.
        let idx = match self.periods.binary_search_by(|p| p.start.cmp(&ts)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        debug_assert!(self.periods[idx].contains(ts));
        Some(idx)
    }

    /// Periods `p'` with `p' ⪯ p_idx`, i.e. indices `0..=idx` — the
    /// aggregation range of Eq. 1 for the period at `idx`.
    pub fn periods_up_to(&self, idx: usize) -> &[Period] {
        &self.periods[..=idx.min(self.periods.len() - 1)]
    }

    /// Wall-clock length `f − s0` between the beginning of time and the end
    /// of the period at `idx` (the continuous model's Δ).
    pub fn elapsed_until_end_of(&self, idx: usize) -> i64 {
        self.periods[idx.min(self.periods.len() - 1)].end - self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_validation() {
        assert!(Period::new(0, 10).is_ok());
        assert!(Period::new(10, 10).is_err());
        assert!(Period::new(11, 10).is_err());
    }

    #[test]
    fn period_contains_half_open() {
        let p = Period::new(5, 10).unwrap();
        assert!(p.contains(5));
        assert!(p.contains(9));
        assert!(!p.contains(10));
        assert!(!p.contains(4));
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn precedes_matches_paper_definition() {
        let p1 = Period::new(0, 5).unwrap();
        let p2 = Period::new(5, 10).unwrap();
        assert!(p1.precedes(&p2));
        assert!(!p2.precedes(&p1));
        // A period precedes itself (s_i ≤ s_j and f_i ≤ f_j hold).
        assert!(p1.precedes(&p1));
    }

    #[test]
    fn figure4_period_counts_over_one_year() {
        // Figure 4 reports 53 / 12 / 6 / 4 / 2 periods for the five
        // granularities over the one-year study window.
        let expect = [53usize, 13, 7, 5, 3];
        // Note: the paper reports floor-style counts (12 months, 6
        // two-month); with truncation of the trailing partial period we get
        // one extra stub for non-dividing granularities. Assert both the
        // full-period counts and the total coverage.
        for (g, &want_with_stub) in Granularity::figure4_sweep().iter().zip(expect.iter()) {
            let tl = Timeline::discretize(0, YEAR, *g).unwrap();
            let full = tl
                .periods()
                .iter()
                .filter(|p| p.len() == g.seconds())
                .count();
            let want_full = (YEAR / g.seconds()) as usize;
            assert_eq!(full, want_full, "{} full periods", g.label());
            assert!(tl.num_periods() == want_with_stub || tl.num_periods() == want_with_stub - 1);
            assert_eq!(tl.horizon(), YEAR);
        }
    }

    #[test]
    fn paper_default_is_six_or_seven_two_month_periods() {
        let tl = Timeline::paper_default();
        // 365 days / 60 days = 6 full periods + a 5-day stub.
        assert_eq!(tl.num_periods(), 7);
        assert_eq!(tl.periods()[0].len(), 60 * DAY);
        assert_eq!(tl.origin(), 0);
    }

    #[test]
    fn period_index_finds_the_right_period() {
        let tl = Timeline::discretize(0, 100, Granularity::Custom(30)).unwrap();
        assert_eq!(tl.num_periods(), 4); // 30,30,30,10
        assert_eq!(tl.period_index(0), Some(0));
        assert_eq!(tl.period_index(29), Some(0));
        assert_eq!(tl.period_index(30), Some(1));
        assert_eq!(tl.period_index(99), Some(3));
        assert_eq!(tl.period_index(100), None);
        assert_eq!(tl.period_index(-1), None);
    }

    #[test]
    fn from_periods_requires_consecutive() {
        let ok = Timeline::from_periods(vec![
            Period::new(0, 10).unwrap(),
            Period::new(10, 15).unwrap(),
        ]);
        assert!(ok.is_ok());
        let gap = Timeline::from_periods(vec![
            Period::new(0, 10).unwrap(),
            Period::new(11, 15).unwrap(),
        ]);
        assert!(gap.is_err());
        assert!(Timeline::from_periods(vec![]).is_err());
    }

    #[test]
    fn varying_length_periods_supported() {
        let tl = Timeline::from_periods(vec![
            Period::new(0, 10).unwrap(),
            Period::new(10, 100).unwrap(),
            Period::new(100, 101).unwrap(),
        ])
        .unwrap();
        assert_eq!(tl.num_periods(), 3);
        assert_eq!(tl.elapsed_until_end_of(1), 100);
        assert_eq!(tl.periods_up_to(1).len(), 2);
        assert_eq!(tl.periods_up_to(99).len(), 3);
    }

    #[test]
    fn discretize_rejects_bad_inputs() {
        assert!(Timeline::discretize(10, 10, Granularity::Week).is_err());
        assert!(Timeline::discretize(0, 100, Granularity::Custom(0)).is_err());
        assert!(Timeline::discretize(0, 100, Granularity::Custom(-5)).is_err());
    }
}
