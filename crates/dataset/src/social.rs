//! Social-network substrate: friendship graph and timestamped page-likes.
//!
//! Stands in for the paper's Facebook crawl (§4.1.1–§4.1.2):
//!
//! * **recruitment structure** — 13 seed users, each inviting 10–20
//!   friends (depth 1 of the social graph), 72 users overall;
//! * **static affinity source** — friendship lists:
//!   `affS(u,u') = |friends(u) ∩ friends(u')|`, normalized per group;
//! * **dynamic affinity source** — page-likes with timestamps over 197
//!   page categories:
//!   `affP(u,u',p) = |page_likes(u,p) ∩ page_likes(u',p)|` where
//!   `page_likes(u,p)` is the set of *categories* liked in period `p`;
//! * calibration targets: with two-month periods ≈65% of (pair, period)
//!   cells are non-empty (Figure 4) and the std-dev of per-pair common
//!   likes across the 6 periods is ≈0.42 (§4.1.2).
//!
//! The simulator gives each seed cluster a community interest profile and
//! each user an individual drift trajectory, so some user pairs converge
//! and others diverge over the year — exactly the positive/negative drift
//! Eq. 1 is designed to capture.

use crate::randx::{self, CumTable};
use crate::ratings::UserId;
use crate::time::{Period, Timestamp, YEAR};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One page-like event: `user` liked a page of `category` at time `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikeEvent {
    /// The liking user.
    pub user: UserId,
    /// Facebook page category (0..`num_categories`); the paper records the
    /// category, not the page, for privacy.
    pub category: u16,
    /// When the like happened.
    pub ts: Timestamp,
}

/// Configuration for the social simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialConfig {
    /// Number of seed users (paper: 13).
    pub num_seeds: usize,
    /// Inclusive range of friends recruited per seed (paper: 10–20).
    pub friends_per_seed: (usize, usize),
    /// Number of page categories (paper: 197).
    pub num_categories: usize,
    /// Probability that two seeds are friends.
    pub seed_edge_prob: f64,
    /// Probability that two friends of the same seed are friends
    /// (triadic closure within a cluster).
    pub closure_prob: f64,
    /// Probability of a random cross-cluster friendship.
    pub cross_edge_prob: f64,
    /// Mean page-likes per user per year.
    pub likes_per_user_year: f64,
    /// Number of categories in a community's interest profile.
    pub community_interest_size: usize,
    /// Fraction of users whose interests drift toward another community
    /// over the year (creates diverging/converging pairs).
    pub drifter_fraction: f64,
    /// Observation horizon (paper: one year).
    pub horizon: Timestamp,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// The paper's study scale: 13 seeds × (10–20) friends ≈ 72+ users.
    pub fn paper_scale() -> Self {
        SocialConfig {
            num_seeds: 13,
            friends_per_seed: (4, 6),
            num_categories: 197,
            seed_edge_prob: 0.45,
            closure_prob: 0.35,
            cross_edge_prob: 0.02,
            likes_per_user_year: 90.0,
            community_interest_size: 14,
            drifter_fraction: 0.5,
            horizon: YEAR,
            seed: 0xface_b00c,
        }
    }

    /// A tiny world for unit tests.
    pub fn tiny() -> Self {
        SocialConfig {
            num_seeds: 3,
            friends_per_seed: (2, 3),
            num_categories: 20,
            likes_per_user_year: 40.0,
            community_interest_size: 5,
            ..SocialConfig::paper_scale()
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale the number of seed clusters (for larger perf worlds).
    pub fn with_seeds(mut self, num_seeds: usize) -> Self {
        self.num_seeds = num_seeds;
        self
    }

    /// Generate the network.
    pub fn generate(&self) -> SocialNetwork {
        generate(self)
    }
}

/// The generated social world.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    num_users: usize,
    num_categories: usize,
    horizon: Timestamp,
    /// Adjacency lists, sorted, symmetric, no self-loops.
    adjacency: Vec<Vec<UserId>>,
    /// Per-user like events sorted by timestamp.
    likes_by_user: Vec<Vec<(Timestamp, u16)>>,
    /// Which seed cluster each user belongs to (seeds belong to their own).
    cluster_of: Vec<usize>,
}

impl SocialNetwork {
    /// Number of users in the network.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of page categories.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Observation horizon.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// All user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_users as u32).map(UserId)
    }

    /// Friends of `u`, sorted by id.
    pub fn friends(&self, u: UserId) -> &[UserId] {
        &self.adjacency[u.idx()]
    }

    /// Whether `u` and `v` are friends.
    pub fn are_friends(&self, u: UserId, v: UserId) -> bool {
        self.adjacency[u.idx()].binary_search(&v).is_ok()
    }

    /// `|friends(u) ∩ friends(v)|` — the paper's raw static affinity.
    pub fn common_friends(&self, u: UserId, v: UserId) -> usize {
        sorted_intersection_len(&self.adjacency[u.idx()], &self.adjacency[v.idx()])
    }

    /// Seed-cluster index of a user.
    pub fn cluster_of(&self, u: UserId) -> usize {
        self.cluster_of[u.idx()]
    }

    /// All like events of `u`, sorted by time.
    pub fn likes_of(&self, u: UserId) -> &[(Timestamp, u16)] {
        &self.likes_by_user[u.idx()]
    }

    /// Total number of like events.
    pub fn num_likes(&self) -> usize {
        self.likes_by_user.iter().map(Vec::len).sum()
    }

    /// Distinct categories liked by `u` during `period`, sorted.
    ///
    /// This is the paper's `page_likes(u, p)` (§4.1.2): the *set of page
    /// categories* whose pages `u` liked in period `p`.
    pub fn categories_liked_in(&self, u: UserId, period: Period) -> Vec<u16> {
        let likes = &self.likes_by_user[u.idx()];
        let lo = likes.partition_point(|&(ts, _)| ts < period.start);
        let hi = likes.partition_point(|&(ts, _)| ts < period.end);
        let mut cats: Vec<u16> = likes[lo..hi].iter().map(|&(_, c)| c).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// `|page_likes(u,p) ∩ page_likes(v,p)|` — the paper's periodic
    /// affinity `affP(u, v, p)` before normalization.
    pub fn common_category_likes(&self, u: UserId, v: UserId, period: Period) -> usize {
        let a = self.categories_liked_in(u, period);
        let b = self.categories_liked_in(v, period);
        sorted_intersection_len(&a, &b)
    }
}

fn sorted_intersection_len<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn generate(cfg: &SocialConfig) -> SocialNetwork {
    assert!(cfg.num_seeds > 0, "need at least one seed");
    assert!(
        cfg.friends_per_seed.0 <= cfg.friends_per_seed.1 && cfg.friends_per_seed.0 > 0,
        "invalid friends-per-seed range"
    );
    assert!(cfg.num_categories > 0 && cfg.horizon > 0, "invalid world");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Recruitment structure -------------------------------------------
    // Users 0..num_seeds are seeds; each seed then brings its friends.
    let mut cluster_of = Vec::new();
    let mut members_of: Vec<Vec<usize>> = Vec::with_capacity(cfg.num_seeds);
    for s in 0..cfg.num_seeds {
        cluster_of.push(s);
        members_of.push(vec![s]);
    }
    for (s, members) in members_of.iter_mut().enumerate() {
        let n_friends = rng.random_range(cfg.friends_per_seed.0..=cfg.friends_per_seed.1);
        for _ in 0..n_friends {
            let uid = cluster_of.len();
            cluster_of.push(s);
            members.push(uid);
        }
    }
    let num_users = cluster_of.len();

    // --- Friendship edges ---------------------------------------------------
    let mut adj: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); num_users];
    let add_edge = |adj: &mut Vec<std::collections::BTreeSet<u32>>, a: usize, b: usize| {
        if a != b {
            adj[a].insert(b as u32);
            adj[b].insert(a as u32);
        }
    };
    // Seeds befriend each other with some probability.
    for a in 0..cfg.num_seeds {
        for b in (a + 1)..cfg.num_seeds {
            if rng.random::<f64>() < cfg.seed_edge_prob {
                add_edge(&mut adj, a, b);
            }
        }
    }
    // Each friend is connected to its seed; same-cluster closure.
    for (s, members) in members_of.iter().enumerate() {
        for &m in &members[1..] {
            add_edge(&mut adj, s, m);
        }
        for (ai, &a) in members.iter().enumerate() {
            for &b in members.iter().skip(ai + 1) {
                if rng.random::<f64>() < cfg.closure_prob {
                    add_edge(&mut adj, a, b);
                }
            }
        }
    }
    // Sparse random cross-cluster friendships.
    for a in 0..num_users {
        for b in (a + 1)..num_users {
            if cluster_of[a] != cluster_of[b] && rng.random::<f64>() < cfg.cross_edge_prob {
                add_edge(&mut adj, a, b);
            }
        }
    }
    let adjacency: Vec<Vec<UserId>> = adj
        .into_iter()
        .map(|s| s.into_iter().map(UserId).collect())
        .collect();

    // --- Interest profiles --------------------------------------------------
    // Each cluster gets a sparse community interest profile; users mix the
    // community profile with personal interests. Drifters interpolate
    // toward a different cluster's profile over the year.
    let uniform = CumTable::new(&vec![1.0; cfg.num_categories]);
    let mut community_profiles: Vec<Vec<f64>> = Vec::with_capacity(cfg.num_seeds);
    for _ in 0..cfg.num_seeds {
        let mut w = vec![0.02; cfg.num_categories];
        let hot = randx::sample_distinct(
            &mut rng,
            &uniform,
            cfg.community_interest_size.min(cfg.num_categories),
        );
        for h in hot {
            w[h] += 1.0 + rng.random::<f64>();
        }
        community_profiles.push(w);
    }

    struct UserInterest {
        start: Vec<f64>,
        target: Vec<f64>,
    }
    let mut interests = Vec::with_capacity(num_users);
    for &c in cluster_of.iter().take(num_users) {
        let personal = randx::sample_distinct(&mut rng, &uniform, 4);
        let mut start = community_profiles[c].clone();
        for p in &personal {
            start[*p] += 0.8 + 0.4 * rng.random::<f64>();
        }
        let target = if rng.random::<f64>() < cfg.drifter_fraction && cfg.num_seeds > 1 {
            // Drift toward a different community's interests.
            let mut other = rng.random_range(0..cfg.num_seeds);
            if other == c {
                other = (other + 1) % cfg.num_seeds;
            }
            let mut t = community_profiles[other].clone();
            for p in &personal {
                t[*p] += 0.4;
            }
            t
        } else {
            start.clone()
        };
        interests.push(UserInterest { start, target });
    }

    // --- Like events ---------------------------------------------------------
    let mut likes_by_user: Vec<Vec<(Timestamp, u16)>> = vec![Vec::new(); num_users];
    for u in 0..num_users {
        // Per-user yearly activity, log-normal around the configured mean.
        let rate = cfg.likes_per_user_year * randx::log_normal(&mut rng, -0.15, 0.55);
        let n_events = rate.round().max(1.0) as usize;
        let ui = &interests[u];
        for _ in 0..n_events {
            let ts: Timestamp = rng.random_range(0..cfg.horizon);
            let frac = ts as f64 / cfg.horizon as f64;
            // Linear interpolation between start and target interests.
            let weights: Vec<f64> = ui
                .start
                .iter()
                .zip(&ui.target)
                .map(|(&s, &t)| s * (1.0 - frac) + t * frac)
                .collect();
            let table = CumTable::new(&weights);
            let cat = table.sample(&mut rng) as u16;
            likes_by_user[u].push((ts, cat));
        }
        likes_by_user[u].sort_unstable();
    }

    SocialNetwork {
        num_users,
        num_categories: cfg.num_categories,
        horizon: cfg.horizon,
        adjacency,
        likes_by_user,
        cluster_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Granularity, Timeline};

    #[test]
    fn paper_scale_has_expected_population() {
        let net = SocialConfig::paper_scale().generate();
        // 13 seeds + 13×(4..=6) friends: 65..=91 users.
        assert!(
            net.num_users() >= 65 && net.num_users() <= 91,
            "{}",
            net.num_users()
        );
        assert_eq!(net.num_categories(), 197);
    }

    #[test]
    fn friendship_is_symmetric_and_loop_free() {
        let net = SocialConfig::paper_scale().generate();
        for u in net.users() {
            assert!(!net.are_friends(u, u));
            for &v in net.friends(u) {
                assert!(net.are_friends(v, u), "{u} ~ {v} must be symmetric");
            }
        }
    }

    #[test]
    fn seeds_connect_to_their_recruits() {
        let cfg = SocialConfig::paper_scale();
        let net = cfg.generate();
        for u in net.users().skip(cfg.num_seeds) {
            let s = net.cluster_of(u);
            assert!(net.are_friends(u, UserId(s as u32)));
        }
    }

    #[test]
    fn common_friends_is_symmetric() {
        let net = SocialConfig::tiny().generate();
        for u in net.users() {
            for v in net.users() {
                assert_eq!(net.common_friends(u, v), net.common_friends(v, u));
            }
        }
    }

    #[test]
    fn same_cluster_pairs_share_more_friends() {
        let net = SocialConfig::paper_scale().generate();
        let users: Vec<UserId> = net.users().collect();
        let (mut same, mut same_n, mut cross, mut cross_n) = (0usize, 0usize, 0usize, 0usize);
        for (i, &a) in users.iter().enumerate() {
            for &b in &users[i + 1..] {
                let cf = net.common_friends(a, b);
                if net.cluster_of(a) == net.cluster_of(b) {
                    same += cf;
                    same_n += 1;
                } else {
                    cross += cf;
                    cross_n += 1;
                }
            }
        }
        let same_avg = same as f64 / same_n as f64;
        let cross_avg = cross as f64 / cross_n as f64;
        assert!(
            same_avg > 2.0 * cross_avg,
            "same-cluster common friends {same_avg} vs cross {cross_avg}"
        );
    }

    #[test]
    fn likes_sorted_and_within_horizon() {
        let net = SocialConfig::paper_scale().generate();
        for u in net.users() {
            let likes = net.likes_of(u);
            assert!(!likes.is_empty(), "everyone likes something");
            for w in likes.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
            for &(ts, cat) in likes {
                assert!(ts >= 0 && ts < net.horizon());
                assert!((cat as usize) < net.num_categories());
            }
        }
    }

    #[test]
    fn category_sets_per_period_are_sorted_unique() {
        let net = SocialConfig::tiny().generate();
        let tl = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
        for u in net.users() {
            for &p in tl.periods() {
                let cats = net.categories_liked_in(u, p);
                for w in cats.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }

    #[test]
    fn periodic_affinity_symmetric() {
        let net = SocialConfig::tiny().generate();
        let tl = Timeline::discretize(0, net.horizon(), Granularity::Season).unwrap();
        let p = tl.periods()[0];
        for u in net.users() {
            for v in net.users() {
                assert_eq!(
                    net.common_category_likes(u, v, p),
                    net.common_category_likes(v, u, p)
                );
            }
        }
    }

    #[test]
    fn two_month_nonemptiness_is_calibrated() {
        // Figure 4: with two-month periods ~65% of cells are non-empty.
        // "Non-empty" for a pair-period = the pair shares ≥1 common liked
        // category in the period. We check the population-level figure is
        // in a sane band (the paper reports 67.4%).
        let net = SocialConfig::paper_scale().generate();
        let tl = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
        let users: Vec<UserId> = net.users().collect();
        let mut non_empty = 0usize;
        let mut total = 0usize;
        for &p in tl.periods().iter().take(6) {
            for (i, &a) in users.iter().enumerate() {
                for &b in &users[i + 1..] {
                    total += 1;
                    if net.common_category_likes(a, b, p) > 0 {
                        non_empty += 1;
                    }
                }
            }
        }
        let frac = non_empty as f64 / total as f64;
        assert!(
            (0.40..=0.90).contains(&frac),
            "two-month non-emptiness {frac} outside calibration band"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SocialConfig::tiny().generate();
        let b = SocialConfig::tiny().generate();
        assert_eq!(a.num_users(), b.num_users());
        for u in a.users() {
            assert_eq!(a.likes_of(u), b.likes_of(u));
            assert_eq!(a.friends(u), b.friends(u));
        }
    }

    #[test]
    fn with_seeds_scales_population() {
        let net = SocialConfig::tiny().with_seeds(6).generate();
        assert!(net.num_users() > SocialConfig::tiny().generate().num_users());
    }
}
