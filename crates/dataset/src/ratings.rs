//! Users, items, ratings and the rating matrix.
//!
//! The paper's data model (§2): a set of `m` items `I`, a set of `n` users
//! `U`, and a collaborative rating dataset over them (MovieLens-style 1–5
//! star ratings). `RatingMatrix` stores the ratings sparsely, indexed both
//! by user and by item, which is what the collaborative-filtering substrate
//! (crate `greca-cf`) needs for cosine similarity and prediction.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a user `u ∈ U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of an item `i ∈ I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl UserId {
    /// Index into user-indexed arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// Index into item-indexed arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One observed rating event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// The rating user.
    pub user: UserId,
    /// The rated item.
    pub item: ItemId,
    /// Rating value; MovieLens uses integer stars in `1..=5`.
    pub value: f32,
    /// When the rating was given.
    pub ts: Timestamp,
}

/// Sparse user–item rating matrix with both user-major and item-major views.
///
/// Rows (per-user vectors) are sorted by item id, columns (per-item vectors)
/// by user id, enabling `O(log nnz_row)` lookups and linear-time sparse dot
/// products for cosine similarity.
///
/// Rows and columns live behind `Arc`s, so cloning a matrix — and, more
/// importantly, deriving the next live-serving epoch via
/// [`RatingMatrix::apply_deltas`] — copies pointers and rewrites only the
/// touched rows/columns (copy-on-write), never the whole rating log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatingMatrix {
    num_users: usize,
    num_items: usize,
    by_user: Vec<Arc<Vec<(ItemId, f32)>>>,
    by_item: Vec<Arc<Vec<(UserId, f32)>>>,
    num_ratings: usize,
}

impl RatingMatrix {
    /// Number of users `n = |U|`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items `m = |I|`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of stored ratings.
    pub fn num_ratings(&self) -> usize {
        self.num_ratings
    }

    /// Fraction of the user×item grid that is filled.
    pub fn density(&self) -> f64 {
        if self.num_users == 0 || self.num_items == 0 {
            return 0.0;
        }
        self.num_ratings as f64 / (self.num_users as f64 * self.num_items as f64)
    }

    /// The ratings of `user`, sorted by item id.
    pub fn user_ratings(&self, user: UserId) -> &[(ItemId, f32)] {
        &self.by_user[user.idx()]
    }

    /// The ratings of `item`, sorted by user id.
    pub fn item_ratings(&self, item: ItemId) -> &[(UserId, f32)] {
        &self.by_item[item.idx()]
    }

    /// Rating of `user` for `item`, if present.
    pub fn get(&self, user: UserId, item: ItemId) -> Option<f32> {
        let row = &self.by_user[user.idx()];
        row.binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|pos| row[pos].1)
    }

    /// Whether `user` has rated `item`.
    pub fn has_rated(&self, user: UserId, item: ItemId) -> bool {
        self.get(user, item).is_some()
    }

    /// Mean rating of `user`, or `None` if the user rated nothing.
    pub fn user_mean(&self, user: UserId) -> Option<f64> {
        let row = &self.by_user[user.idx()];
        if row.is_empty() {
            return None;
        }
        Some(row.iter().map(|&(_, v)| v as f64).sum::<f64>() / row.len() as f64)
    }

    /// Mean of all ratings, or `None` for an empty matrix.
    pub fn global_mean(&self) -> Option<f64> {
        if self.num_ratings == 0 {
            return None;
        }
        let sum: f64 = self
            .by_user
            .iter()
            .flat_map(|row| row.iter().map(|&(_, v)| v as f64))
            .sum();
        Some(sum / self.num_ratings as f64)
    }

    /// Number of users who rated `item` (its popularity).
    pub fn item_popularity(&self, item: ItemId) -> usize {
        self.by_item[item.idx()].len()
    }

    /// Variance of the ratings of `item`, or `None` if unrated.
    pub fn item_rating_variance(&self, item: ItemId) -> Option<f64> {
        let col = &self.by_item[item.idx()];
        if col.is_empty() {
            return None;
        }
        let mean = col.iter().map(|&(_, v)| v as f64).sum::<f64>() / col.len() as f64;
        Some(
            col.iter()
                .map(|&(_, v)| (v as f64 - mean).powi(2))
                .sum::<f64>()
                / col.len() as f64,
        )
    }

    /// Iterate over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_users as u32).map(UserId)
    }

    /// Iterate over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.num_items as u32).map(ItemId)
    }

    /// Items ranked by descending popularity (ties broken by item id); used
    /// by the user study's "popular set" selection (§4.1.1).
    pub fn items_by_popularity(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self.items().collect();
        items.sort_by_key(|&i| (std::cmp::Reverse(self.item_popularity(i)), i));
        items
    }

    /// A copy of this matrix with a delta batch applied: `retractions`
    /// remove their `(user, item)` rating if present, `upserts` insert or
    /// overwrite theirs. Dimensions grow to admit ids beyond the current
    /// grid; retractions of absent pairs (or out-of-range ids) are no-ops.
    ///
    /// Retractions apply before upserts, so a key staged in both lists
    /// ends up with the upserted value (the keep-latest contract of
    /// `greca-cf`'s `RatingStore` never stages a key in both). Cost is
    /// `O(nnz)` for the structural copy plus `O(log row/col)` per delta —
    /// the epoch-construction step of the live-ingestion path, paid per
    /// *published batch*, never per query.
    pub fn apply_deltas(&self, upserts: &[Rating], retractions: &[(UserId, ItemId)]) -> Self {
        let num_users = upserts
            .iter()
            .map(|r| r.user.idx() + 1)
            .max()
            .unwrap_or(0)
            .max(self.num_users);
        let num_items = upserts
            .iter()
            .map(|r| r.item.idx() + 1)
            .max()
            .unwrap_or(0)
            .max(self.num_items);
        // `Arc` pointer copies; `Arc::make_mut` below rewrites only the
        // rows/columns the batch touches (the previous epoch keeps the
        // originals).
        let mut by_user = self.by_user.clone();
        by_user.resize(num_users, Arc::new(Vec::new()));
        let mut by_item = self.by_item.clone();
        by_item.resize(num_items, Arc::new(Vec::new()));
        let mut num_ratings = self.num_ratings;

        for &(user, item) in retractions {
            let Some(row) = by_user.get_mut(user.idx()) else {
                continue;
            };
            if let Ok(pos) = row.binary_search_by_key(&item, |&(i, _)| i) {
                Arc::make_mut(row).remove(pos);
                let col = &mut by_item[item.idx()];
                let cpos = col
                    .binary_search_by_key(&user, |&(u, _)| u)
                    .expect("row and column views agree");
                Arc::make_mut(col).remove(cpos);
                num_ratings -= 1;
            }
        }
        for r in upserts {
            debug_assert!(r.value.is_finite(), "rating values must be finite");
            let row = Arc::make_mut(&mut by_user[r.user.idx()]);
            match row.binary_search_by_key(&r.item, |&(i, _)| i) {
                Ok(pos) => row[pos].1 = r.value,
                Err(pos) => {
                    row.insert(pos, (r.item, r.value));
                    num_ratings += 1;
                }
            }
            let col = Arc::make_mut(&mut by_item[r.item.idx()]);
            match col.binary_search_by_key(&r.user, |&(u, _)| u) {
                Ok(pos) => col[pos].1 = r.value,
                Err(pos) => col.insert(pos, (r.user, r.value)),
            }
        }
        RatingMatrix {
            num_users,
            num_items,
            by_user,
            by_item,
            num_ratings,
        }
    }

    /// A copy with the grid padded to at least `num_users × num_items`
    /// (no rating changes). The live-ingestion layer uses this so a
    /// population universe wider than the seed rating log indexes safely.
    pub fn padded_to(&self, num_users: usize, num_items: usize) -> Self {
        let mut out = self.clone();
        if num_users > out.num_users {
            out.by_user.resize(num_users, Arc::new(Vec::new()));
            out.num_users = num_users;
        }
        if num_items > out.num_items {
            out.by_item.resize(num_items, Arc::new(Vec::new()));
            out.num_items = num_items;
        }
        out
    }

    /// Whether `user`'s rating row is the *same allocation* in both
    /// matrices — observability for the copy-on-write contract of
    /// [`RatingMatrix::apply_deltas`].
    pub fn shares_user_row_with(&self, other: &RatingMatrix, user: UserId) -> bool {
        match (self.by_user.get(user.idx()), other.by_user.get(user.idx())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Incremental builder for [`RatingMatrix`].
///
/// Duplicate (user, item) pairs keep the **latest** value by insertion
/// order, matching how a ratings log would be replayed.
#[derive(Debug, Clone)]
pub struct RatingMatrixBuilder {
    num_users: usize,
    num_items: usize,
    ratings: Vec<Rating>,
}

impl RatingMatrixBuilder {
    /// Start a builder for an `num_users × num_items` matrix.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        RatingMatrixBuilder {
            num_users,
            num_items,
            ratings: Vec::new(),
        }
    }

    /// Append one rating. Panics in debug builds on out-of-range ids.
    pub fn push(&mut self, rating: Rating) -> &mut Self {
        debug_assert!(rating.user.idx() < self.num_users, "user out of range");
        debug_assert!(rating.item.idx() < self.num_items, "item out of range");
        self.ratings.push(rating);
        self
    }

    /// Append a rating from parts.
    pub fn rate(&mut self, user: UserId, item: ItemId, value: f32, ts: Timestamp) -> &mut Self {
        self.push(Rating {
            user,
            item,
            value,
            ts,
        })
    }

    /// Number of ratings pushed so far (before dedup).
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether no ratings were pushed.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Finalize into a [`RatingMatrix`].
    pub fn build(self) -> RatingMatrix {
        let mut by_user: Vec<Vec<(ItemId, f32)>> = vec![Vec::new(); self.num_users];
        // Replay in order so later duplicates overwrite earlier ones.
        let mut slot: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for r in &self.ratings {
            let key = (r.user.0, r.item.0);
            match slot.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    by_user[r.user.idx()][*e.get()].1 = r.value;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let row = &mut by_user[r.user.idx()];
                    e.insert(row.len());
                    row.push((r.item, r.value));
                }
            }
        }
        let mut num_ratings = 0;
        for row in &mut by_user {
            row.sort_by_key(|&(i, _)| i);
            num_ratings += row.len();
        }
        let mut by_item: Vec<Vec<(UserId, f32)>> = vec![Vec::new(); self.num_items];
        for (u, row) in by_user.iter().enumerate() {
            for &(item, v) in row {
                by_item[item.idx()].push((UserId(u as u32), v));
            }
        }
        // by_item is already sorted by user id because we iterate users in order.
        RatingMatrix {
            num_users: self.num_users,
            num_items: self.num_items,
            by_user: by_user.into_iter().map(Arc::new).collect(),
            by_item: by_item.into_iter().map(Arc::new).collect(),
            num_ratings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 1)
            .rate(UserId(1), ItemId(0), 4.0, 2)
            .rate(UserId(2), ItemId(3), 1.0, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let m = tiny();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_ratings(), 4);
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_and_means() {
        let m = tiny();
        assert_eq!(m.get(UserId(0), ItemId(0)), Some(5.0));
        assert_eq!(m.get(UserId(0), ItemId(1)), None);
        assert!(m.has_rated(UserId(2), ItemId(3)));
        assert_eq!(m.user_mean(UserId(0)), Some(4.0));
        let gm = m.global_mean().unwrap();
        assert!((gm - 13.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_mean_is_none() {
        let m = RatingMatrixBuilder::new(2, 2).build();
        assert_eq!(m.user_mean(UserId(0)), None);
        assert_eq!(m.global_mean(), None);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn duplicates_keep_latest() {
        let mut b = RatingMatrixBuilder::new(1, 1);
        b.rate(UserId(0), ItemId(0), 2.0, 0)
            .rate(UserId(0), ItemId(0), 5.0, 1);
        let m = b.build();
        assert_eq!(m.num_ratings(), 1);
        assert_eq!(m.get(UserId(0), ItemId(0)), Some(5.0));
    }

    #[test]
    fn item_views_are_consistent() {
        let m = tiny();
        assert_eq!(m.item_popularity(ItemId(0)), 2);
        assert_eq!(
            m.item_ratings(ItemId(0)),
            &[(UserId(0), 5.0), (UserId(1), 4.0)]
        );
        let var = m.item_rating_variance(ItemId(0)).unwrap();
        assert!((var - 0.25).abs() < 1e-12);
        assert_eq!(m.item_rating_variance(ItemId(1)), None);
    }

    #[test]
    fn popularity_ranking() {
        let m = tiny();
        let ranked = m.items_by_popularity();
        assert_eq!(ranked[0], ItemId(0)); // two raters
                                          // Remaining have ≤1 rater; i2 and i3 have one each, i1 zero.
        assert_eq!(*ranked.last().unwrap(), ItemId(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(9).to_string(), "i9");
    }

    #[test]
    fn apply_deltas_upserts_overwrites_and_retracts() {
        let m = tiny();
        let upserts = [
            Rating {
                user: UserId(1),
                item: ItemId(2),
                value: 2.5,
                ts: 9,
            },
            Rating {
                user: UserId(0),
                item: ItemId(0),
                value: 1.0,
                ts: 10,
            },
        ];
        let retractions = [(UserId(2), ItemId(3)), (UserId(1), ItemId(3))];
        let next = m.apply_deltas(&upserts, &retractions);
        // Insert, overwrite, retract-present, retract-absent.
        assert_eq!(next.get(UserId(1), ItemId(2)), Some(2.5));
        assert_eq!(next.get(UserId(0), ItemId(0)), Some(1.0));
        assert_eq!(next.get(UserId(2), ItemId(3)), None);
        assert_eq!(next.num_ratings(), 4);
        // Both views stay aligned and sorted.
        assert_eq!(
            next.item_ratings(ItemId(2)),
            &[(UserId(0), 3.0), (UserId(1), 2.5)]
        );
        assert_eq!(next.user_ratings(UserId(2)), &[]);
        // The original is untouched (epochs are snapshots).
        assert_eq!(m.get(UserId(0), ItemId(0)), Some(5.0));
        assert_eq!(m.num_ratings(), 4);
        // A full rebuild from the equivalent log agrees.
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 1.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 1)
            .rate(UserId(1), ItemId(0), 4.0, 2)
            .rate(UserId(1), ItemId(2), 2.5, 9);
        let rebuilt = b.build();
        for u in rebuilt.users() {
            assert_eq!(next.user_ratings(u), rebuilt.user_ratings(u));
        }
    }

    #[test]
    fn apply_deltas_grows_dimensions() {
        let m = tiny();
        let next = m.apply_deltas(
            &[Rating {
                user: UserId(5),
                item: ItemId(7),
                value: 4.0,
                ts: 0,
            }],
            &[(UserId(9), ItemId(9))],
        );
        assert_eq!(next.num_users(), 6);
        assert_eq!(next.num_items(), 8);
        assert_eq!(next.get(UserId(5), ItemId(7)), Some(4.0));
        assert_eq!(next.num_ratings(), 5);
    }

    #[test]
    fn apply_deltas_is_copy_on_write() {
        let m = tiny();
        let next = m.apply_deltas(
            &[Rating {
                user: UserId(1),
                item: ItemId(2),
                value: 2.5,
                ts: 9,
            }],
            &[],
        );
        // Untouched rows alias the same allocations; the touched row is
        // a fresh copy (epoch derivation costs O(touched), not O(nnz)).
        assert!(m.shares_user_row_with(&next, UserId(0)));
        assert!(m.shares_user_row_with(&next, UserId(2)));
        assert!(!m.shares_user_row_with(&next, UserId(1)));
    }

    #[test]
    fn padded_matrix_keeps_ratings() {
        let m = tiny();
        let p = m.padded_to(10, 2);
        assert_eq!(p.num_users(), 10);
        assert_eq!(p.num_items(), 4, "padding never shrinks");
        assert_eq!(p.num_ratings(), m.num_ratings());
        assert_eq!(p.user_ratings(UserId(9)), &[]);
    }

    #[test]
    fn rows_sorted_by_item() {
        let mut b = RatingMatrixBuilder::new(1, 5);
        b.rate(UserId(0), ItemId(4), 1.0, 0)
            .rate(UserId(0), ItemId(1), 2.0, 0)
            .rate(UserId(0), ItemId(3), 3.0, 0);
        let m = b.build();
        let items: Vec<u32> = m
            .user_ratings(UserId(0))
            .iter()
            .map(|&(i, _)| i.0)
            .collect();
        assert_eq!(items, vec![1, 3, 4]);
    }
}
