//! Ad-hoc group formation (§4.1.3).
//!
//! The paper forms evaluation groups along three axes:
//!
//! * **size** — 3 ("small") and 6 ("large"), plus larger sizes in the
//!   scalability study (3–12, Figure 5B);
//! * **cohesiveness** — *similar* groups maximize the summed pairwise
//!   rating similarity of their members, *dissimilar* groups minimize it;
//! * **affinity strength** — *high-affinity* groups have every pairwise
//!   affinity ≥ 0.4 (after per-group normalization), low-affinity groups
//!   do not.
//!
//! Finding the exact max/min-sum group is NP-hard (it contains densest
//! k-subgraph); like the study itself we use a greedy construction over
//! random restarts, which is ample for the directional experiments.

use crate::error::DatasetError;
use crate::ratings::UserId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An ad-hoc user group `G ⊆ U`: distinct members, sorted by id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Group {
    members: Vec<UserId>,
}

impl Group {
    /// Build a group from members; deduplicates and sorts.
    pub fn new(mut members: Vec<UserId>) -> Result<Self, DatasetError> {
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return Err(DatasetError::GroupFormation(
                "group must be non-empty".into(),
            ));
        }
        Ok(Group { members })
    }

    /// Group members, sorted by id.
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// Group size `|G|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true for constructed groups).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `u` is a member.
    pub fn contains(&self, u: UserId) -> bool {
        self.members.binary_search(&u).is_ok()
    }

    /// All unordered member pairs `(u, v)` with `u < v` —
    /// `|G|·(|G|−1)/2` of them, the paper's affinity-list entries.
    pub fn pairs(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.members
            .iter()
            .enumerate()
            .flat_map(move |(i, &u)| self.members[i + 1..].iter().map(move |&v| (u, v)))
    }

    /// Number of unordered pairs.
    pub fn num_pairs(&self) -> usize {
        self.members.len() * (self.members.len() - 1) / 2
    }
}

/// Cohesiveness axis of §4.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cohesion {
    /// Maximize summed pairwise rating similarity.
    Similar,
    /// Minimize summed pairwise rating similarity.
    Dissimilar,
    /// No cohesiveness constraint.
    Any,
}

/// Affinity-strength axis of §4.1.3. The paper calls a group high-affinity
/// "if each pair-wise affinity in a group is equal to 0.4 or higher".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AffinityLevel {
    /// Every pairwise affinity ≥ threshold (default 0.4).
    High,
    /// At least one pairwise affinity < threshold.
    Low,
    /// No affinity constraint.
    Any,
}

/// A full group specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Desired group size.
    pub size: usize,
    /// Cohesiveness constraint.
    pub cohesion: Cohesion,
    /// Affinity constraint.
    pub affinity: AffinityLevel,
    /// Threshold for [`AffinityLevel::High`] (paper: 0.4).
    pub affinity_threshold: f64,
}

impl GroupSpec {
    /// Specification with no constraints beyond size.
    pub fn of_size(size: usize) -> Self {
        GroupSpec {
            size,
            cohesion: Cohesion::Any,
            affinity: AffinityLevel::Any,
            affinity_threshold: 0.4,
        }
    }

    /// Set the cohesion axis.
    pub fn cohesion(mut self, c: Cohesion) -> Self {
        self.cohesion = c;
        self
    }

    /// Set the affinity axis.
    pub fn affinity(mut self, a: AffinityLevel) -> Self {
        self.affinity = a;
        self
    }
}

/// Greedy group builder over a user universe with caller-provided pairwise
/// similarity and affinity functions.
pub struct GroupBuilder<'a> {
    universe: Vec<UserId>,
    similarity: Box<dyn Fn(UserId, UserId) -> f64 + 'a>,
    affinity: Box<dyn Fn(UserId, UserId) -> f64 + 'a>,
    restarts: usize,
}

impl<'a> GroupBuilder<'a> {
    /// Create a builder over `universe` with the two pairwise measures.
    pub fn new(
        universe: Vec<UserId>,
        similarity: impl Fn(UserId, UserId) -> f64 + 'a,
        affinity: impl Fn(UserId, UserId) -> f64 + 'a,
    ) -> Self {
        GroupBuilder {
            universe,
            similarity: Box::new(similarity),
            affinity: Box::new(affinity),
            restarts: 8,
        }
    }

    /// Number of greedy restarts per group (more = closer to optimum).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    fn affinity_ok(&self, members: &[UserId], spec: &GroupSpec) -> bool {
        let min_aff = members
            .iter()
            .enumerate()
            .flat_map(|(i, &u)| members[i + 1..].iter().map(move |&v| (self.affinity)(u, v)))
            .fold(f64::INFINITY, f64::min);
        match spec.affinity {
            AffinityLevel::High => min_aff >= spec.affinity_threshold,
            AffinityLevel::Low => min_aff < spec.affinity_threshold,
            AffinityLevel::Any => true,
        }
    }

    fn greedy_once(&self, rng: &mut StdRng, spec: &GroupSpec) -> Option<Vec<UserId>> {
        if self.universe.len() < spec.size || spec.size == 0 {
            return None;
        }
        let seed_user = self.universe[rng.random_range(0..self.universe.len())];
        let mut members = vec![seed_user];
        while members.len() < spec.size {
            let mut best: Option<(UserId, f64)> = None;
            for &cand in &self.universe {
                if members.contains(&cand) {
                    continue;
                }
                // Affinity feasibility pruning for High groups: every new
                // pair must clear the threshold.
                if matches!(spec.affinity, AffinityLevel::High)
                    && members
                        .iter()
                        .any(|&m| (self.affinity)(m, cand) < spec.affinity_threshold)
                {
                    continue;
                }
                let sim_sum: f64 = members.iter().map(|&m| (self.similarity)(m, cand)).sum();
                let score = match spec.cohesion {
                    Cohesion::Similar => sim_sum,
                    Cohesion::Dissimilar => -sim_sum,
                    Cohesion::Any => rng.random::<f64>(),
                };
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((cand, score));
                }
            }
            members.push(best?.0);
        }
        self.affinity_ok(&members, spec).then_some(members)
    }

    /// Build one group satisfying `spec`, best over the configured restarts.
    pub fn build(&self, spec: GroupSpec, seed: u64) -> Result<Group, DatasetError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<(Vec<UserId>, f64)> = None;
        for _ in 0..self.restarts {
            if let Some(members) = self.greedy_once(&mut rng, &spec) {
                let sim_sum: f64 = members
                    .iter()
                    .enumerate()
                    .flat_map(|(i, &u)| {
                        members[i + 1..]
                            .iter()
                            .map(move |&v| (self.similarity)(u, v))
                    })
                    .sum();
                let score = match spec.cohesion {
                    Cohesion::Similar => sim_sum,
                    Cohesion::Dissimilar => -sim_sum,
                    Cohesion::Any => 0.0,
                };
                if best.as_ref().is_none_or(|&(_, s)| score > s) {
                    best = Some((members, score));
                }
            }
        }
        let members = best.map(|(m, _)| m).ok_or_else(|| {
            DatasetError::GroupFormation(format!(
                "no group of size {} satisfies {:?}/{:?}",
                spec.size, spec.cohesion, spec.affinity
            ))
        })?;
        Group::new(members)
    }

    /// Build `n` distinct random groups of the given size (used by the
    /// scalability experiments: "20 different random groups", §4.2).
    pub fn random_groups(
        &self,
        n: usize,
        size: usize,
        seed: u64,
    ) -> Result<Vec<Group>, DatasetError> {
        if self.universe.len() < size || size == 0 {
            return Err(DatasetError::GroupFormation(format!(
                "universe of {} users cannot host groups of size {size}",
                self.universe.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut groups = Vec::with_capacity(n);
        let mut tries = 0usize;
        while groups.len() < n {
            tries += 1;
            if tries > 100 * n + 100 {
                return Err(DatasetError::GroupFormation(
                    "could not form enough distinct random groups".into(),
                ));
            }
            let mut pool = self.universe.clone();
            // Partial Fisher–Yates: draw `size` distinct users.
            for i in 0..size {
                let j = rng.random_range(i..pool.len());
                pool.swap(i, j);
            }
            let g = Group::new(pool[..size].to_vec()).expect("size > 0");
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: u32) -> Vec<UserId> {
        (0..n).map(UserId).collect()
    }

    /// Similarity: users with close ids are similar. Affinity: users in the
    /// same half of the id space have affinity 0.9, otherwise 0.1.
    fn builder<'a>(n: u32) -> GroupBuilder<'a> {
        GroupBuilder::new(
            universe(n),
            |a, b| 1.0 / (1.0 + (a.0 as f64 - b.0 as f64).abs()),
            move |a, b| {
                if (a.0 < n / 2) == (b.0 < n / 2) {
                    0.9
                } else {
                    0.1
                }
            },
        )
    }

    #[test]
    fn group_sorts_and_dedups() {
        let g = Group::new(vec![UserId(3), UserId(1), UserId(3)]).unwrap();
        assert_eq!(g.members(), &[UserId(1), UserId(3)]);
        assert_eq!(g.len(), 2);
        assert!(g.contains(UserId(3)));
        assert!(!g.contains(UserId(2)));
    }

    #[test]
    fn empty_group_rejected() {
        assert!(Group::new(vec![]).is_err());
    }

    #[test]
    fn pairs_enumerates_all_unordered_pairs() {
        let g = Group::new(vec![UserId(1), UserId(2), UserId(5)]).unwrap();
        let pairs: Vec<_> = g.pairs().collect();
        assert_eq!(
            pairs,
            vec![
                (UserId(1), UserId(2)),
                (UserId(1), UserId(5)),
                (UserId(2), UserId(5))
            ]
        );
        assert_eq!(g.num_pairs(), 3);
    }

    #[test]
    fn similar_groups_beat_dissimilar_on_sim_sum() {
        let b = builder(30);
        let sim = |g: &Group| -> f64 {
            g.pairs()
                .map(|(u, v)| 1.0 / (1.0 + (u.0 as f64 - v.0 as f64).abs()))
                .sum()
        };
        let s = b
            .build(GroupSpec::of_size(4).cohesion(Cohesion::Similar), 1)
            .unwrap();
        let d = b
            .build(GroupSpec::of_size(4).cohesion(Cohesion::Dissimilar), 1)
            .unwrap();
        assert!(
            sim(&s) > sim(&d),
            "similar {} vs dissimilar {}",
            sim(&s),
            sim(&d)
        );
    }

    #[test]
    fn high_affinity_groups_respect_threshold() {
        let b = builder(30);
        let g = b
            .build(GroupSpec::of_size(5).affinity(AffinityLevel::High), 7)
            .unwrap();
        for (u, v) in g.pairs() {
            let aff = if (u.0 < 15) == (v.0 < 15) { 0.9 } else { 0.1 };
            assert!(aff >= 0.4);
        }
    }

    #[test]
    fn low_affinity_groups_have_a_weak_pair() {
        let b = builder(30);
        let g = b
            .build(GroupSpec::of_size(4).affinity(AffinityLevel::Low), 3)
            .unwrap();
        let has_weak = g.pairs().any(|(u, v)| (u.0 < 15) != (v.0 < 15));
        assert!(has_weak);
    }

    #[test]
    fn infeasible_specs_error() {
        let b = builder(4);
        assert!(b.build(GroupSpec::of_size(10), 0).is_err());
        assert!(b.build(GroupSpec::of_size(0), 0).is_err());
    }

    #[test]
    fn random_groups_are_distinct_and_sized() {
        let b = builder(20);
        let gs = b.random_groups(10, 3, 42).unwrap();
        assert_eq!(gs.len(), 10);
        for g in &gs {
            assert_eq!(g.len(), 3);
        }
        for (i, a) in gs.iter().enumerate() {
            for bg in &gs[i + 1..] {
                assert_ne!(a, bg);
            }
        }
    }

    #[test]
    fn random_groups_rejects_oversized() {
        let b = builder(3);
        assert!(b.random_groups(1, 10, 0).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let b = builder(20);
        let g1 = b
            .build(GroupSpec::of_size(4).cohesion(Cohesion::Similar), 5)
            .unwrap();
        let g2 = b
            .build(GroupSpec::of_size(4).cohesion(Cohesion::Similar), 5)
            .unwrap();
        assert_eq!(g1, g2);
    }
}
