//! # greca-dataset
//!
//! Data substrates for the GRECA reproduction (EDBT 2015, *Group
//! Recommendation with Temporal Affinities*).
//!
//! The paper evaluates on two data sources that are not redistributable:
//!
//! 1. the **MovieLens 1M** collaborative rating dataset (6,040 users,
//!    3,952 movies, 1,000,209 ratings), and
//! 2. a **Facebook crawl** of 72 users (13 seeds plus their friends) with
//!    friendship edges and timestamped page-likes over 197 categories.
//!
//! This crate provides faithful *synthetic* substitutes for both (see
//! `DESIGN.md` §3 for the substitution argument), plus the shared data
//! model: user/item identifiers, rating matrices, timestamps, time-period
//! discretization (paper §2) and the group-formation procedures of §4.1.3.
//!
//! ```
//! use greca_dataset::prelude::*;
//!
//! // A small MovieLens-like world, deterministic under a seed.
//! let ml = MovieLensConfig::small().generate();
//! assert!(ml.matrix.num_ratings() > 0);
//!
//! // A social world with friendships and timestamped page-likes.
//! let social = SocialConfig::paper_scale().generate();
//! assert!(social.num_users() >= 65, "13 seed clusters plus recruits");
//! ```

pub mod error;
pub mod groups;
pub mod movielens;
pub mod randx;
pub mod ratings;
pub mod social;
pub mod time;

pub use error::DatasetError;
pub use groups::{AffinityLevel, Cohesion, Group, GroupBuilder, GroupSpec};
pub use movielens::{MovieLens, MovieLensConfig, MovieLensStats};
pub use ratings::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder, UserId};
pub use social::{LikeEvent, SocialConfig, SocialNetwork};
pub use time::{Granularity, Period, Timeline, Timestamp};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::groups::{AffinityLevel, Cohesion, Group, GroupBuilder, GroupSpec};
    pub use crate::movielens::{MovieLens, MovieLensConfig, MovieLensStats};
    pub use crate::ratings::{ItemId, Rating, RatingMatrix, RatingMatrixBuilder, UserId};
    pub use crate::social::{LikeEvent, SocialConfig, SocialNetwork};
    pub use crate::time::{Granularity, Period, Timeline, Timestamp};
}
