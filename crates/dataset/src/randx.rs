//! Small deterministic sampling helpers on top of `rand`.
//!
//! The reproduction only needs a handful of distributions (normal,
//! log-normal, Zipf-like categorical); implementing them here keeps the
//! dependency set to the approved offline crates.

use rand::RngExt;

/// Sample from a normal distribution via the Box–Muller transform.
pub fn normal<R: RngExt + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Draw u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample from a log-normal distribution with the given underlying
/// normal parameters.
pub fn log_normal<R: RngExt + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Zipf-like weights `w_r = 1 / (r+1)^s` for ranks `0..n`, unnormalized.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect()
}

/// Cumulative-sum table for O(log n) categorical sampling.
#[derive(Debug, Clone)]
pub struct CumTable {
    cum: Vec<f64>,
    total: f64,
}

impl CumTable {
    /// Build from non-negative weights. Zero-total tables sample uniformly.
    pub fn new(weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            acc += w.max(0.0);
            cum.push(acc);
        }
        CumTable { cum, total: acc }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the table has no categories.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Sample a category index proportionally to its weight.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(!self.cum.is_empty(), "cannot sample from an empty table");
        if self.total <= 0.0 {
            return rng.random_range(0..self.cum.len());
        }
        let x = rng.random::<f64>() * self.total;
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => (i + 1).min(self.cum.len() - 1),
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

/// Sample `k` distinct indices from `table`, by rejection. If fewer than
/// `k` distinct categories exist, returns all of them.
pub fn sample_distinct<R: RngExt + ?Sized>(rng: &mut R, table: &CumTable, k: usize) -> Vec<usize> {
    let n = table.len();
    if k >= n {
        return (0..n).collect();
    }
    let mut chosen = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    // Rejection sampling with a fallback sweep to guarantee termination on
    // extremely skewed tables.
    let max_tries = 20 * k + 100;
    let mut tries = 0;
    while out.len() < k && tries < max_tries {
        tries += 1;
        let idx = table.sample(rng);
        if chosen.insert(idx) {
            out.push(idx);
        }
    }
    let mut next = 0usize;
    while out.len() < k {
        if chosen.insert(next) {
            out.push(next);
        }
        next += 1;
    }
    out
}

/// Clamp a float rating into the 1–5 star scale and round to integer stars.
pub fn to_star_rating(x: f64) -> f32 {
    x.round().clamp(1.0, 5.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cum_table_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let table = CumTable::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn cum_table_zero_total_samples_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let table = CumTable::new(&[0.0, 0.0]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[table.sample(&mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn sample_distinct_returns_k_unique() {
        let mut rng = StdRng::seed_from_u64(5);
        let table = CumTable::new(&zipf_weights(100, 1.2));
        let picks = sample_distinct(&mut rng, &table, 30);
        assert_eq!(picks.len(), 30);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn sample_distinct_caps_at_population() {
        let mut rng = StdRng::seed_from_u64(5);
        let table = CumTable::new(&[1.0, 1.0, 1.0]);
        let picks = sample_distinct(&mut rng, &table, 10);
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn sample_distinct_survives_extreme_skew() {
        let mut rng = StdRng::seed_from_u64(9);
        // One category has (almost) all the mass; rejection alone would
        // stall, the fallback sweep must fill the rest.
        let mut w = vec![0.0; 50];
        w[17] = 1.0;
        let table = CumTable::new(&w);
        let picks = sample_distinct(&mut rng, &table, 20);
        assert_eq!(picks.len(), 20);
        assert!(picks.contains(&17));
    }

    #[test]
    fn star_rating_clamps() {
        assert_eq!(to_star_rating(0.2), 1.0);
        assert_eq!(to_star_rating(3.4), 3.0);
        assert_eq!(to_star_rating(3.6), 4.0);
        assert_eq!(to_star_rating(9.0), 5.0);
    }

    #[test]
    fn determinism_under_seed() {
        let table = CumTable::new(&zipf_weights(50, 1.0));
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..20).map(|_| table.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..20).map(|_| table.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
