//! The serving-style query API: [`GrecaEngine`] + fluent [`GroupQuery`].
//!
//! §2.4's ad-hoc-group scenario is a *serving* problem: the CF model and
//! the population-affinity index are long-lived substrates, while groups
//! arrive at query time. The engine owns references to both substrates
//! and hands out builders with the paper's defaults baked in (k = 10,
//! AP consensus, discrete affinity, decomposed lists, normalized
//! relative preference — §4.2 "Experiment Settings"), so the common
//! query is a few chained calls instead of the legacy 8-positional
//! [`prepare`](crate::engine::prepare):
//!
//! ```text
//! let engine = GrecaEngine::new(&cf, &population);
//! let top = engine.query(&group).items(&items).period(p).top(5).run()?;
//! ```
//!
//! [`Algorithm`] unifies GRECA with its §3.1/§4.2 comparison set (TA and
//! the naive scan): the same prepared query runs through any of the
//! three, which is what makes `%SA` comparisons fair. [`run_batch`]
//! executes many queries in parallel across OS threads and aggregates
//! their access statistics — the §4.2 harness shape (20 random groups
//! per data point).

use crate::access::{AccessStats, Aggregate};
use crate::greca::{greca_topk, GrecaConfig, TopKResult};
use crate::lists::{GrecaInputs, ListLayout};
use crate::naive::{naive_scores, naive_topk};
use crate::ta::{ta_topk, TaConfig};
use greca_affinity::{AffinityMode, GroupAffinity, PopulationAffinity};
use greca_cf::{group_preference_lists, PreferenceList, PreferenceProvider};
use greca_consensus::ConsensusFunction;
use greca_dataset::{Group, ItemId, UserId};

/// The paper's default result size (§4.2: "k = 10").
pub const PAPER_DEFAULT_K: usize = 10;

/// A query rejected before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No candidate items were supplied.
    EmptyItemset,
    /// The query period does not exist in the population index.
    PeriodOutOfRange {
        /// The requested period index.
        period: usize,
        /// Number of periods the index holds.
        num_periods: usize,
    },
    /// `k = 0` never returns anything meaningful.
    ZeroK,
    /// A group member is missing from the population-affinity universe.
    UnknownMember(UserId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyItemset => write!(f, "candidate itemset is empty"),
            QueryError::PeriodOutOfRange {
                period,
                num_periods,
            } => write!(
                f,
                "period {period} out of range: the population index holds {num_periods} period(s)"
            ),
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::UnknownMember(u) => {
                write!(
                    f,
                    "group member {u} is not in the population-affinity universe"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Which top-k algorithm executes a query.
///
/// All three consume the same prepared inputs and return the same
/// [`TopKResult`] shape, differing only in access pattern — GRECA reads
/// sequentially with the buffer stopping condition, TA completes scores
/// by random access, the naive scan reads everything. The `k` recorded
/// inside a variant's config is overridden by the query's own
/// [`GroupQuery::top`] so one query object can sweep algorithms without
/// re-stating k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// GRECA (Algorithm 1): sequential accesses, buffer condition.
    Greca(GrecaConfig),
    /// Threshold-algorithm baseline with random accesses (§3.1).
    Ta(TaConfig),
    /// Full-scan baseline; also the correctness oracle.
    Naive,
}

impl Default for Algorithm {
    /// GRECA with its default stopping rule and check cadence.
    fn default() -> Self {
        Algorithm::Greca(GrecaConfig::top(PAPER_DEFAULT_K))
    }
}

impl Algorithm {
    /// Short label for tables and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Greca(_) => "greca",
            Algorithm::Ta(_) => "ta",
            Algorithm::Naive => "naive",
        }
    }
}

/// The long-lived serving engine: a preference provider (any CF model)
/// plus the population-affinity index.
///
/// Both substrates are borrowed: the engine is a cheap, copyable view
/// meant to be created once per (provider, index) pair and shared. The
/// provider is a trait object so heterogeneous deployments (user CF,
/// item CF, raw ratings, hand-built tables) serve through one engine
/// type; `Sync` is required so [`run_batch`] can fan queries out across
/// threads.
#[derive(Clone, Copy)]
pub struct GrecaEngine<'a> {
    provider: &'a (dyn PreferenceProvider + Sync + 'a),
    population: &'a PopulationAffinity,
}

impl std::fmt::Debug for GrecaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrecaEngine")
            .field("universe", &self.population.universe().len())
            .field("periods", &self.population.num_periods())
            .finish()
    }
}

impl<'a> GrecaEngine<'a> {
    /// Wrap the substrates.
    pub fn new(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
    ) -> Self {
        GrecaEngine {
            provider,
            population,
        }
    }

    /// Start a query for `group` with the paper's defaults.
    pub fn query<'q>(&self, group: &'q Group) -> GroupQuery<'q>
    where
        'a: 'q,
    {
        GroupQuery {
            provider: self.provider,
            population: self.population,
            group,
            items: &[],
            period: None,
            mode: AffinityMode::Discrete,
            layout: ListLayout::Decomposed,
            consensus: ConsensusFunction::average_preference(),
            normalize_rpref: true,
            k: PAPER_DEFAULT_K,
            algorithm: Algorithm::default(),
        }
    }

    /// The population-affinity index this engine serves from.
    pub fn population(&self) -> &'a PopulationAffinity {
        self.population
    }

    /// Execute many prepared queries in parallel — see [`run_batch`].
    pub fn run_batch(&self, queries: &[GroupQuery<'_>]) -> BatchResult {
        run_batch(queries)
    }
}

/// One fluent group query against a [`GrecaEngine`].
///
/// Defaults (the paper's §4.2 settings): `k = 10`, AP consensus,
/// discrete affinity mode, decomposed list layout, normalized relative
/// preference, the current (latest) period, GRECA as the algorithm.
/// Only [`items`](Self::items) has no default — an empty candidate set
/// is a [`QueryError::EmptyItemset`] at run time.
#[derive(Clone, Copy)]
pub struct GroupQuery<'q> {
    provider: &'q (dyn PreferenceProvider + Sync + 'q),
    population: &'q PopulationAffinity,
    group: &'q Group,
    items: &'q [ItemId],
    period: Option<usize>,
    mode: AffinityMode,
    layout: ListLayout,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    k: usize,
    algorithm: Algorithm,
}

impl std::fmt::Debug for GroupQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupQuery")
            .field("group", &self.group.members())
            .field("items", &self.items.len())
            .field("period", &self.period)
            .field("mode", &self.mode)
            .field("layout", &self.layout)
            .field("consensus", &self.consensus.label())
            .field("normalize_rpref", &self.normalize_rpref)
            .field("k", &self.k)
            .field("algorithm", &self.algorithm)
            .finish()
    }
}

impl<'q> GroupQuery<'q> {
    /// The candidate itemset (required; §2.4 poses the problem over one
    /// shared itemset `I`).
    pub fn items(mut self, items: &'q [ItemId]) -> Self {
        self.items = items;
        self
    }

    /// Query period index (default: the index's latest period).
    pub fn period(mut self, period_idx: usize) -> Self {
        self.period = Some(period_idx);
        self
    }

    /// Affinity mode (default: [`AffinityMode::Discrete`]).
    pub fn affinity(mut self, mode: AffinityMode) -> Self {
        self.mode = mode;
        self
    }

    /// Affinity-list layout (default: [`ListLayout::Decomposed`]).
    pub fn layout(mut self, layout: ListLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Consensus function (default: AP, average preference).
    pub fn consensus(mut self, consensus: ConsensusFunction) -> Self {
        self.consensus = consensus;
        self
    }

    /// Whether relative preference is normalized by `|G|−1`
    /// (default: `true`; the paper's verbatim formula uses `false`).
    pub fn normalize_rpref(mut self, normalize: bool) -> Self {
        self.normalize_rpref = normalize;
        self
    }

    /// Result size `k` (default: 10). Overrides any `k` recorded inside
    /// the algorithm's config.
    pub fn top(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Executing algorithm (default: GRECA).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The query's effective period: explicit, or the index's latest.
    pub fn effective_period(&self) -> usize {
        self.period
            .unwrap_or_else(|| self.population.num_periods().saturating_sub(1))
    }

    /// Validate without materializing lists.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.items.is_empty() {
            return Err(QueryError::EmptyItemset);
        }
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        let num_periods = self.population.num_periods();
        let period = self.effective_period();
        // A temporal mode against an index with no periods would
        // silently degrade to static-only scoring; refuse instead. A
        // static-only index still answers period-0 queries for the
        // non-temporal modes.
        if self.mode.is_temporal() && num_periods == 0 {
            return Err(QueryError::PeriodOutOfRange {
                period,
                num_periods,
            });
        }
        if period >= num_periods.max(1) {
            return Err(QueryError::PeriodOutOfRange {
                period,
                num_periods,
            });
        }
        for &u in self.group.members() {
            if !self.population.contains_user(u) {
                return Err(QueryError::UnknownMember(u));
            }
        }
        Ok(())
    }

    /// Materialize the sorted lists once; the result can then run any
    /// [`Algorithm`] over the *same* inputs (the fair-`%SA` setup of
    /// §4.2) without paying preparation again.
    pub fn prepare(&self) -> Result<PreparedQuery, QueryError> {
        self.validate()?;
        let (affinity, inputs) = materialize_inputs(
            self.provider,
            self.population,
            self.group,
            self.items,
            self.effective_period(),
            self.mode,
            self.layout,
        );
        Ok(PreparedQuery {
            affinity,
            inputs,
            normalize_rpref: self.normalize_rpref,
            consensus: self.consensus,
            k: self.k,
            algorithm: self.algorithm,
        })
    }

    /// Prepare and execute in one call.
    pub fn run(&self) -> Result<TopKResult, QueryError> {
        Ok(self.prepare()?.run())
    }
}

/// The one construction both the builder and the deprecated
/// [`prepare`](crate::engine::prepare) shim share: group affinity view +
/// sorted lists for one (group, itemset, period, mode, layout). Keeping
/// it single-sourced makes legacy/new equivalence structural rather
/// than test-enforced.
pub(crate) fn materialize_inputs<P: PreferenceProvider + ?Sized>(
    provider: &P,
    population: &PopulationAffinity,
    group: &Group,
    items: &[ItemId],
    period_idx: usize,
    mode: AffinityMode,
    layout: ListLayout,
) -> (GroupAffinity, GrecaInputs) {
    let affinity = population.group_view(group, period_idx, mode);
    let pref_lists = group_preference_lists(provider, group, items);
    let inputs = GrecaInputs::build(&pref_lists, &affinity, layout);
    (affinity, inputs)
}

/// A query whose sorted-list inputs are materialized.
///
/// Holds everything an execution needs — the group's affinity view, the
/// sorted lists, and the query's scoring settings — so repeated runs
/// (different algorithms, the §4.2 sweeps) share one preparation.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    affinity: GroupAffinity,
    inputs: GrecaInputs,
    normalize_rpref: bool,
    consensus: ConsensusFunction,
    k: usize,
    algorithm: Algorithm,
}

impl PreparedQuery {
    /// Assemble directly from hand-built parts — the path for inputs
    /// that did not come from a CF model, e.g. the paper's §3.1 running
    /// example, whose preference lists are given as tables. Scoring
    /// settings start at the paper defaults; chain
    /// [`consensus`](Self::consensus) / [`top`](Self::top) /
    /// [`algorithm`](Self::algorithm) to adjust.
    pub fn from_parts(
        affinity: GroupAffinity,
        pref_lists: &[PreferenceList],
        layout: ListLayout,
        normalize_rpref: bool,
    ) -> Self {
        let inputs = GrecaInputs::build(pref_lists, &affinity, layout);
        PreparedQuery {
            affinity,
            inputs,
            normalize_rpref,
            consensus: ConsensusFunction::average_preference(),
            k: PAPER_DEFAULT_K,
            algorithm: Algorithm::default(),
        }
    }

    /// Replace the consensus function.
    pub fn consensus(mut self, consensus: ConsensusFunction) -> Self {
        self.consensus = consensus;
        self
    }

    /// Replace the result size.
    pub fn top(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Replace the executing algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The materialized lists.
    pub fn inputs(&self) -> &GrecaInputs {
        &self.inputs
    }

    /// The group's affinity view at the query period.
    pub fn affinity(&self) -> &GroupAffinity {
        &self.affinity
    }

    /// Execute the configured algorithm.
    pub fn run(&self) -> TopKResult {
        self.execute(self.algorithm, self.consensus)
    }

    /// Execute the configured algorithm under a different consensus
    /// function without cloning the materialized lists (the
    /// consensus-sweep path of the §4.1/§4.2 experiments).
    pub fn run_with(&self, consensus: ConsensusFunction) -> TopKResult {
        self.execute(self.algorithm, consensus)
    }

    /// Execute a specific algorithm over the same prepared inputs (the
    /// `%SA` comparison path: GRECA vs TA vs naive on identical lists).
    pub fn run_algorithm(&self, algorithm: Algorithm) -> TopKResult {
        self.execute(algorithm, self.consensus)
    }

    fn execute(&self, algorithm: Algorithm, consensus: ConsensusFunction) -> TopKResult {
        match algorithm {
            Algorithm::Greca(mut config) => {
                config.k = self.k;
                greca_topk(
                    &self.inputs,
                    &self.affinity,
                    consensus,
                    self.normalize_rpref,
                    config,
                )
            }
            Algorithm::Ta(mut config) => {
                config.k = self.k;
                ta_topk(
                    &self.inputs,
                    &self.affinity,
                    consensus,
                    self.normalize_rpref,
                    config,
                )
            }
            Algorithm::Naive => naive_topk(
                &self.inputs,
                &self.affinity,
                consensus,
                self.normalize_rpref,
                self.k,
            ),
        }
    }

    /// Exact consensus scores of every candidate item, descending (no
    /// access accounting; the verification/evaluation path).
    pub fn exact_scores(&self) -> Vec<(ItemId, f64)> {
        naive_scores(
            &self.inputs,
            &self.affinity,
            self.consensus,
            self.normalize_rpref,
        )
        .0
    }
}

/// Results of a [`run_batch`] execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query outcome, in input order.
    pub results: Vec<Result<TopKResult, QueryError>>,
    /// Access counters summed over the successful queries.
    pub stats: AccessStats,
}

impl BatchResult {
    /// The successful results, in input order.
    pub fn successes(&self) -> impl Iterator<Item = &TopKResult> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Mean ± stderr of `%SA` over the successful queries — the figures'
    /// "average over 20 random groups" aggregation.
    pub fn sa_percent_aggregate(&self) -> Aggregate {
        let samples: Vec<f64> = self.successes().map(|r| r.stats.sa_percent()).collect();
        Aggregate::of(&samples)
    }
}

/// Execute many prepared queries in parallel and aggregate their access
/// statistics — the §4.2 many-group harness path.
///
/// Queries fan out over `min(available_parallelism, #queries)` OS
/// threads via an atomic work queue (queries cost wildly different
/// amounts — group size, item count and period depth all vary — so
/// work-stealing beats static chunking). Results keep input order;
/// per-query failures surface as `Err` entries without failing the
/// batch.
pub fn run_batch(queries: &[GroupQuery<'_>]) -> BatchResult {
    let mut results: Vec<Option<Result<TopKResult, QueryError>>> = Vec::new();
    results.resize_with(queries.len(), || None);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.len().max(1));
    if workers <= 1 {
        for (slot, q) in results.iter_mut().zip(queries) {
            *slot = Some(q.run());
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<TopKResult, QueryError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(q) = queries.get(i) else { break };
                                out.push((i, q.run()));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            });
        for (i, r) in collected.into_iter().flatten() {
            results[i] = Some(r);
        }
    }
    let results: Vec<Result<TopKResult, QueryError>> = results
        .into_iter()
        .map(|r| r.expect("every query index visited"))
        .collect();
    let mut stats = AccessStats::default();
    for r in results.iter().filter_map(|r| r.as_ref().ok()) {
        stats.sa += r.stats.sa;
        stats.ra += r.stats.ra;
        stats.total_entries += r.stats.total_entries;
    }
    BatchResult { results, stats }
}
