//! The serving-style query API: [`GrecaEngine`] + fluent [`GroupQuery`].
//!
//! §2.4's ad-hoc-group scenario is a *serving* problem: the CF model and
//! the population-affinity index are long-lived substrates, while groups
//! arrive at query time. The engine owns references to both substrates
//! and hands out builders with the paper's defaults baked in (k = 10,
//! AP consensus, discrete affinity, decomposed lists, normalized
//! relative preference — §4.2 "Experiment Settings"), so the common
//! query is a few chained calls:
//!
//! ```text
//! let engine = GrecaEngine::warm(&cf, &population, &catalog)?;
//! let top = engine.query(&group).period(p).top(5).run()?;
//! ```
//!
//! ## Cold vs. warm preparation
//!
//! A *cold* engine ([`GrecaEngine::new`]) materializes every query's
//! sorted lists from scratch — `O(n·m log m)` provider calls and sorts
//! per query. A *warm* engine ([`GrecaEngine::warm`]) owns an
//! `Arc<`[`Substrate`]`>` of precomputed sorted storage; its `prepare()`
//! selects zero-copy [`ListView`](crate::lists::ListView)s (or one
//! order-preserving filter pass for subset itemsets) — no per-user sort,
//! no preference-entry clone, no provider calls. Both paths produce
//! bit-identical results; the engine also keeps a small keyed cache of
//! [`GroupAffinity`] views so repeat groups skip the view computation.
//!
//! [`Algorithm`] unifies GRECA with its §3.1/§4.2 comparison set (TA and
//! the naive scan): the same prepared query runs through any of the
//! three, which is what makes `%SA` comparisons fair. [`run_batch`]
//! executes many queries in parallel across OS threads and aggregates
//! their access statistics — the §4.2 harness shape (20 random groups
//! per data point).

use crate::access::{AccessStats, Aggregate};
use crate::greca::{
    greca_topk_with, CheckInterval, GrecaConfig, GrecaScratch, StoppingRule, TopKResult,
};
use crate::lists::{
    build_affinity_lists, group_affinity_list_sets, GrecaInputs, ListKind, ListLayout,
    MaterializedInputs, NonFiniteEntry, SortedList,
};
use crate::naive::{naive_scores, naive_topk};
use crate::plan::SharedMemberState;
use crate::substrate::{ItemCoverage, SegmentHandle, Substrate};
use crate::ta::{ta_topk, TaConfig};
use greca_affinity::{AffinityMode, GroupAffinity, PopulationAffinity};
use greca_cf::{group_preference_lists, PreferenceList, PreferenceProvider};
use greca_consensus::{ConsensusFunction, DisagreementKind, GroupPreferenceKind};
use greca_dataset::{Group, ItemId, UserId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// The paper's default result size (§4.2: "k = 10").
pub const PAPER_DEFAULT_K: usize = 10;

/// Entries the engine's group-affinity cache holds before it is cleared
/// (a serving deployment sees a bounded set of hot groups; the cache is
/// deliberately small and self-flushing rather than LRU-precise).
const AFFINITY_CACHE_CAP: usize = 256;

/// Kernel scratch workspaces the engine's pool retains. A wide
/// [`run_batch`] wave checks out one scratch per concurrent worker;
/// without a cap the pool would grow to the wave's peak parallelism and
/// retain every workspace — each sized to the largest query it ever
/// served — forever. Steady-state serving needs no more workspaces than
/// CPUs, so the count cap is set comfortably above typical core counts
/// while bounding the spike retention.
const SCRATCH_POOL_MAX: usize = 16;

/// Total bytes of scratch capacity the pool retains across all pooled
/// workspaces. One huge-query scratch (arena sized to a 100k-item
/// itemset) is worth keeping; sixteen of them are not. Workspaces that
/// would push the pooled total past this budget are dropped instead of
/// pooled — they are pure derived state and rebuild on demand.
const SCRATCH_POOL_BYTE_BUDGET: usize = 32 << 20;

/// A query rejected before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// No candidate items were supplied and the provider cannot supply a
    /// default catalog.
    EmptyItemset,
    /// The query period does not exist in the population index.
    PeriodOutOfRange {
        /// The requested period index.
        period: usize,
        /// Number of periods the index holds.
        num_periods: usize,
    },
    /// `k = 0` never returns anything meaningful.
    ZeroK,
    /// A group member is missing from the population-affinity universe.
    UnknownMember(UserId),
    /// A NaN/∞ score was rejected at list ingestion (instead of the
    /// historical panic inside a sort comparator).
    NonFiniteScore {
        /// Description of the offending entry (origin, id, value).
        what: String,
    },
    /// A write-ahead-log operation failed, so the mutation was *not*
    /// made durable and was not applied. Reads keep serving the last
    /// published epoch (see `LiveEngine::health`); the caller may
    /// retry — ingest is idempotent under its batch key.
    Wal {
        /// Description of the failed WAL operation.
        detail: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyItemset => write!(f, "candidate itemset is empty"),
            QueryError::PeriodOutOfRange {
                period,
                num_periods,
            } => write!(
                f,
                "period {period} out of range: the population index holds {num_periods} period(s)"
            ),
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::UnknownMember(u) => {
                write!(
                    f,
                    "group member {u} is not in the population-affinity universe"
                )
            }
            QueryError::NonFiniteScore { what } => write!(f, "{what}"),
            QueryError::Wal { detail } => write!(f, "write-ahead log failure: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<greca_cf::NonFiniteScore> for QueryError {
    fn from(e: greca_cf::NonFiniteScore) -> Self {
        QueryError::NonFiniteScore {
            what: e.to_string(),
        }
    }
}

impl From<NonFiniteEntry> for QueryError {
    fn from(e: NonFiniteEntry) -> Self {
        QueryError::NonFiniteScore {
            what: e.to_string(),
        }
    }
}

/// Which top-k algorithm executes a query.
///
/// All three consume the same prepared inputs and return the same
/// [`TopKResult`] shape, differing only in access pattern — GRECA reads
/// sequentially with the buffer stopping condition, TA completes scores
/// by random access, the naive scan reads everything. The `k` recorded
/// inside a variant's config is overridden by the query's own
/// [`GroupQuery::top`] so one query object can sweep algorithms without
/// re-stating k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// GRECA (Algorithm 1): sequential accesses, buffer condition.
    Greca(GrecaConfig),
    /// Threshold-algorithm baseline with random accesses (§3.1).
    Ta(TaConfig),
    /// Full-scan baseline; also the correctness oracle.
    Naive,
}

impl Default for Algorithm {
    /// GRECA with its default stopping rule and check cadence.
    fn default() -> Self {
        Algorithm::Greca(GrecaConfig::top(PAPER_DEFAULT_K))
    }
}

impl Algorithm {
    /// Short label for tables and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Greca(_) => "greca",
            Algorithm::Ta(_) => "ta",
            Algorithm::Naive => "naive",
        }
    }
}

/// Lock a mutex, recovering if a previous holder panicked: the poison
/// flag is cleared and `sanitize` puts the protected value back into a
/// known-good state before reuse. The engine's shared caches use this
/// with a wholesale clear — cached views and pooled workspaces are pure
/// derived state, so dropping them is always safe — which keeps one
/// panicked worker thread from permanently wedging (or silently
/// disabling caching for) every subsequent query in a long-lived
/// server.
fn lock_recovering<'m, T>(m: &'m Mutex<T>, sanitize: impl FnOnce(&mut T)) -> MutexGuard<'m, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            m.clear_poison();
            let mut guard = poisoned.into_inner();
            sanitize(&mut guard);
            guard
        }
    }
}

/// [`lock_recovering`] for state that stays internally consistent
/// across a panic (every mutation under the lock is itself panic-free),
/// so recovery needs no sanitization — just clear the flag and go.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    lock_recovering(m, |_| {})
}

/// Hashable identity of one cached [`GroupAffinity`] view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct AffinityKey {
    members: Vec<UserId>,
    period: usize,
    mode: ModeKey,
}

/// The engine's shared keyed cache of group-affinity views. The live
/// layer scopes one of these per epoch so a swap retires every cached
/// view along with the substrate it was computed beside.
pub(crate) type AffinityCache = Arc<Mutex<HashMap<AffinityKey, Arc<GroupAffinity>>>>;

/// A fresh, empty affinity cache.
pub(crate) fn new_affinity_cache() -> AffinityCache {
    Arc::new(Mutex::new(HashMap::new()))
}

/// [`AffinityMode`] with its `f64` payload made hashable via bit
/// identity (two scales cache separately unless bit-equal, which is the
/// conservative direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ModeKey {
    None,
    StaticOnly,
    Discrete,
    Continuous(u64),
}

impl From<AffinityMode> for ModeKey {
    fn from(mode: AffinityMode) -> Self {
        match mode {
            AffinityMode::None => ModeKey::None,
            AffinityMode::StaticOnly => ModeKey::StaticOnly,
            AffinityMode::Discrete => ModeKey::Discrete,
            AffinityMode::Continuous { scale } => ModeKey::Continuous(scale.to_bits()),
        }
    }
}

/// [`ConsensusFunction`] made hashable: the two kind discriminants plus
/// the preference weight by bit identity (like [`ModeKey`], bitwise is
/// the conservative direction — two weights cache separately unless
/// bit-equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConsensusKey {
    preference: GroupPreferenceKind,
    disagreement: DisagreementKind,
    w1_bits: u64,
}

impl From<ConsensusFunction> for ConsensusKey {
    fn from(c: ConsensusFunction) -> Self {
        ConsensusKey {
            preference: c.preference,
            disagreement: c.disagreement,
            w1_bits: c.w1.to_bits(),
        }
    }
}

/// [`Algorithm`] made hashable. The `k` recorded inside a variant's
/// config is excluded on purpose: the query's own
/// [`GroupQuery::top`] overrides it at execution, so it cannot affect
/// results and must not split the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AlgorithmKey {
    Greca(StoppingRule, CheckInterval),
    Ta { cache_affinity: bool },
    Naive,
}

impl From<Algorithm> for AlgorithmKey {
    fn from(a: Algorithm) -> Self {
        match a {
            Algorithm::Greca(c) => AlgorithmKey::Greca(c.stopping, c.check_interval),
            Algorithm::Ta(c) => AlgorithmKey::Ta {
                cache_affinity: c.cache_affinity,
            },
            Algorithm::Naive => AlgorithmKey::Naive,
        }
    }
}

/// SplitMix64: the finalizer used to hash individual item ids into the
/// itemset fingerprint.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-independent 128-bit fingerprint of an itemset: a wrapping sum
/// and an id-salted xor of each id's SplitMix64 hash. Permutations of
/// the same multiset produce the same fingerprint without sorting — the
/// "canonical without a per-query sort" half of [`QueryKey`]'s
/// contract. The empty itemset (resolved from the provider at prepare
/// time) fingerprints to zero.
fn itemset_fingerprint(items: &[ItemId]) -> u128 {
    let (mut sum, mut xor) = (0u64, 0u64);
    for &i in items {
        let h = splitmix64(u64::from(i.0).wrapping_add(1));
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left(i.0 % 61);
    }
    (u128::from(sum) << 64) | u128::from(xor)
}

/// Canonical, hashable identity of one [`GroupQuery`]'s full parameter
/// set — the key serving layers memoize results under.
///
/// Two queries with equal keys are guaranteed to produce bit-identical
/// results against the same engine state: group members (already
/// canonical — [`Group`] keeps them sorted), effective period, affinity
/// mode, list layout, consensus function, rpref normalization, `k`, the
/// algorithm configuration, and the candidate itemset all participate.
/// The itemset enters as its length plus an order-independent 128-bit
/// fingerprint, so permutations of one itemset share a key at `O(m)`
/// hashing cost with no sort and no copy. (A fingerprint collision
/// between two *different* itemsets is theoretically possible but needs
/// on the order of 2⁶⁴ distinct itemsets under one key scope to become
/// likely; an epoch-scoped serving cache is many orders of magnitude
/// below that.) An omitted itemset keys as the empty fingerprint, which
/// is sound because its resolution (the provider's candidate set) is a
/// deterministic function of the group and the engine state the cache
/// is scoped beside.
///
/// The key deliberately excludes the engine and its data: a result
/// cache must be scoped to one engine state — the serving layer scopes
/// per [`LiveEngine`](crate::live::LiveEngine) epoch and, on publish,
/// keeps exactly the entries whose [`QueryFootprint`] is disjoint from
/// the published dirty set (see
/// [`LiveEngine::on_publish_delta`](crate::live::LiveEngine::on_publish_delta)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    members: Vec<UserId>,
    items_len: usize,
    items_fp: u128,
    period: usize,
    mode: ModeKey,
    layout: ListLayout,
    consensus: ConsensusKey,
    normalize_rpref: bool,
    k: usize,
    algorithm: AlgorithmKey,
}

impl QueryKey {
    /// The slice of mutable engine state this query's result depends
    /// on. See [`QueryFootprint`] for the soundness argument.
    pub fn footprint(&self) -> QueryFootprint {
        QueryFootprint {
            members: self.members.clone(),
            items_fp: self.items_fp,
            period: self.period,
            uses_affinity: self.mode != ModeKey::None,
        }
    }
}

/// The slice of *mutable* engine state one query's result depends on:
/// the group members (whose preference lists and candidate itemset feed
/// the kernel), the itemset fingerprint, and the affinity coordinates
/// (period + whether affinity participates at all).
///
/// A cached result keyed by the matching [`QueryKey`] stays
/// bit-identical across an epoch publish iff its footprint is disjoint
/// from the publish's `DirtySet`: the kernel reads only (a) each
/// member's preference list — and the dirty-set contract guarantees
/// `dirty.users` covers every user whose list changed, including
/// co-raters and emptied rows under user-CF — (b) pair affinity between
/// members, covered by `dirty.pairs` for rating-derived affinity
/// sources (the population index itself is fixed for the engine's
/// lifetime), and (c) the default candidate itemset, a deterministic
/// function of the members' own rating rows. On the full-rebuild
/// fallback the dirty set is only a lower bound, so callers must treat
/// *everything* as dirty (see
/// [`PublishDelta::full_rebuild`](crate::live::PublishDelta)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryFootprint {
    /// Sorted ascending ([`Group`] keeps members canonical).
    members: Vec<UserId>,
    items_fp: u128,
    period: usize,
    uses_affinity: bool,
}

impl QueryFootprint {
    /// A conservative footprint over `members` alone: affinity assumed
    /// in play, provider-resolved itemset, period 0. Its trigger set is
    /// a superset of any precise footprint with the same members, so it
    /// is safe as a placeholder while the precise one (which needs a
    /// prepared query) is still being computed — continuous-query
    /// registration uses it to close the register-then-pin race.
    pub fn conservative(mut members: Vec<UserId>) -> QueryFootprint {
        members.sort_unstable();
        members.dedup();
        QueryFootprint {
            members,
            items_fp: 0,
            period: 0,
            uses_affinity: true,
        }
    }

    /// The member set (sorted ascending).
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// Order-independent itemset fingerprint (zero = provider-resolved
    /// candidate set).
    pub fn items_fingerprint(&self) -> u128 {
        self.items_fp
    }

    /// Effective affinity period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Whether pair affinity participates in scoring at all.
    pub fn uses_affinity(&self) -> bool {
        self.uses_affinity
    }

    /// Whether a publish with this dirty set can change the result:
    /// true iff a member's preference list is dirty, or (when affinity
    /// participates) a member-member affinity pair is dirty. Disjoint ⇒
    /// the cached result is bit-identical at the new epoch — unless the
    /// publish fell back to a full rebuild, which callers must check
    /// *before* consulting this.
    pub fn intersects(&self, dirty: &greca_cf::DirtySet) -> bool {
        dirty.intersects_users(&self.members)
            || (self.uses_affinity && dirty.intersects_member_pairs(&self.members))
    }

    /// Replace the member set (re-canonicalized by sorting). This exists
    /// for fault-injection tests that deliberately widen or narrow a
    /// footprint to prove the survival invariants would catch a wrong
    /// one; production footprints come only from [`QueryKey::footprint`].
    pub fn with_members(mut self, mut members: Vec<UserId>) -> QueryFootprint {
        members.sort_unstable();
        members.dedup();
        self.members = members;
        self
    }
}

/// The long-lived serving engine: a preference provider (any CF model)
/// plus the population-affinity index, optionally warmed with a shared
/// [`Substrate`] of precomputed sorted storage.
///
/// Both index substrates are borrowed; the precomputed storage and the
/// group-affinity cache are shared `Arc`s, so cloning an engine is cheap
/// and clones serve from the same buffers and cache. The provider is a
/// trait object so heterogeneous deployments (user CF, item CF, raw
/// ratings, hand-built tables) serve through one engine type; `Sync` is
/// required so [`run_batch`] can fan queries out across threads.
#[derive(Clone)]
pub struct GrecaEngine<'a> {
    provider: &'a (dyn PreferenceProvider + Sync + 'a),
    population: &'a PopulationAffinity,
    substrate: Option<Arc<Substrate>>,
    affinity_cache: AffinityCache,
    /// Pool of reusable kernel workspaces, shared (like the substrate
    /// and the affinity cache) by every clone of this engine, so the
    /// *kernel* runs allocation-free in steady state: each
    /// [`GroupQuery::run`] — including every [`run_batch`] worker —
    /// checks one out and returns it afterwards. (Preparation still
    /// allocates its per-query view vectors; the kernel's per-sweep and
    /// per-check work is what the pool eliminates.)
    scratch_pool: Arc<Mutex<Vec<GrecaScratch>>>,
}

impl std::fmt::Debug for GrecaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrecaEngine")
            .field("universe", &self.population.universe().len())
            .field("periods", &self.population.num_periods())
            .field("warm", &self.substrate.is_some())
            .finish()
    }
}

impl<'a> GrecaEngine<'a> {
    /// Wrap the substrates *cold*: every query materializes its own
    /// sorted lists. Cheap to construct; right for one-off queries or an
    /// index that is still being appended to.
    pub fn new(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
    ) -> Self {
        GrecaEngine {
            provider,
            population,
            substrate: None,
            affinity_cache: Arc::new(Mutex::new(HashMap::new())),
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Wrap the substrates *warm*: precompute every universe user's
    /// sorted preference list over `items` and the per-period sorted
    /// affinity arrays, once, into shared storage. Queries then prepare
    /// by slicing views instead of sorting (see the module docs).
    pub fn warm(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
        items: &[ItemId],
    ) -> Result<Self, QueryError> {
        let substrate = Substrate::build(provider, population, items)?;
        Ok(Self::with_substrate(
            provider,
            population,
            Arc::new(substrate),
        ))
    }

    /// Like [`GrecaEngine::warm`], but precomputes preference segments
    /// only for `users` — the right call when only a known cohort forms
    /// groups. Queries touching other users fall back to cold
    /// materialization transparently.
    pub fn warm_for(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
        items: &[ItemId],
        users: &[UserId],
    ) -> Result<Self, QueryError> {
        let substrate = Substrate::build_for(provider, population, items, users)?;
        Ok(Self::with_substrate(
            provider,
            population,
            Arc::new(substrate),
        ))
    }

    /// Wrap the substrates around an existing shared [`Substrate`]
    /// (e.g. one built once and shared across engines or shards).
    ///
    /// # Panics
    ///
    /// If the substrate was not built from this population index (same
    /// universe, pair space and period count) — a mismatched pairing
    /// would silently rank by the wrong affinity arrays, so it is a
    /// programming error, not a query error.
    pub fn with_substrate(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
        substrate: Arc<Substrate>,
    ) -> Self {
        assert!(
            substrate.is_compatible_with(population),
            "substrate was built from a different population index"
        );
        GrecaEngine {
            provider,
            population,
            substrate: Some(substrate),
            affinity_cache: Arc::new(Mutex::new(HashMap::new())),
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Like [`GrecaEngine::with_substrate`], but sharing an existing
    /// group-affinity cache — the live layer's path, where the cache is
    /// scoped to the substrate's epoch rather than to one engine value.
    pub(crate) fn with_substrate_and_cache(
        provider: &'a (dyn PreferenceProvider + Sync + 'a),
        population: &'a PopulationAffinity,
        substrate: Arc<Substrate>,
        affinity_cache: AffinityCache,
    ) -> Self {
        assert!(
            substrate.is_compatible_with(population),
            "substrate was built from a different population index"
        );
        GrecaEngine {
            provider,
            population,
            substrate: Some(substrate),
            affinity_cache,
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared precomputed storage, when the engine is warm.
    pub fn substrate(&self) -> Option<&Arc<Substrate>> {
        self.substrate.as_ref()
    }

    /// Whether the engine serves from precomputed storage.
    pub fn is_warm(&self) -> bool {
        self.substrate.is_some()
    }

    /// Start a query for `group` with the paper's defaults.
    pub fn query<'q>(&'q self, group: &'q Group) -> GroupQuery<'q> {
        GroupQuery {
            engine: self,
            group,
            items: &[],
            period: None,
            mode: AffinityMode::Discrete,
            layout: ListLayout::Decomposed,
            consensus: ConsensusFunction::average_preference(),
            normalize_rpref: true,
            k: PAPER_DEFAULT_K,
            algorithm: Algorithm::default(),
        }
    }

    /// The population-affinity index this engine serves from.
    pub fn population(&self) -> &'a PopulationAffinity {
        self.population
    }

    /// The group's affinity view at `(period, mode)` via the engine's
    /// keyed cache: computed at most once per key, shared by `Arc`.
    fn cached_affinity(
        &self,
        group: &Group,
        period_idx: usize,
        mode: AffinityMode,
    ) -> Arc<GroupAffinity> {
        let key = AffinityKey {
            members: group.members().to_vec(),
            period: period_idx,
            mode: ModeKey::from(mode),
        };
        {
            let cache = lock_recovering(&self.affinity_cache, HashMap::clear);
            if let Some(hit) = cache.get(&key) {
                return Arc::clone(hit);
            }
        }
        let view = Arc::new(self.population.group_view(group, period_idx, mode));
        let mut cache = lock_recovering(&self.affinity_cache, HashMap::clear);
        if cache.len() >= AFFINITY_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&view));
        view
    }

    /// Number of group-affinity views currently cached.
    pub fn cached_affinity_views(&self) -> usize {
        lock_recovering(&self.affinity_cache, HashMap::clear).len()
    }

    /// Check a kernel workspace out of the shared pool (or make a fresh
    /// one). Pair with [`GrecaEngine::restore_scratch`].
    fn checkout_scratch(&self) -> GrecaScratch {
        lock_recovering(&self.scratch_pool, Vec::clear)
            .pop()
            .unwrap_or_default()
    }

    /// Return a kernel workspace to the pool for the next query — unless
    /// the pool is already at its count cap or the workspace would push
    /// pooled capacity past the byte budget, in which case it is simply
    /// dropped (scratch is derived state; a future query rebuilds it).
    fn restore_scratch(&self, scratch: GrecaScratch) {
        let mut pool = lock_recovering(&self.scratch_pool, Vec::clear);
        if pool.len() >= SCRATCH_POOL_MAX {
            return;
        }
        let pooled: usize = pool.iter().map(GrecaScratch::memory_bytes).sum();
        if pooled + scratch.memory_bytes() > SCRATCH_POOL_BYTE_BUDGET {
            return;
        }
        pool.push(scratch);
    }

    /// Number of kernel workspaces currently pooled (observability for
    /// tests and benchmarks; bounded by `SCRATCH_POOL_MAX`).
    pub fn pooled_scratches(&self) -> usize {
        lock_recovering(&self.scratch_pool, Vec::clear).len()
    }

    /// Total bytes of vector capacity held by pooled workspaces
    /// (bounded by `SCRATCH_POOL_BYTE_BUDGET`).
    pub fn pooled_scratch_bytes(&self) -> usize {
        lock_recovering(&self.scratch_pool, Vec::clear)
            .iter()
            .map(GrecaScratch::memory_bytes)
            .sum()
    }

    /// Execute many prepared queries in parallel — see [`run_batch`].
    pub fn run_batch(&self, queries: &[GroupQuery<'_>]) -> BatchResult {
        run_batch(queries)
    }
}

/// One fluent group query against a [`GrecaEngine`].
///
/// Defaults (the paper's §4.2 settings): `k = 10`, AP consensus,
/// discrete affinity mode, decomposed list layout, normalized relative
/// preference, the current (latest) period, GRECA as the algorithm.
/// The itemset itself defaults to the provider's candidate set for the
/// group (every catalog item no member has rated — §2.4); supply
/// [`items`](Self::items) to override it.
#[derive(Clone, Copy)]
pub struct GroupQuery<'q> {
    engine: &'q GrecaEngine<'q>,
    group: &'q Group,
    items: &'q [ItemId],
    period: Option<usize>,
    mode: AffinityMode,
    layout: ListLayout,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    k: usize,
    algorithm: Algorithm,
}

impl std::fmt::Debug for GroupQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupQuery")
            .field("group", &self.group.members())
            .field("items", &self.items.len())
            .field("period", &self.period)
            .field("mode", &self.mode)
            .field("layout", &self.layout)
            .field("consensus", &self.consensus.label())
            .field("normalize_rpref", &self.normalize_rpref)
            .field("k", &self.k)
            .field("algorithm", &self.algorithm)
            .finish()
    }
}

impl<'q> GroupQuery<'q> {
    /// The candidate itemset (§2.4 poses the problem over one shared
    /// itemset `I`). Optional: when omitted, the provider's
    /// [`candidate_items`](PreferenceProvider::candidate_items) for the
    /// group is used; a provider without a catalog (e.g. a hand-built
    /// score table) then yields [`QueryError::EmptyItemset`].
    pub fn items(mut self, items: &'q [ItemId]) -> Self {
        self.items = items;
        self
    }

    /// Query period index (default: the index's latest period).
    pub fn period(mut self, period_idx: usize) -> Self {
        self.period = Some(period_idx);
        self
    }

    /// Affinity mode (default: [`AffinityMode::Discrete`]).
    pub fn affinity(mut self, mode: AffinityMode) -> Self {
        self.mode = mode;
        self
    }

    /// Affinity-list layout (default: [`ListLayout::Decomposed`]).
    pub fn layout(mut self, layout: ListLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Consensus function (default: AP, average preference).
    pub fn consensus(mut self, consensus: ConsensusFunction) -> Self {
        self.consensus = consensus;
        self
    }

    /// Whether relative preference is normalized by `|G|−1`
    /// (default: `true`; the paper's verbatim formula uses `false`).
    pub fn normalize_rpref(mut self, normalize: bool) -> Self {
        self.normalize_rpref = normalize;
        self
    }

    /// Result size `k` (default: 10). Overrides any `k` recorded inside
    /// the algorithm's config.
    pub fn top(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Executing algorithm (default: GRECA).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The query's canonical cache key — see [`QueryKey`]. `O(n + m)`
    /// in group size and itemset length; no allocation beyond the
    /// member copy, no sorting.
    pub fn cache_key(&self) -> QueryKey {
        QueryKey {
            members: self.group.members().to_vec(),
            items_len: self.items.len(),
            items_fp: itemset_fingerprint(self.items),
            period: self.effective_period(),
            mode: ModeKey::from(self.mode),
            layout: self.layout,
            consensus: ConsensusKey::from(self.consensus),
            normalize_rpref: self.normalize_rpref,
            k: self.k,
            algorithm: AlgorithmKey::from(self.algorithm),
        }
    }

    /// The query's effective period: explicit, or the index's latest.
    pub fn effective_period(&self) -> usize {
        self.period
            .unwrap_or_else(|| self.engine.population.num_periods().saturating_sub(1))
    }

    /// Validate the query's settings without materializing lists.
    ///
    /// An empty itemset is *not* an error here: it is resolved at
    /// [`prepare`](Self::prepare) time from the provider's candidate
    /// set, and only fails there if the provider has no catalog.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        let num_periods = self.engine.population.num_periods();
        let period = self.effective_period();
        // A temporal mode against an index with no periods would
        // silently degrade to static-only scoring; refuse instead. A
        // static-only index still answers period-0 queries for the
        // non-temporal modes.
        if self.mode.is_temporal() && num_periods == 0 {
            return Err(QueryError::PeriodOutOfRange {
                period,
                num_periods,
            });
        }
        if period >= num_periods.max(1) {
            return Err(QueryError::PeriodOutOfRange {
                period,
                num_periods,
            });
        }
        for &u in self.group.members() {
            if !self.engine.population.contains_user(u) {
                return Err(QueryError::UnknownMember(u));
            }
        }
        Ok(())
    }

    /// Materialize or select the sorted lists once; the result can then
    /// run any [`Algorithm`] over the *same* inputs (the fair-`%SA`
    /// setup of §4.2) without paying preparation again.
    ///
    /// On a warm engine this selects substrate views (no per-user sort,
    /// no preference-entry clone); on a cold engine — or for a query the
    /// substrate cannot serve (unknown user, foreign or duplicated
    /// items) — it materializes owned lists exactly as before. Both
    /// paths are bit-identical.
    pub fn prepare(&self) -> Result<PreparedQuery, QueryError> {
        self.prepare_impl(None)
    }

    /// Like [`prepare`](Self::prepare), but resolving per-member sorted
    /// lists through a [`SharedMemberState`] arena so queries whose
    /// groups overlap share the resolution work. Every shared value is a
    /// deterministic function of the engine state and the `(member,
    /// itemset)` key, so the preparation — and any execution over it —
    /// is bit-identical to [`prepare`](Self::prepare)'s.
    ///
    /// **Scope contract:** `shared` must be used against exactly one
    /// engine state (the planner builds one arena per engine partition;
    /// `greca-serve` scopes one per published epoch). Crossing engines
    /// or epochs would serve stale lists.
    pub fn prepare_shared(&self, shared: &SharedMemberState) -> Result<PreparedQuery, QueryError> {
        self.prepare_impl(Some(shared))
    }

    fn prepare_impl(
        &self,
        shared: Option<&SharedMemberState>,
    ) -> Result<PreparedQuery, QueryError> {
        let _prepare = crate::obs::phase(crate::obs::Phase::Prepare);
        self.validate()?;
        let resolved: Vec<ItemId>;
        let items: &[ItemId] = if self.items.is_empty() {
            resolved = self
                .engine
                .provider
                .candidate_items(self.group)
                .ok_or(QueryError::EmptyItemset)?;
            &resolved
        } else {
            self.items
        };
        if items.is_empty() {
            return Err(QueryError::EmptyItemset);
        }
        // Shared entries are keyed the way `QueryKey` identifies
        // itemsets; the fingerprint is computed over the *resolved*
        // itemset so a defaulted (empty) itemset keys by what it
        // actually resolved to.
        let shared = shared.map(|s| (s, itemset_fingerprint(items)));
        let period = self.effective_period();
        let affinity = self.engine.cached_affinity(self.group, period, self.mode);

        let storage = match self.engine.substrate {
            Some(ref substrate) => {
                match build_warm(
                    self.engine.provider,
                    substrate,
                    &affinity,
                    self.group,
                    items,
                    self.layout,
                    shared,
                )? {
                    Some(warm) => PreparedStorage::Warm(warm),
                    None => cold_storage(
                        self.engine.provider,
                        &affinity,
                        self.group,
                        items,
                        self.layout,
                        shared,
                    )?,
                }
            }
            None => cold_storage(
                self.engine.provider,
                &affinity,
                self.group,
                items,
                self.layout,
                shared,
            )?,
        };
        Ok(PreparedQuery {
            affinity,
            storage,
            normalize_rpref: self.normalize_rpref,
            consensus: self.consensus,
            k: self.k,
            algorithm: self.algorithm,
            key: Some(self.cache_key()),
        })
    }

    /// Prepare and execute in one call, recycling a kernel workspace
    /// from the engine's shared pool — the allocation-free serving path
    /// (identical results to [`PreparedQuery::run`] on a fresh scratch).
    pub fn run(&self) -> Result<TopKResult, QueryError> {
        let prepared = self.prepare()?;
        let mut scratch = self.engine.checkout_scratch();
        let result = prepared.run_with_scratch(&mut scratch);
        self.engine.restore_scratch(scratch);
        Ok(result)
    }

    /// [`run`](Self::run) through a [`SharedMemberState`] arena — the
    /// batch planner's and serving layer's execution path for
    /// overlapping waves. Bit-identical to [`run`](Self::run).
    pub fn run_shared(&self, shared: &SharedMemberState) -> Result<TopKResult, QueryError> {
        let prepared = self.prepare_shared(shared)?;
        let mut scratch = self.engine.checkout_scratch();
        let result = prepared.run_with_scratch(&mut scratch);
        self.engine.restore_scratch(scratch);
        Ok(result)
    }

    /// Stable identity of the engine this query targets — the batch
    /// planner's partition key, so shared member state never crosses an
    /// engine (and therefore substrate/epoch) boundary. Meaningful only
    /// within one wave: the pointed-to engine must outlive the
    /// comparison, which the `'q` borrow guarantees.
    pub(crate) fn engine_address(&self) -> usize {
        std::ptr::from_ref(self.engine) as usize
    }

    /// The group's members (canonical: [`Group`] keeps them sorted).
    pub(crate) fn group_members(&self) -> &[UserId] {
        self.group.members()
    }
}

/// Cold-path list materialization: provider calls + sorts, per query.
fn cold_inputs(
    provider: &(dyn PreferenceProvider + Sync + '_),
    affinity: &GroupAffinity,
    group: &Group,
    items: &[ItemId],
    layout: ListLayout,
) -> Result<MaterializedInputs, QueryError> {
    let pref_lists = group_preference_lists(provider, group, items)?;
    Ok(MaterializedInputs::build(&pref_lists, affinity, layout)?)
}

/// Cold-path storage selection: per-query owned lists, or — through a
/// [`SharedMemberState`] — per-member lists resolved once per wave and
/// shared across the queries that need them.
fn cold_storage(
    provider: &(dyn PreferenceProvider + Sync + '_),
    affinity: &GroupAffinity,
    group: &Group,
    items: &[ItemId],
    layout: ListLayout,
    shared: Option<(&SharedMemberState, u128)>,
) -> Result<PreparedStorage, QueryError> {
    match shared {
        Some((state, items_fp)) => Ok(PreparedStorage::SharedCold(shared_cold_inputs(
            provider, affinity, group, items, items_fp, layout, state,
        )?)),
        None => Ok(PreparedStorage::Cold(cold_inputs(
            provider, affinity, group, items, layout,
        )?)),
    }
}

/// [`cold_inputs`] with every per-member preference list resolved
/// through the shared arena: one provider scan + sort per `(member,
/// itemset)` key per wave, no matter how many groups the member appears
/// in. Lists are stored member-agnostic (kind `member: 0`) — sorting is
/// deterministic (descending, ties by id), so the columns are identical
/// for every group — and re-kinded to the group-local member index at
/// view assembly. The per-group affinity lists are tiny (≤ n−1 entries
/// each) and stay per-query.
fn shared_cold_inputs(
    provider: &(dyn PreferenceProvider + Sync + '_),
    affinity: &GroupAffinity,
    group: &Group,
    items: &[ItemId],
    items_fp: u128,
    layout: ListLayout,
    shared: &SharedMemberState,
) -> Result<SharedColdInputs, QueryError> {
    let pref_lists: Vec<Arc<SortedList>> = group
        .members()
        .iter()
        .map(|&u| {
            shared.resolve_list(u, items.len(), items_fp, || {
                let pl = provider.preference_list(u, items)?;
                let entries: Vec<(u32, f64)> = pl.entries.iter().map(|&(i, s)| (i.0, s)).collect();
                Ok(Arc::new(SortedList::new(
                    ListKind::Preference { member: 0 },
                    entries,
                )?))
            })
        })
        .collect::<Result<_, _>>()?;
    let num_items = pref_lists.first().map_or(0, |l| l.len());
    for l in &pref_lists {
        assert_eq!(l.len(), num_items, "preference lists must align");
    }
    let (static_lists, period_lists) = group_affinity_list_sets(affinity, layout)?;
    Ok(SharedColdInputs {
        pref_lists,
        static_lists,
        period_lists,
        num_members: group.members().len(),
        num_pairs: affinity.num_pairs(),
        num_items,
    })
}

/// Warm-path selection from the substrate. Returns `Ok(None)` when the
/// substrate cannot serve this query (an uncovered user, a foreign or
/// duplicated item) and the caller should fall back to the cold path.
fn build_warm(
    provider: &(dyn PreferenceProvider + Sync + '_),
    substrate: &Arc<Substrate>,
    affinity: &GroupAffinity,
    group: &Group,
    items: &[ItemId],
    layout: ListLayout,
    shared: Option<(&SharedMemberState, u128)>,
) -> Result<Option<WarmInputs>, QueryError> {
    let Some(coverage) = substrate.item_coverage(items) else {
        return Ok(None);
    };
    // One owned handle per member: resident dense segments cost an `Arc`
    // clone; quantized or lazy segments may materialize (and cache)
    // their dense columns here, so the views below stay borrowable.
    // Through the shared arena, that (potentially expensive) handle
    // resolution happens once per member per wave.
    let mut handles: Vec<SegmentHandle> = Vec::with_capacity(group.members().len());
    for &u in group.members() {
        match substrate.user_index(u) {
            Some(i) => handles.push(match shared {
                Some((state, _)) => {
                    state.resolve_handle(u, || substrate.segment_handle(provider, i))?
                }
                None => substrate.segment_handle(provider, i)?,
            }),
            None => return Ok(None),
        }
    }
    // (group pair id, population pair id), in group triangular order, so
    // a member's pairs are one contiguous row of this vec.
    let members = affinity.members();
    let n = members.len();
    let mut pair_map: Vec<(u32, usize)> = Vec::with_capacity(affinity.num_pairs());
    for i in 0..n {
        for j in (i + 1)..n {
            let g = affinity
                .pair_of(members[i], members[j])
                .expect("members are in the group") as u32;
            let Some(pop) = substrate.population_pair_of(members[i], members[j]) else {
                return Ok(None);
            };
            pair_map.push((g, pop));
        }
    }

    let (filtered, num_items) = match coverage {
        ItemCoverage::Full => (None, substrate.num_items()),
        ItemCoverage::Subset(mask) => {
            // Filtered columns are stored member-agnostic and re-kinded
            // to the group-local member index at view assembly, so one
            // filter pass per (member, itemset) serves every group the
            // member belongs to when resolved through the shared arena.
            let lists: Vec<Arc<SortedList>> = match shared {
                Some((state, items_fp)) => group
                    .members()
                    .iter()
                    .zip(&handles)
                    .map(|(&u, h)| {
                        state.resolve_list(u, items.len(), items_fp, || {
                            Ok(Arc::new(substrate.shared_pref_list(h, &mask, items.len())))
                        })
                    })
                    .collect::<Result<_, _>>()?,
                None => handles
                    .iter()
                    .map(|h| Arc::new(substrate.shared_pref_list(h, &mask, items.len())))
                    .collect(),
            };
            (Some(lists), items.len())
        }
    };

    let mode = affinity.mode();
    let static_lists = if mode.uses_static() {
        // Static components are re-normalized *per group* (§4.1.2), so
        // their per-query sort stays (tiny: ≤ n−1 entries per list, and
        // a shared positive rescale could in principle collapse two
        // distinct raw values into a float tie, where the population
        // rank and a value sort may disagree).
        build_affinity_lists(affinity, layout, ListKind::StaticAffinity, |pair| {
            affinity.static_component(pair)
        })?
    } else {
        Vec::new()
    };

    let period_lists: Vec<Vec<SortedList>> = if mode.is_temporal() {
        (0..affinity.num_periods())
            .map(|p| {
                let kind = ListKind::PeriodicAffinity { period: p as u32 };
                let assemble = |pairs: &mut [(u32, usize)]| {
                    substrate.order_pairs_by_period_rank(p, pairs);
                    let ids: Vec<u32> = pairs.iter().map(|&(g, _)| g).collect();
                    let scores: Vec<f64> = pairs
                        .iter()
                        .map(|&(g, _)| affinity.period_component(p, g as usize))
                        .collect();
                    SortedList::from_sorted_columns(kind, ids, scores)
                };
                match layout {
                    ListLayout::Single => {
                        let mut pairs = pair_map.clone();
                        vec![assemble(&mut pairs)]
                    }
                    ListLayout::Decomposed => {
                        let mut lists = Vec::with_capacity(n.saturating_sub(1));
                        let mut row_start = 0;
                        for i in 0..n.saturating_sub(1) {
                            let row_len = n - 1 - i;
                            let mut pairs = pair_map[row_start..row_start + row_len].to_vec();
                            lists.push(assemble(&mut pairs));
                            row_start += row_len;
                        }
                        lists
                    }
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    Ok(Some(WarmInputs {
        handles,
        filtered,
        static_lists,
        period_lists,
        num_members: n,
        num_pairs: affinity.num_pairs(),
        num_items,
    }))
}

/// Substrate-backed prepared state: zero-copy segment references (or
/// filtered columns for subset itemsets) plus the per-query tiny
/// affinity lists. The per-member handles keep their segments (and any
/// materialized columns) alive, independent of cache eviction or epoch
/// swaps.
#[derive(Debug, Clone)]
struct WarmInputs {
    /// One owned segment handle per member.
    handles: Vec<SegmentHandle>,
    /// `Some` when the itemset is a strict subset of the universe. The
    /// columns are member-agnostic (and possibly shared across queries
    /// through a wave's [`SharedMemberState`]); views re-kind them to
    /// the group-local member index.
    filtered: Option<Vec<Arc<SortedList>>>,
    static_lists: Vec<SortedList>,
    period_lists: Vec<Vec<SortedList>>,
    num_members: usize,
    num_pairs: usize,
    num_items: usize,
}

impl WarmInputs {
    fn views(&self) -> GrecaInputs<'_> {
        let pref_lists = match &self.filtered {
            Some(lists) => lists
                .iter()
                .enumerate()
                .map(|(m, l)| l.view_as(ListKind::Preference { member: m as u32 }))
                .collect(),
            None => self
                .handles
                .iter()
                .enumerate()
                .map(|(m, h)| h.view(m as u32))
                .collect(),
        };
        GrecaInputs::assemble(
            pref_lists,
            self.static_lists.iter().map(SortedList::as_view).collect(),
            self.period_lists
                .iter()
                .map(|ls| ls.iter().map(SortedList::as_view).collect())
                .collect(),
            self.num_members,
            self.num_pairs,
            self.num_items,
        )
    }
}

/// Cold-path prepared state whose per-member preference lists live in a
/// wave's [`SharedMemberState`] arena instead of per-query owned
/// storage. Lists are member-agnostic `Arc`s (see
/// [`shared_cold_inputs`]); views re-kind them to the group-local
/// member index, producing view bundles identical to
/// [`MaterializedInputs::views`]'s.
#[derive(Debug, Clone)]
struct SharedColdInputs {
    pref_lists: Vec<Arc<SortedList>>,
    static_lists: Vec<SortedList>,
    period_lists: Vec<Vec<SortedList>>,
    num_members: usize,
    num_pairs: usize,
    num_items: usize,
}

impl SharedColdInputs {
    fn views(&self) -> GrecaInputs<'_> {
        GrecaInputs::assemble(
            self.pref_lists
                .iter()
                .enumerate()
                .map(|(m, l)| l.view_as(ListKind::Preference { member: m as u32 }))
                .collect(),
            self.static_lists.iter().map(SortedList::as_view).collect(),
            self.period_lists
                .iter()
                .map(|ls| ls.iter().map(SortedList::as_view).collect())
                .collect(),
            self.num_members,
            self.num_pairs,
            self.num_items,
        )
    }
}

/// Which storage backs a [`PreparedQuery`].
#[derive(Debug, Clone)]
enum PreparedStorage {
    /// Per-query owned lists (the legacy materialization path).
    Cold(MaterializedInputs),
    /// Substrate views (the warm path).
    Warm(WarmInputs),
    /// Cold lists resolved through a wave's shared member arena.
    SharedCold(SharedColdInputs),
}

impl PreparedStorage {
    fn views(&self) -> GrecaInputs<'_> {
        match self {
            PreparedStorage::Cold(m) => m.views(),
            PreparedStorage::Warm(w) => w.views(),
            PreparedStorage::SharedCold(s) => s.views(),
        }
    }
}

/// A query whose sorted-list inputs are materialized or selected.
///
/// Holds everything an execution needs — the group's affinity view, the
/// list storage (owned or substrate-backed), and the query's scoring
/// settings — so repeated runs (different algorithms, the §4.2 sweeps)
/// share one preparation.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    affinity: Arc<GroupAffinity>,
    storage: PreparedStorage,
    normalize_rpref: bool,
    consensus: ConsensusFunction,
    k: usize,
    algorithm: Algorithm,
    /// The originating query's canonical key, kept in sync by the
    /// scoring mutators below. `None` for hand-assembled preparations
    /// ([`PreparedQuery::from_parts`]), whose inputs never came from an
    /// engine a cache could be scoped beside.
    key: Option<QueryKey>,
}

impl PreparedQuery {
    /// Assemble directly from hand-built parts — the path for inputs
    /// that did not come from a CF model, e.g. the paper's §3.1 running
    /// example, whose preference lists are given as tables. Scoring
    /// settings start at the paper defaults; chain
    /// [`consensus`](Self::consensus) / [`top`](Self::top) /
    /// [`algorithm`](Self::algorithm) to adjust.
    pub fn from_parts(
        affinity: GroupAffinity,
        pref_lists: &[PreferenceList],
        layout: ListLayout,
        normalize_rpref: bool,
    ) -> Result<Self, QueryError> {
        let inputs = MaterializedInputs::build(pref_lists, &affinity, layout)?;
        Ok(PreparedQuery {
            affinity: Arc::new(affinity),
            storage: PreparedStorage::Cold(inputs),
            normalize_rpref,
            consensus: ConsensusFunction::average_preference(),
            k: PAPER_DEFAULT_K,
            algorithm: Algorithm::default(),
            key: None,
        })
    }

    /// Replace the consensus function.
    pub fn consensus(mut self, consensus: ConsensusFunction) -> Self {
        self.consensus = consensus;
        if let Some(key) = &mut self.key {
            key.consensus = ConsensusKey::from(consensus);
        }
        self
    }

    /// Replace the result size.
    pub fn top(mut self, k: usize) -> Self {
        self.k = k;
        if let Some(key) = &mut self.key {
            key.k = k;
        }
        self
    }

    /// Replace the executing algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        if let Some(key) = &mut self.key {
            key.algorithm = AlgorithmKey::from(algorithm);
        }
        self
    }

    /// The canonical cache key of the query this preparation came from,
    /// kept in sync across the scoring mutators — equal to what
    /// [`GroupQuery::cache_key`] returned (with any
    /// [`top`](Self::top)/[`consensus`](Self::consensus)/
    /// [`algorithm`](Self::algorithm) replacement applied). `None` for
    /// [`PreparedQuery::from_parts`] preparations.
    pub fn cache_key(&self) -> Option<&QueryKey> {
        self.key.as_ref()
    }

    /// The list views an execution reads (assembled per call; the
    /// backing storage is owned by this query or by the engine's
    /// substrate).
    pub fn inputs(&self) -> GrecaInputs<'_> {
        self.storage.views()
    }

    /// Whether this preparation is served from substrate views (as
    /// opposed to per-query owned lists).
    pub fn is_warm(&self) -> bool {
        matches!(self.storage, PreparedStorage::Warm(_))
    }

    /// The group's affinity view at the query period.
    pub fn affinity(&self) -> &GroupAffinity {
        &self.affinity
    }

    /// Execute the configured algorithm.
    pub fn run(&self) -> TopKResult {
        self.execute(self.algorithm, self.consensus)
    }

    /// Execute the configured algorithm, recycling a caller-owned kernel
    /// workspace (see [`GrecaScratch`]) — bit-identical to
    /// [`PreparedQuery::run`], allocation-free after warmup.
    pub fn run_with_scratch(&self, scratch: &mut GrecaScratch) -> TopKResult {
        self.execute_with(self.algorithm, self.consensus, scratch)
    }

    /// Execute the configured algorithm under a different consensus
    /// function without re-preparing the lists (the consensus-sweep path
    /// of the §4.1/§4.2 experiments).
    pub fn run_with(&self, consensus: ConsensusFunction) -> TopKResult {
        self.execute(self.algorithm, consensus)
    }

    /// Execute a specific algorithm over the same prepared inputs (the
    /// `%SA` comparison path: GRECA vs TA vs naive on identical lists).
    pub fn run_algorithm(&self, algorithm: Algorithm) -> TopKResult {
        self.execute(algorithm, self.consensus)
    }

    /// [`PreparedQuery::run_algorithm`] with a recycled kernel
    /// workspace (only GRECA uses it; TA and naive take their own tiny
    /// per-run storage).
    pub fn run_algorithm_with(
        &self,
        algorithm: Algorithm,
        scratch: &mut GrecaScratch,
    ) -> TopKResult {
        self.execute_with(algorithm, self.consensus, scratch)
    }

    fn execute(&self, algorithm: Algorithm, consensus: ConsensusFunction) -> TopKResult {
        self.execute_with(algorithm, consensus, &mut GrecaScratch::new())
    }

    fn execute_with(
        &self,
        algorithm: Algorithm,
        consensus: ConsensusFunction,
        scratch: &mut GrecaScratch,
    ) -> TopKResult {
        let kernel_timer = crate::obs::phase(crate::obs::Phase::Kernel);
        let inputs = self.storage.views();
        let result = match algorithm {
            Algorithm::Greca(mut config) => {
                config.k = self.k;
                greca_topk_with(
                    &inputs,
                    &self.affinity,
                    consensus,
                    self.normalize_rpref,
                    config,
                    scratch,
                )
            }
            Algorithm::Ta(mut config) => {
                config.k = self.k;
                ta_topk(
                    &inputs,
                    &self.affinity,
                    consensus,
                    self.normalize_rpref,
                    config,
                )
            }
            Algorithm::Naive => naive_topk(
                &inputs,
                &self.affinity,
                consensus,
                self.normalize_rpref,
                self.k,
            ),
        };
        drop(kernel_timer);
        crate::obs::note_access(result.stats.sa, result.stats.ra);
        result
    }

    /// Exact consensus scores of every candidate item, descending (no
    /// access accounting; the verification/evaluation path).
    pub fn exact_scores(&self) -> Vec<(ItemId, f64)> {
        naive_scores(
            &self.storage.views(),
            &self.affinity,
            self.consensus,
            self.normalize_rpref,
        )
        .0
    }
}

/// Results of a [`run_batch`] execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query outcome, in input order.
    pub results: Vec<Result<TopKResult, QueryError>>,
    /// Access counters summed over the successful queries.
    pub stats: AccessStats,
    /// What the batch planner found in (and did with) the wave; `None`
    /// when the wave skipped analysis entirely (planner disabled, or
    /// fewer than two queries).
    pub plan: Option<crate::plan::PlanStats>,
}

impl BatchResult {
    /// The successful results, in input order.
    pub fn successes(&self) -> impl Iterator<Item = &TopKResult> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Mean ± stderr of `%SA` over the successful queries — the figures'
    /// "average over 20 random groups" aggregation.
    pub fn sa_percent_aggregate(&self) -> Aggregate {
        let samples: Vec<f64> = self.successes().map(|r| r.stats.sa_percent()).collect();
        Aggregate::of(&samples)
    }
}

/// Execute many prepared queries in parallel and aggregate their access
/// statistics — the §4.2 many-group harness path.
///
/// The wave first passes through the batch planner
/// ([`crate::plan::run_batch_with`] with default options): duplicate
/// queries are answered by one kernel run, and queries whose groups
/// overlap share per-member list resolution through a wave-scoped
/// [`SharedMemberState`] — both levers gated by the kernel-identity
/// invariant, so results are bit-identical to independent execution.
/// Waves with nothing to share run on the independent path unchanged.
/// Results keep input order; per-query failures surface as `Err`
/// entries without failing the batch.
pub fn run_batch(queries: &[GroupQuery<'_>]) -> BatchResult {
    crate::plan::run_batch_with(queries, &crate::plan::PlanOptions::default())
}

/// The planner-free execution core: every query runs independently over
/// `min(available_parallelism, #queries)` OS threads, spawned once per
/// batch and fed by a single shared atomic work queue (queries cost
/// wildly different amounts — group size, item count and period depth
/// all vary — so work-stealing beats static chunking). On a warm engine
/// every worker serves from the *same* `Arc<Substrate>` and
/// group-affinity cache instead of re-materializing per query.
pub(crate) fn run_batch_independent(
    queries: &[GroupQuery<'_>],
) -> Vec<Result<TopKResult, QueryError>> {
    let mut results: Vec<Option<Result<TopKResult, QueryError>>> = Vec::new();
    results.resize_with(queries.len(), || None);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.len().max(1));
    if workers <= 1 {
        for (slot, q) in results.iter_mut().zip(queries) {
            *slot = Some(q.run());
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<TopKResult, QueryError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(q) = queries.get(i) else { break };
                                out.push((i, q.run()));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            });
        for (i, r) in collected.into_iter().flatten() {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every query index visited"))
        .collect()
}

/// Access counters summed over a batch's successful queries.
pub(crate) fn sum_stats(results: &[Result<TopKResult, QueryError>]) -> AccessStats {
    let mut stats = AccessStats::default();
    for r in results.iter().filter_map(|r| r.as_ref().ok()) {
        stats.sa += r.stats.sa;
        stats.ra += r.stats.ra;
        stats.total_entries += r.stats.total_entries;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::TableAffinitySource;
    use greca_cf::RawRatings;
    use greca_dataset::{Granularity, RatingMatrixBuilder, Timeline};

    fn world() -> (greca_dataset::RatingMatrix, PopulationAffinity, Vec<ItemId>) {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(2), ItemId(3), 2.0, 0);
        let matrix = b.build();
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(1), UserId(2), 0.7);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        src.set_periodic(UserId(0), UserId(1), tl.periods()[0].start, 0.8);
        let users = vec![UserId(0), UserId(1), UserId(2)];
        let pop = PopulationAffinity::build(&src, &users, &tl);
        let items: Vec<ItemId> = (0..4).map(ItemId).collect();
        (matrix, pop, items)
    }

    #[test]
    fn cache_key_is_invariant_under_itemset_permutation() {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let shuffled = vec![ItemId(2), ItemId(0), ItemId(3), ItemId(1)];
        let a = engine.query(&group).items(&items).cache_key();
        let b = engine.query(&group).items(&shuffled).cache_key();
        assert_eq!(a, b, "permutations of one itemset share a key");
        // …and the results they stand for are indeed identical.
        assert_eq!(
            engine.query(&group).items(&items).run().unwrap(),
            engine.query(&group).items(&shuffled).run().unwrap(),
        );
    }

    #[test]
    fn cache_key_separates_every_scoring_parameter() {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);
        let g01 = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let g02 = Group::new(vec![UserId(0), UserId(2)]).unwrap();
        let base = || engine.query(&g01).items(&items);
        let key = base().cache_key();
        let variants = [
            engine.query(&g02).items(&items).cache_key(),
            base().items(&items[..3]).cache_key(),
            base().period(0).cache_key(),
            base().affinity(AffinityMode::StaticOnly).cache_key(),
            base().layout(ListLayout::Single).cache_key(),
            base()
                .consensus(ConsensusFunction::least_misery())
                .cache_key(),
            base()
                .consensus(ConsensusFunction::pairwise_disagreement(0.8))
                .cache_key(),
            base().normalize_rpref(false).cache_key(),
            base().top(3).cache_key(),
            base().algorithm(Algorithm::Naive).cache_key(),
            base()
                .algorithm(Algorithm::Greca(
                    GrecaConfig::top(10).check_interval(CheckInterval::Adaptive),
                ))
                .cache_key(),
            engine.query(&g01).cache_key(), // default (empty) itemset
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(&key, v, "variant {i} must not collide with the base key");
        }
        // The k inside an algorithm's config is overridden by the
        // query's own k, so it must not split the cache.
        assert_eq!(
            base()
                .algorithm(Algorithm::Greca(GrecaConfig::top(99)))
                .cache_key(),
            base()
                .algorithm(Algorithm::Greca(GrecaConfig::top(10)))
                .cache_key(),
        );
    }

    #[test]
    fn prepared_query_key_tracks_scoring_mutators() {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let prepared = engine.query(&group).items(&items).prepare().unwrap();
        assert_eq!(
            prepared.cache_key(),
            Some(&engine.query(&group).items(&items).cache_key())
        );
        let retargeted = prepared.top(3).consensus(ConsensusFunction::least_misery());
        assert_eq!(
            retargeted.cache_key(),
            Some(
                &engine
                    .query(&group)
                    .items(&items)
                    .top(3)
                    .consensus(ConsensusFunction::least_misery())
                    .cache_key()
            )
        );
        // Hand-assembled preparations have no engine-scoped key.
        let affinity = pop.group_view(&group, 0, AffinityMode::Discrete);
        let lists = greca_cf::group_preference_lists(&raw, &group, &items).unwrap();
        let hand =
            PreparedQuery::from_parts(affinity, &lists, ListLayout::Decomposed, true).unwrap();
        assert_eq!(hand.cache_key(), None);
    }

    #[test]
    fn scratch_pool_memory_returns_to_the_cap_after_a_wide_wave() {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);
        // A wave at parallelism far above the cap: 2×MAX workspaces
        // live at once, then all returned. Only MAX may be retained.
        let held: Vec<GrecaScratch> = (0..SCRATCH_POOL_MAX * 2)
            .map(|_| engine.checkout_scratch())
            .collect();
        for s in held {
            engine.restore_scratch(s);
        }
        assert_eq!(engine.pooled_scratches(), SCRATCH_POOL_MAX);
        assert!(engine.pooled_scratch_bytes() <= SCRATCH_POOL_BYTE_BUDGET);

        // A workspace that alone exceeds the byte budget is dropped,
        // not pooled — and the pool keeps working for normal ones.
        let engine = GrecaEngine::new(&raw, &pop);
        let mut huge = engine.checkout_scratch();
        huge.inflate_for_test(SCRATCH_POOL_BYTE_BUDGET + 1);
        assert!(huge.memory_bytes() > SCRATCH_POOL_BYTE_BUDGET);
        engine.restore_scratch(huge);
        assert_eq!(engine.pooled_scratches(), 0);
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        engine.query(&group).items(&items).run().unwrap();
        assert_eq!(engine.pooled_scratches(), 1);
    }

    #[test]
    fn poisoned_shared_caches_recover_instead_of_wedging() {
        let (matrix, pop, items) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        engine.query(&group).items(&items).run().unwrap();
        assert_eq!(engine.cached_affinity_views(), 1);
        assert_eq!(engine.pooled_scratches(), 1);

        // Poison both shared mutexes the way a panicking worker would:
        // die while holding the lock.
        let cache = Arc::clone(&engine.affinity_cache);
        let pool = Arc::clone(&engine.scratch_pool);
        std::thread::spawn(move || {
            let _c = cache.lock().unwrap();
            let _p = pool.lock().unwrap();
            panic!("worker panic while holding the cache locks");
        })
        .join()
        .unwrap_err();
        assert!(engine.affinity_cache.is_poisoned());
        assert!(engine.scratch_pool.is_poisoned());

        // Queries keep working: the poisoned state is cleared once and
        // both caches resume caching (not silently disabled).
        let r = engine.query(&group).items(&items).run().unwrap();
        assert_eq!(r, engine.query(&group).items(&items).run().unwrap());
        assert!(!engine.affinity_cache.is_poisoned(), "flag cleared");
        assert_eq!(engine.cached_affinity_views(), 1, "cache refilled");
        assert_eq!(engine.pooled_scratches(), 1, "pool refilled");
    }
}
