//! Access accounting: sequential (SA) and random (RA) accesses.
//!
//! The paper's efficiency results (Figures 5–8) report the **average
//! percentage of SAs** an algorithm performs relative to a naive full
//! scan of all lists; "a smaller percentage exhibits higher scalability"
//! (§4.2). `AccessStats` tracks both access kinds so the TA baseline's RA
//! cost is visible too.

use serde::{Deserialize, Serialize};

/// Counters for one algorithm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Sequential accesses performed (sorted-list entry reads).
    pub sa: u64,
    /// Random accesses performed (point lookups by id).
    pub ra: u64,
    /// Total entries across all input lists (the naive algorithm's SA count).
    pub total_entries: u64,
}

impl AccessStats {
    /// Fresh counters for inputs with the given total entry count.
    pub fn new(total_entries: u64) -> Self {
        AccessStats {
            sa: 0,
            ra: 0,
            total_entries,
        }
    }

    /// Record one sequential access.
    #[inline]
    pub fn record_sa(&mut self) {
        self.sa += 1;
    }

    /// Record one random access.
    #[inline]
    pub fn record_ra(&mut self) {
        self.ra += 1;
    }

    /// All accesses.
    pub fn total_accesses(&self) -> u64 {
        self.sa + self.ra
    }

    /// The paper's headline metric: `% SA = 100 · sa / total_entries`.
    pub fn sa_percent(&self) -> f64 {
        if self.total_entries == 0 {
            0.0
        } else {
            100.0 * self.sa as f64 / self.total_entries as f64
        }
    }

    /// "Saveup": the fraction of entries *not* read, in percent
    /// (the paper reports "a save up of 75% or beyond").
    pub fn saveup_percent(&self) -> f64 {
        100.0 - self.sa_percent()
    }
}

/// Mean/stderr aggregation of a metric over several runs — the figures
/// report averages over 20 random groups "with standard error bars".
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
}

impl Aggregate {
    /// Aggregate a slice of samples.
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Aggregate::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Aggregate {
                n,
                mean,
                std_err: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        Aggregate {
            n,
            mean,
            std_err: (var / n as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let mut s = AccessStats::new(200);
        for _ in 0..50 {
            s.record_sa();
        }
        s.record_ra();
        assert_eq!(s.sa, 50);
        assert_eq!(s.ra, 1);
        assert_eq!(s.total_accesses(), 51);
        assert!((s.sa_percent() - 25.0).abs() < 1e-12);
        assert!((s.saveup_percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_have_zero_percent() {
        let s = AccessStats::new(0);
        assert_eq!(s.sa_percent(), 0.0);
    }

    #[test]
    fn aggregate_mean_and_stderr() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.n, 3);
        assert!((a.mean - 2.0).abs() < 1e-12);
        // sample var = 1, stderr = sqrt(1/3).
        assert!((a.std_err - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregate_degenerate_cases() {
        assert_eq!(Aggregate::of(&[]).n, 0);
        let one = Aggregate::of(&[5.0]);
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.std_err, 0.0);
    }
}
