//! The sorted-list inputs of GRECA (§3.1).
//!
//! For a group of `n` users at query period `p` with `T = p+1` aggregated
//! periods, GRECA scans:
//!
//! * `n` **preference lists** `PL_u` (`m` items each, score-descending);
//! * the **static affinity lists** `LaffS` — either decomposed into
//!   `n−1` per-user lists (the paper's layout: "the i-th list stands for
//!   user u_i with n−i entries") or one combined list with `n(n−1)/2`
//!   entries (the alternative §3.1 mentions; kept for the ablation bench);
//! * `T` sets of **periodic affinity lists** `LaffV`, same layout.
//!
//! Every list is sorted descending, is read only by sequential accesses,
//! and exposes its *cursor*: the value of the most recently read entry,
//! which upper-bounds everything below it.

use greca_affinity::GroupAffinity;
use greca_cf::PreferenceList;
use serde::{Deserialize, Serialize};

/// What a list contains (and thus what its entry ids mean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ListKind {
    /// `PL_u` of the member at this index; entry ids are item ids.
    Preference {
        /// Index of the owning member within the group.
        member: u32,
    },
    /// Static affinity list; entry ids are group pair indices.
    StaticAffinity,
    /// Periodic affinity list for one period; entry ids are pair indices.
    PeriodicAffinity {
        /// 0-based period index.
        period: u32,
    },
}

/// One sorted, sequentially-accessed input list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedList {
    /// What the entries mean.
    pub kind: ListKind,
    /// `(id, score)` sorted by descending score.
    pub entries: Vec<(u32, f64)>,
}

impl SortedList {
    /// Build, sorting entries descending (ties by id for determinism).
    pub fn new(kind: ListKind, mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then_with(|| a.0.cmp(&b.0))
        });
        SortedList { kind, entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A read cursor over one list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cursor {
    /// Next entry index to read.
    pub pos: usize,
    /// Value of the last entry read; upper-bounds all unread entries.
    /// Starts at `+∞` conceptually; we store the first entry's score
    /// until a read happens (sound: entries are sorted descending).
    pub bound: f64,
}

/// How affinity lists are laid out (§3.1 discusses both; the decomposed
/// layout "allows us to design efficient algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ListLayout {
    /// `n−1` lists per affinity kind, the i-th holding user u_i's pairs.
    #[default]
    Decomposed,
    /// A single list with all `n(n−1)/2` pairs per affinity kind.
    Single,
}

/// All inputs for one GRECA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrecaInputs {
    /// Preference lists, one per member (member order = group order).
    pub pref_lists: Vec<SortedList>,
    /// Static affinity lists (empty when the mode ignores static affinity).
    pub static_lists: Vec<SortedList>,
    /// Periodic affinity lists, grouped per period (empty when the mode is
    /// not temporal).
    pub period_lists: Vec<Vec<SortedList>>,
    /// Number of group members.
    pub num_members: usize,
    /// Number of group pairs.
    pub num_pairs: usize,
    /// Number of candidate items.
    pub num_items: usize,
}

impl GrecaInputs {
    /// Assemble the inputs from per-member preference lists and the
    /// group's affinity view.
    ///
    /// All preference lists must rank the same candidate item set; this
    /// is how §2.4's problem statement is posed (one itemset `I`).
    pub fn build(
        pref_lists: &[PreferenceList],
        affinity: &GroupAffinity,
        layout: ListLayout,
    ) -> Self {
        let n = affinity.members().len();
        assert_eq!(pref_lists.len(), n, "one preference list per group member");
        let num_items = pref_lists.first().map_or(0, |l| l.len());
        for l in pref_lists {
            assert_eq!(l.len(), num_items, "preference lists must align");
        }
        let plists: Vec<SortedList> = pref_lists
            .iter()
            .enumerate()
            .map(|(idx, pl)| {
                SortedList::new(
                    ListKind::Preference { member: idx as u32 },
                    pl.entries.iter().map(|&(i, s)| (i.0, s)).collect(),
                )
            })
            .collect();

        let num_pairs = affinity.num_pairs();
        let mode = affinity.mode();
        let static_lists = if mode.uses_static() {
            build_affinity_lists(affinity, layout, ListKind::StaticAffinity, |pair| {
                affinity.static_component(pair)
            })
        } else {
            Vec::new()
        };
        let period_lists = if mode.is_temporal() {
            (0..affinity.num_periods())
                .map(|p| {
                    build_affinity_lists(
                        affinity,
                        layout,
                        ListKind::PeriodicAffinity { period: p as u32 },
                        |pair| affinity.period_component(p, pair),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        GrecaInputs {
            pref_lists: plists,
            static_lists,
            period_lists,
            num_members: n,
            num_pairs,
            num_items,
        }
    }

    /// Every list in round-robin order: preference lists first, then
    /// static, then each period's lists (§3.2's "round-robin fashion over
    /// the aforementioned lists").
    pub fn all_lists(&self) -> impl Iterator<Item = &SortedList> {
        self.pref_lists
            .iter()
            .chain(self.static_lists.iter())
            .chain(self.period_lists.iter().flatten())
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.pref_lists.len()
            + self.static_lists.len()
            + self.period_lists.iter().map(Vec::len).sum::<usize>()
    }

    /// Total entries across all lists — the denominator of `%SA` and the
    /// SA count of the naive algorithm.
    pub fn total_entries(&self) -> u64 {
        self.all_lists().map(|l| l.len() as u64).sum()
    }
}

fn build_affinity_lists(
    affinity: &GroupAffinity,
    layout: ListLayout,
    kind: ListKind,
    component: impl Fn(usize) -> f64,
) -> Vec<SortedList> {
    let n = affinity.members().len();
    match layout {
        ListLayout::Single => {
            let entries: Vec<(u32, f64)> = (0..affinity.num_pairs())
                .map(|pair| (pair as u32, component(pair)))
                .collect();
            vec![SortedList::new(kind, entries)]
        }
        ListLayout::Decomposed => {
            // The i-th list holds u_i's pairs (u_i, u_j) for j > i: n−1
            // lists (the last user's list would be empty and is skipped,
            // exactly as in the running example of §3.1).
            let members = affinity.members();
            (0..n.saturating_sub(1))
                .map(|i| {
                    let entries: Vec<(u32, f64)> = ((i + 1)..n)
                        .map(|j| {
                            let pair = affinity
                                .pair_of(members[i], members[j])
                                .expect("members are in the group");
                            (pair as u32, component(pair))
                        })
                        .collect();
                    SortedList::new(kind, entries)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::AffinityMode;
    use greca_dataset::{ItemId, UserId};

    fn affinity(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            mode,
            vec![1.0, 0.2, 0.3],
            vec![vec![0.8, 0.1, 0.2], vec![0.7, 0.1, 0.1]],
            vec![0.37, 0.3],
        )
    }

    fn pls() -> Vec<PreferenceList> {
        vec![
            PreferenceList::from_entries(
                UserId(0),
                vec![(ItemId(0), 5.0), (ItemId(1), 1.0), (ItemId(2), 1.0)],
            ),
            PreferenceList::from_entries(
                UserId(1),
                vec![(ItemId(0), 5.0), (ItemId(1), 1.0), (ItemId(2), 0.5)],
            ),
            PreferenceList::from_entries(
                UserId(2),
                vec![(ItemId(2), 2.0), (ItemId(0), 2.0), (ItemId(1), 1.0)],
            ),
        ]
    }

    #[test]
    fn sorted_list_sorts_desc_with_id_ties() {
        let l = SortedList::new(ListKind::StaticAffinity, vec![(2, 0.5), (0, 0.5), (1, 0.9)]);
        let ids: Vec<u32> = l.entries.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![1, 0, 2]);
    }

    #[test]
    fn decomposed_layout_matches_running_example() {
        // §3.1: LaffS(u1) holds u1's two pairs, LaffS(u2) holds one, and
        // "no static affinity list needs to be created for user u3".
        let inputs = GrecaInputs::build(
            &pls(),
            &affinity(AffinityMode::Discrete),
            ListLayout::Decomposed,
        );
        assert_eq!(inputs.static_lists.len(), 2);
        assert_eq!(inputs.static_lists[0].len(), 2);
        assert_eq!(inputs.static_lists[1].len(), 1);
        assert_eq!(inputs.period_lists.len(), 2);
        assert_eq!(inputs.period_lists[0].len(), 2);
        // 3 pref lists + 2 static + 2×2 periodic = 9 lists.
        assert_eq!(inputs.num_lists(), 9);
        // Entries: 3×3 + 3 + 2×3 = 18.
        assert_eq!(inputs.total_entries(), 18);
    }

    #[test]
    fn single_layout_has_one_list_per_kind() {
        let inputs = GrecaInputs::build(
            &pls(),
            &affinity(AffinityMode::Discrete),
            ListLayout::Single,
        );
        assert_eq!(inputs.static_lists.len(), 1);
        assert_eq!(inputs.static_lists[0].len(), 3);
        assert_eq!(inputs.period_lists[0].len(), 1);
        assert_eq!(inputs.total_entries(), 18, "same entries either layout");
    }

    #[test]
    fn affinity_agnostic_mode_has_no_affinity_lists() {
        let inputs = GrecaInputs::build(
            &pls(),
            &affinity(AffinityMode::None),
            ListLayout::Decomposed,
        );
        assert!(inputs.static_lists.is_empty());
        assert!(inputs.period_lists.is_empty());
        assert_eq!(inputs.total_entries(), 9);
    }

    #[test]
    fn static_only_mode_has_no_period_lists() {
        let inputs = GrecaInputs::build(
            &pls(),
            &affinity(AffinityMode::StaticOnly),
            ListLayout::Decomposed,
        );
        assert_eq!(inputs.static_lists.len(), 2);
        assert!(inputs.period_lists.is_empty());
    }

    #[test]
    fn affinity_lists_sorted_desc() {
        let inputs = GrecaInputs::build(
            &pls(),
            &affinity(AffinityMode::Discrete),
            ListLayout::Single,
        );
        for l in inputs.all_lists() {
            for w in l.entries.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_pref_lists_rejected() {
        let mut lists = pls();
        lists[1].entries.pop();
        let _ = GrecaInputs::build(
            &lists,
            &affinity(AffinityMode::Discrete),
            ListLayout::Decomposed,
        );
    }
}
