//! The sorted-list inputs of GRECA (§3.1): owned storage and borrowed
//! views.
//!
//! For a group of `n` users at query period `p` with `T = p+1` aggregated
//! periods, GRECA scans:
//!
//! * `n` **preference lists** `PL_u` (`m` items each, score-descending);
//! * the **static affinity lists** `LaffS` — either decomposed into
//!   `n−1` per-user lists (the paper's layout: "the i-th list stands for
//!   user u_i with n−i entries") or one combined list with `n(n−1)/2`
//!   entries (the alternative §3.1 mentions; kept for the ablation bench);
//! * `T` sets of **periodic affinity lists** `LaffV`, same layout.
//!
//! Every list is sorted descending, is read only by sequential accesses,
//! and exposes its *cursor*: the value of the most recently read entry,
//! which upper-bounds everything below it.
//!
//! ## View vs. owned storage
//!
//! The algorithms (`greca`, `ta`, `naive`) never touch owned storage:
//! they execute over [`GrecaInputs`], a bundle of [`ListView`]s —
//! borrowed, columnar `(ids, scores)` slices with no lifecycle of their
//! own. Two storage shapes produce those views:
//!
//! * [`SortedList`] / [`MaterializedInputs`] — per-query owned columnar
//!   buffers, built by sorting (the cold path, and the hand-built-table
//!   path of the running example);
//! * [`crate::substrate::Substrate`] — engine-lifetime shared buffers,
//!   precomputed once and sliced zero-copy per query (the warm path).
//!
//! Keeping views slice-backed is what makes the warm path *zero-copy*:
//! a full-universe query's preference "lists" are literally the
//! substrate's segments, and per-query state shrinks to cursors plus the
//! interval bookkeeping in [`crate::interval`] / [`crate::score`].

use greca_affinity::GroupAffinity;
use greca_cf::PreferenceList;
use serde::{Deserialize, Serialize};

/// What a list contains (and thus what its entry ids mean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ListKind {
    /// `PL_u` of the member at this index; entry ids are item ids.
    Preference {
        /// Index of the owning member within the group.
        member: u32,
    },
    /// Static affinity list; entry ids are group pair indices.
    StaticAffinity,
    /// Periodic affinity list for one period; entry ids are pair indices.
    PeriodicAffinity {
        /// 0-based period index.
        period: u32,
    },
}

/// A non-finite value rejected at list ingestion.
///
/// Carried up to the query layer as
/// [`QueryError::NonFiniteScore`](crate::query::QueryError::NonFiniteScore)
/// instead of panicking inside a sort comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteEntry {
    /// The list the value was destined for.
    pub kind: ListKind,
    /// The entry id (item id or pair index).
    pub id: u32,
    /// The offending value (NaN or ±∞).
    pub value: f64,
}

impl std::fmt::Display for NonFiniteEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite score {} for entry {} of {:?} list",
            self.value, self.id, self.kind
        )
    }
}

impl std::error::Error for NonFiniteEntry {}

/// A borrowed, read-only view of one sorted list: columnar `(ids,
/// scores)` slices. This is the only shape the algorithms consume;
/// copying a view copies two fat pointers, never entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListView<'a> {
    /// What the entries mean.
    pub kind: ListKind,
    /// Entry ids, aligned with `scores`.
    pub ids: &'a [u32],
    /// Entry scores, descending.
    pub scores: &'a [f64],
}

impl<'a> ListView<'a> {
    /// Wrap aligned columnar slices.
    #[inline]
    pub fn new(kind: ListKind, ids: &'a [u32], scores: &'a [f64]) -> Self {
        debug_assert_eq!(ids.len(), scores.len(), "columns must align");
        ListView { kind, ids, scores }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `(id, score)` entry at `pos`.
    #[inline]
    pub fn entry(&self, pos: usize) -> (u32, f64) {
        (self.ids[pos], self.scores[pos])
    }

    /// Score of the first (largest) entry, if any.
    #[inline]
    pub fn first_score(&self) -> Option<f64> {
        self.scores.first().copied()
    }

    /// Score of the last (smallest) entry, if any.
    #[inline]
    pub fn last_score(&self) -> Option<f64> {
        self.scores.last().copied()
    }

    /// Iterate `(id, score)` entries in list order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.ids.iter().copied().zip(self.scores.iter().copied())
    }

    /// Whether any entry carries `id` (affinity lists are tiny — ≤ n−1
    /// entries — so a linear probe beats a side index).
    #[inline]
    pub fn contains_id(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }
}

/// One sorted, sequentially-accessed input list — the *owned* columnar
/// storage behind a [`ListView`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedList {
    /// What the entries mean.
    pub kind: ListKind,
    ids: Vec<u32>,
    scores: Vec<f64>,
}

impl SortedList {
    /// Build, sorting entries descending (ties by id for determinism).
    ///
    /// Non-finite scores are rejected here, at ingestion, instead of
    /// panicking in the sort comparator.
    pub fn new(kind: ListKind, entries: Vec<(u32, f64)>) -> Result<Self, NonFiniteEntry> {
        let mut entries = entries;
        for &(id, value) in &entries {
            if !value.is_finite() {
                return Err(NonFiniteEntry { kind, id, value });
            }
        }
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("validated finite above")
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut ids = Vec::with_capacity(entries.len());
        let mut scores = Vec::with_capacity(entries.len());
        for (id, s) in entries {
            ids.push(id);
            scores.push(s);
        }
        Ok(SortedList { kind, ids, scores })
    }

    /// Adopt columns that are **already** sorted descending with ties by
    /// id — the zero-sort path for entries whose order was established
    /// elsewhere (a substrate segment filter, a rank-ordered selection).
    pub fn from_sorted_columns(kind: ListKind, ids: Vec<u32>, scores: Vec<f64>) -> Self {
        assert_eq!(ids.len(), scores.len(), "columns must align");
        debug_assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "columns must arrive sorted descending"
        );
        SortedList { kind, ids, scores }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The borrowed view the algorithms execute over.
    #[inline]
    pub fn as_view(&self) -> ListView<'_> {
        ListView::new(self.kind, &self.ids, &self.scores)
    }

    /// A view with the kind overridden — the re-kinding path for lists
    /// shared across queries. A member's sorted columns are identical
    /// for every group the member belongs to, but
    /// [`ListKind::Preference`] carries the *group-local* member index;
    /// shared storage keeps lists member-agnostic and each query views
    /// them under its own index.
    #[inline]
    pub fn view_as(&self, kind: ListKind) -> ListView<'_> {
        ListView::new(kind, &self.ids, &self.scores)
    }

    /// Iterate `(id, score)` entries in list order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.as_view().iter()
    }
}

/// A read cursor over one list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cursor {
    /// Next entry index to read.
    pub pos: usize,
    /// Value of the last entry read; upper-bounds all unread entries.
    /// Starts at `+∞` conceptually; we store the first entry's score
    /// until a read happens (sound: entries are sorted descending).
    pub bound: f64,
}

/// How affinity lists are laid out (§3.1 discusses both; the decomposed
/// layout "allows us to design efficient algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ListLayout {
    /// `n−1` lists per affinity kind, the i-th holding user u_i's pairs.
    #[default]
    Decomposed,
    /// A single list with all `n(n−1)/2` pairs per affinity kind.
    Single,
}

/// Sentinel for "no affinity list holds this pair" in the membership
/// tables of [`GrecaInputs`].
const NO_LIST: u32 = u32::MAX;

/// All inputs for one algorithm execution, as borrowed views.
///
/// This is what [`crate::greca::greca_topk`], [`crate::ta::ta_topk`] and
/// [`crate::naive::naive_topk`] consume. It borrows from whichever
/// storage backs the query — per-query [`MaterializedInputs`] or the
/// engine's shared [`crate::substrate::Substrate`] — and costs only the
/// view vectors (plus two tiny pair-membership tables) to assemble.
///
/// Construct via [`GrecaInputs::assemble`], which derives the
/// pair-affinity membership tables ([`GrecaInputs::static_list_of`] /
/// [`GrecaInputs::period_list_of`]) the GRECA kernel's cursor bounds
/// read instead of linearly scanning list ids.
#[derive(Debug, Clone, PartialEq)]
pub struct GrecaInputs<'a> {
    /// Preference lists, one per member (member order = group order).
    pub pref_lists: Vec<ListView<'a>>,
    /// Static affinity lists (empty when the mode ignores static affinity).
    pub static_lists: Vec<ListView<'a>>,
    /// Periodic affinity lists, grouped per period (empty when the mode is
    /// not temporal).
    pub period_lists: Vec<Vec<ListView<'a>>>,
    /// Number of group members.
    pub num_members: usize,
    /// Number of group pairs.
    pub num_pairs: usize,
    /// Number of candidate items.
    pub num_items: usize,
    /// For each pair, the index into `static_lists` of the (single) list
    /// holding it, or [`NO_LIST`].
    static_list_of_pair: Vec<u32>,
    /// Flattened `[period · num_pairs + pair]` → index into
    /// `period_lists[period]`, or [`NO_LIST`].
    period_list_of_pair: Vec<u32>,
}

impl<'a> GrecaInputs<'a> {
    /// Assemble the inputs, deriving the pair-membership tables from the
    /// affinity lists' entry ids (each pair lives in exactly one list per
    /// affinity kind under either [`ListLayout`]; the derivation simply
    /// records where).
    ///
    /// Contract: every preference list ranks the same itemset (the
    /// execution kernel indexes its arena by list 0's ids and panics on
    /// an id the other lists don't share), and affinity entry ids are
    /// group pair indices `< num_pairs`.
    pub fn assemble(
        pref_lists: Vec<ListView<'a>>,
        static_lists: Vec<ListView<'a>>,
        period_lists: Vec<Vec<ListView<'a>>>,
        num_members: usize,
        num_pairs: usize,
        num_items: usize,
    ) -> Self {
        let mut static_list_of_pair = vec![NO_LIST; num_pairs];
        for (off, l) in static_lists.iter().enumerate() {
            for &pair in l.ids {
                static_list_of_pair[pair as usize] = off as u32;
            }
        }
        let mut period_list_of_pair = vec![NO_LIST; num_pairs * period_lists.len()];
        for (p, lists) in period_lists.iter().enumerate() {
            for (off, l) in lists.iter().enumerate() {
                for &pair in l.ids {
                    period_list_of_pair[p * num_pairs + pair as usize] = off as u32;
                }
            }
        }
        GrecaInputs {
            pref_lists,
            static_lists,
            period_lists,
            num_members,
            num_pairs,
            num_items,
            static_list_of_pair,
            period_list_of_pair,
        }
    }

    /// Index into [`GrecaInputs::static_lists`] of the list holding
    /// `pair`, if any. O(1) — precomputed at assembly.
    #[inline]
    pub fn static_list_of(&self, pair: usize) -> Option<usize> {
        match self.static_list_of_pair.get(pair).copied() {
            Some(off) if off != NO_LIST => Some(off as usize),
            _ => None,
        }
    }

    /// Index into `period_lists[period]` of the list holding `pair`, if
    /// any. O(1) — precomputed at assembly.
    #[inline]
    pub fn period_list_of(&self, period: usize, pair: usize) -> Option<usize> {
        match self
            .period_list_of_pair
            .get(period * self.num_pairs + pair)
            .copied()
        {
            Some(off) if off != NO_LIST => Some(off as usize),
            _ => None,
        }
    }

    /// Every list in round-robin order: preference lists first, then
    /// static, then each period's lists (§3.2's "round-robin fashion over
    /// the aforementioned lists").
    pub fn all_lists(&self) -> impl Iterator<Item = ListView<'a>> + '_ {
        self.pref_lists
            .iter()
            .chain(self.static_lists.iter())
            .chain(self.period_lists.iter().flatten())
            .copied()
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.pref_lists.len()
            + self.static_lists.len()
            + self.period_lists.iter().map(Vec::len).sum::<usize>()
    }

    /// Total entries across all lists — the denominator of `%SA` and the
    /// SA count of the naive algorithm.
    pub fn total_entries(&self) -> u64 {
        self.all_lists().map(|l| l.len() as u64).sum()
    }
}

/// Per-query owned list storage (the *cold* path): every list sorted
/// and buffered for this query alone.
///
/// [`MaterializedInputs::views`] hands the algorithms their
/// [`GrecaInputs`]. The warm path never builds this type — see
/// [`crate::substrate::Substrate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedInputs {
    /// Preference lists, one per member (member order = group order).
    pub pref_lists: Vec<SortedList>,
    /// Static affinity lists (empty when the mode ignores static affinity).
    pub static_lists: Vec<SortedList>,
    /// Periodic affinity lists, grouped per period.
    pub period_lists: Vec<Vec<SortedList>>,
    /// Number of group members.
    pub num_members: usize,
    /// Number of group pairs.
    pub num_pairs: usize,
    /// Number of candidate items.
    pub num_items: usize,
}

impl MaterializedInputs {
    /// Assemble the inputs from per-member preference lists and the
    /// group's affinity view, sorting every list.
    ///
    /// All preference lists must rank the same candidate item set; this
    /// is how §2.4's problem statement is posed (one itemset `I`).
    pub fn build(
        pref_lists: &[PreferenceList],
        affinity: &GroupAffinity,
        layout: ListLayout,
    ) -> Result<Self, NonFiniteEntry> {
        let n = affinity.members().len();
        assert_eq!(pref_lists.len(), n, "one preference list per group member");
        let num_items = pref_lists.first().map_or(0, |l| l.len());
        for l in pref_lists {
            assert_eq!(l.len(), num_items, "preference lists must align");
        }
        let plists: Vec<SortedList> = pref_lists
            .iter()
            .enumerate()
            .map(|(idx, pl)| {
                SortedList::new(
                    ListKind::Preference { member: idx as u32 },
                    pl.entries.iter().map(|&(i, s)| (i.0, s)).collect(),
                )
            })
            .collect::<Result<_, _>>()?;

        let num_pairs = affinity.num_pairs();
        let (static_lists, period_lists) = group_affinity_list_sets(affinity, layout)?;
        Ok(MaterializedInputs {
            pref_lists: plists,
            static_lists,
            period_lists,
            num_members: n,
            num_pairs,
            num_items,
        })
    }

    /// The borrowed views the algorithms execute over.
    pub fn views(&self) -> GrecaInputs<'_> {
        GrecaInputs::assemble(
            self.pref_lists.iter().map(SortedList::as_view).collect(),
            self.static_lists.iter().map(SortedList::as_view).collect(),
            self.period_lists
                .iter()
                .map(|ls| ls.iter().map(SortedList::as_view).collect())
                .collect(),
            self.num_members,
            self.num_pairs,
            self.num_items,
        )
    }

    /// Total entries across all lists.
    pub fn total_entries(&self) -> u64 {
        self.views().total_entries()
    }
}

/// Both affinity list sets (static + per-period) for one group view —
/// the mode-gated assembly shared by [`MaterializedInputs::build`] and
/// the cross-query shared-state preparation path in `crate::query`.
pub(crate) fn group_affinity_list_sets(
    affinity: &GroupAffinity,
    layout: ListLayout,
) -> Result<(Vec<SortedList>, Vec<Vec<SortedList>>), NonFiniteEntry> {
    let mode = affinity.mode();
    let static_lists = if mode.uses_static() {
        build_affinity_lists(affinity, layout, ListKind::StaticAffinity, |pair| {
            affinity.static_component(pair)
        })?
    } else {
        Vec::new()
    };
    let period_lists = if mode.is_temporal() {
        (0..affinity.num_periods())
            .map(|p| {
                build_affinity_lists(
                    affinity,
                    layout,
                    ListKind::PeriodicAffinity { period: p as u32 },
                    |pair| affinity.period_component(p, pair),
                )
            })
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    Ok((static_lists, period_lists))
}

/// Build one affinity kind's lists from a group view's components,
/// sorting each list (tiny: ≤ n−1 entries each).
pub(crate) fn build_affinity_lists(
    affinity: &GroupAffinity,
    layout: ListLayout,
    kind: ListKind,
    component: impl Fn(usize) -> f64,
) -> Result<Vec<SortedList>, NonFiniteEntry> {
    let n = affinity.members().len();
    match layout {
        ListLayout::Single => {
            let entries: Vec<(u32, f64)> = (0..affinity.num_pairs())
                .map(|pair| (pair as u32, component(pair)))
                .collect();
            Ok(vec![SortedList::new(kind, entries)?])
        }
        ListLayout::Decomposed => {
            // The i-th list holds u_i's pairs (u_i, u_j) for j > i: n−1
            // lists (the last user's list would be empty and is skipped,
            // exactly as in the running example of §3.1).
            let members = affinity.members();
            (0..n.saturating_sub(1))
                .map(|i| {
                    let entries: Vec<(u32, f64)> = ((i + 1)..n)
                        .map(|j| {
                            let pair = affinity
                                .pair_of(members[i], members[j])
                                .expect("members are in the group");
                            (pair as u32, component(pair))
                        })
                        .collect();
                    SortedList::new(kind, entries)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::AffinityMode;
    use greca_dataset::{ItemId, UserId};

    fn affinity(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            mode,
            vec![1.0, 0.2, 0.3],
            vec![vec![0.8, 0.1, 0.2], vec![0.7, 0.1, 0.1]],
            vec![0.37, 0.3],
        )
    }

    fn pls() -> Vec<PreferenceList> {
        vec![
            PreferenceList::from_entries(
                UserId(0),
                vec![(ItemId(0), 5.0), (ItemId(1), 1.0), (ItemId(2), 1.0)],
            )
            .unwrap(),
            PreferenceList::from_entries(
                UserId(1),
                vec![(ItemId(0), 5.0), (ItemId(1), 1.0), (ItemId(2), 0.5)],
            )
            .unwrap(),
            PreferenceList::from_entries(
                UserId(2),
                vec![(ItemId(2), 2.0), (ItemId(0), 2.0), (ItemId(1), 1.0)],
            )
            .unwrap(),
        ]
    }

    fn build(mode: AffinityMode, layout: ListLayout) -> MaterializedInputs {
        MaterializedInputs::build(&pls(), &affinity(mode), layout).expect("finite inputs")
    }

    #[test]
    fn sorted_list_sorts_desc_with_id_ties() {
        let l =
            SortedList::new(ListKind::StaticAffinity, vec![(2, 0.5), (0, 0.5), (1, 0.9)]).unwrap();
        let ids: Vec<u32> = l.as_view().ids.to_vec();
        assert_eq!(ids, vec![1, 0, 2]);
    }

    #[test]
    fn non_finite_entries_rejected() {
        let err = SortedList::new(
            ListKind::PeriodicAffinity { period: 1 },
            vec![(0, 0.5), (3, f64::NAN)],
        )
        .unwrap_err();
        assert_eq!(err.id, 3);
        assert_eq!(err.kind, ListKind::PeriodicAffinity { period: 1 });
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn views_mirror_owned_storage() {
        let l = SortedList::new(ListKind::StaticAffinity, vec![(7, 0.25), (1, 0.75)]).unwrap();
        let v = l.as_view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.entry(0), (1, 0.75));
        assert_eq!(v.first_score(), Some(0.75));
        assert_eq!(v.last_score(), Some(0.25));
        assert!(v.contains_id(7) && !v.contains_id(2));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(1, 0.75), (7, 0.25)]);
    }

    #[test]
    fn decomposed_layout_matches_running_example() {
        // §3.1: LaffS(u1) holds u1's two pairs, LaffS(u2) holds one, and
        // "no static affinity list needs to be created for user u3".
        let inputs = build(AffinityMode::Discrete, ListLayout::Decomposed);
        assert_eq!(inputs.static_lists.len(), 2);
        assert_eq!(inputs.static_lists[0].len(), 2);
        assert_eq!(inputs.static_lists[1].len(), 1);
        assert_eq!(inputs.period_lists.len(), 2);
        assert_eq!(inputs.period_lists[0].len(), 2);
        let views = inputs.views();
        // 3 pref lists + 2 static + 2×2 periodic = 9 lists.
        assert_eq!(views.num_lists(), 9);
        // Entries: 3×3 + 3 + 2×3 = 18.
        assert_eq!(views.total_entries(), 18);
    }

    #[test]
    fn single_layout_has_one_list_per_kind() {
        let inputs = build(AffinityMode::Discrete, ListLayout::Single);
        assert_eq!(inputs.static_lists.len(), 1);
        assert_eq!(inputs.static_lists[0].len(), 3);
        assert_eq!(inputs.period_lists[0].len(), 1);
        assert_eq!(inputs.total_entries(), 18, "same entries either layout");
    }

    #[test]
    fn affinity_agnostic_mode_has_no_affinity_lists() {
        let inputs = build(AffinityMode::None, ListLayout::Decomposed);
        assert!(inputs.static_lists.is_empty());
        assert!(inputs.period_lists.is_empty());
        assert_eq!(inputs.total_entries(), 9);
    }

    #[test]
    fn static_only_mode_has_no_period_lists() {
        let inputs = build(AffinityMode::StaticOnly, ListLayout::Decomposed);
        assert_eq!(inputs.static_lists.len(), 2);
        assert!(inputs.period_lists.is_empty());
    }

    /// The precomputed membership tables must agree with a linear scan
    /// of the list ids for every pair, for both static and periodic
    /// lists, under both layouts — the lookup that replaced the GRECA
    /// kernel's `list_contains_pair` scan.
    #[test]
    fn pair_membership_matches_linear_scan() {
        for layout in [ListLayout::Decomposed, ListLayout::Single] {
            let inputs = build(AffinityMode::Discrete, layout);
            let views = inputs.views();
            for pair in 0..views.num_pairs {
                let scanned = views
                    .static_lists
                    .iter()
                    .position(|l| l.contains_id(pair as u32));
                assert_eq!(views.static_list_of(pair), scanned, "{layout:?} static");
                for (p, lists) in views.period_lists.iter().enumerate() {
                    let scanned = lists.iter().position(|l| l.contains_id(pair as u32));
                    assert_eq!(
                        views.period_list_of(p, pair),
                        scanned,
                        "{layout:?} period {p}"
                    );
                }
            }
            // Every pair is held by exactly one list per kind.
            assert!((0..views.num_pairs).all(|p| views.static_list_of(p).is_some()));
        }
        // Affinity-agnostic inputs: no lists, no membership.
        let none = build(AffinityMode::None, ListLayout::Decomposed);
        let views = none.views();
        assert!((0..views.num_pairs).all(|p| views.static_list_of(p).is_none()));
        // Out-of-range probes are None, not panics.
        assert_eq!(views.static_list_of(999), None);
        assert_eq!(views.period_list_of(0, 0), None);
    }

    #[test]
    fn affinity_lists_sorted_desc() {
        let inputs = build(AffinityMode::Discrete, ListLayout::Single);
        for l in inputs.views().all_lists() {
            for w in l.scores.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_pref_lists_rejected() {
        let mut lists = pls();
        lists[1].entries.pop();
        let _ = MaterializedInputs::build(
            &lists,
            &affinity(AffinityMode::Discrete),
            ListLayout::Decomposed,
        );
    }
}
